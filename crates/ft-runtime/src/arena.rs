//! Arena-backed buffer reuse driven by [`ft_analysis::MemPlan`].
//!
//! A memory plan assigns every statically-sized `VarDef` of a lowered
//! function to an interference class; defs in one class never overlap in
//! program pre-order (loop-carried defs widened to their enclosing loop), so
//! they can share one backing buffer. This module realizes those classes as
//! per-engine free-lists and a cross-run [`RunContext`]:
//!
//! * [`TensorPool`] — [`TensorVal`] buffers for the interpreter's executor
//!   (`crate::compiled::ExecCtx`);
//! * [`ThreadedBufPool`] — widened `f64` storage for the threaded engine,
//!   shared behind a mutex so the coordinator reclaims scope-exit buffers;
//! * [`NativeArena`] — the single flat allocation handed to generated C
//!   (`unsigned char* __ft_arena`) by the compiled engine;
//! * [`RunContext`] — owns all of the above plus converted input/output
//!   staging buffers, keyed by the plan hash, so compile-once/run-many
//!   steady state performs zero tensor heap allocations.
//!
//! Reuse is observable, not asserted: every pool counts fresh heap
//! allocations (`mem.arena.alloc_calls`) and free-list hits
//! (`mem.arena.reuse_hits`), and the planner's verdict is published as a
//! `mem.plan` runtime span plus a decision-log entry with the
//! planned-vs-naive peak bytes.

use crate::error::RuntimeError;
use crate::interp::RunResult;
use crate::value::TensorVal;
use ft_analysis::{MemPlan, ARENA_ALIGN};
use ft_ir::{AccessType, DataType, Func, StmtId};
use ft_metrics::Metrics;
use ft_trace::{Decision, TraceSink, Verdict, TRACK_RUNTIME};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Allocation-behavior counters of one pool (or of the staging layer).
///
/// `alloc_calls` counts genuine heap allocations performed while the pool
/// was active — the quantity a warm [`RunContext`] loop drives to zero.
/// `reuse_hits` counts requests served from a free-list without touching
/// the allocator. Byte fields track the high-water mark of pooled storage.
#[derive(Debug, Default, Clone, Copy)]
pub struct ArenaStats {
    /// Fresh heap allocations (pool misses, growth reallocations, staging
    /// misses).
    pub alloc_calls: u64,
    /// Requests served entirely from pooled storage.
    pub reuse_hits: u64,
    /// Bytes currently held by pooled storage.
    pub bytes_held: u64,
    /// High-water mark of `bytes_held`.
    pub bytes_peak: u64,
    /// Times a poisoned context (a run errored mid-way) was reset to a
    /// clean slate before its next run.
    pub poison_resets: u64,
}

impl ArenaStats {
    pub(crate) fn hit(&mut self) {
        self.reuse_hits += 1;
    }

    pub(crate) fn miss(&mut self, bytes: u64) {
        self.alloc_calls += 1;
        self.bytes_held += bytes;
        self.bytes_peak = self.bytes_peak.max(self.bytes_held);
    }

    /// Fold another stats block into this one.
    pub fn absorb(&mut self, other: ArenaStats) {
        self.alloc_calls += other.alloc_calls;
        self.reuse_hits += other.reuse_hits;
        self.bytes_peak = self.bytes_peak.max(other.bytes_peak);
        self.poison_resets += other.poison_resets;
    }
}

/// Flush `stats` into the `mem.arena.*` metrics family and reset the
/// per-run counters (byte high-water marks are monotone and survive).
pub(crate) fn flush_stats(m: &Metrics, stats: &mut ArenaStats) {
    m.counter("mem.arena.alloc_calls").add(stats.alloc_calls);
    m.counter("mem.arena.reuse_hits").add(stats.reuse_hits);
    m.counter("mem.arena.poison_resets").add(stats.poison_resets);
    m.gauge("mem.arena.bytes_peak").fetch_max(stats.bytes_peak as i64);
    stats.alloc_calls = 0;
    stats.reuse_hits = 0;
    stats.poison_resets = 0;
}

/// Record the planner's verdict: a `mem.plan` span on the runtime track,
/// a decision-log entry with planned-vs-naive peak bytes, and the
/// `mem.arena.bytes_planned` gauge.
pub(crate) fn publish_plan(
    sink: Option<&TraceSink>,
    metrics: Option<&Metrics>,
    func: &str,
    plan: &MemPlan,
) {
    if let Some(s) = sink {
        let mut sp = s.span_on(TRACK_RUNTIME, "mem", "mem.plan");
        sp.arg("target", func);
        sp.arg("planned_peak_bytes", plan.planned_peak_bytes);
        sp.arg("naive_peak_bytes", plan.naive_peak_bytes);
        sp.arg("classes", plan.classes.len());
        sp.arg("defs_planned", plan.n_planned());
        sp.arg("zero_elided", plan.n_zero_elided());
        s.decision(Decision {
            pass: Some("memplan".to_string()),
            primitive: "mem.plan".to_string(),
            args: format!("({func})"),
            verdict: Verdict::Applied,
            reason: Some(format!(
                "planned_peak={}B naive_peak={}B classes={} defs={} zero_elided={}",
                plan.planned_peak_bytes,
                plan.naive_peak_bytes,
                plan.classes.len(),
                plan.n_planned(),
                plan.n_zero_elided(),
            )),
            deps: Vec::new(),
            ts_us: s.now_us(),
        });
    }
    if let Some(m) = metrics {
        m.gauge("mem.arena.bytes_planned")
            .fetch_max(plan.planned_peak_bytes as i64);
    }
}

/// True when the plan's pre-order def list lines up name-for-name with the
/// slot-lowered `tensor_names` table (params first, then defs). Both are
/// produced by a pre-order DFS over the same tree, so a mismatch means the
/// caller planned a different function than it compiled — pooling is then
/// disabled rather than risking a class collision.
pub(crate) fn plan_matches_names(plan: &MemPlan, tensor_names: &[String]) -> bool {
    plan.entries.iter().all(|e| {
        tensor_names
            .get(plan.n_params + e.def_idx)
            .is_some_and(|n| *n == e.name)
    })
}

/// Per-def facts extracted from a plan, indexed by slot (params offset
/// already applied).
#[derive(Debug)]
struct DefLookup {
    n_params: usize,
    /// Per def index: `(class, class_bytes, must_zero)` for planned defs.
    defs: Vec<Option<(usize, u64, bool)>>,
    n_classes: usize,
}

impl DefLookup {
    fn new(plan: &MemPlan) -> DefLookup {
        let defs = plan
            .entries
            .iter()
            .map(|e| e.class.map(|c| (c, plan.classes[c].bytes, e.must_zero)))
            .collect();
        DefLookup {
            n_params: plan.n_params,
            defs,
            n_classes: plan.classes.len(),
        }
    }

    fn slot(&self, slot: usize) -> Option<(usize, u64, bool)> {
        self.defs.get(slot.checked_sub(self.n_params)?).copied()?
    }
}

/// Class-keyed free-lists of [`TensorVal`] buffers for the interpreter.
#[derive(Debug)]
pub(crate) struct TensorPool {
    plan_hash: u64,
    lookup: DefLookup,
    free: Vec<Vec<TensorVal>>,
    pub(crate) stats: ArenaStats,
}

impl TensorPool {
    pub(crate) fn new(plan: &MemPlan) -> TensorPool {
        let lookup = DefLookup::new(plan);
        TensorPool {
            plan_hash: plan.plan_hash(),
            free: (0..lookup.n_classes).map(|_| Vec::new()).collect(),
            lookup,
            stats: ArenaStats::default(),
        }
    }

    pub(crate) fn plan_hash(&self) -> u64 {
        self.plan_hash
    }

    /// A buffer for the `VarDef` occupying tensor slot `slot`. Pool hits
    /// skip the zero-fill when the plan proved every element is written
    /// before it is read; misses (and unplanned defs) allocate fresh
    /// zeroed storage.
    pub(crate) fn take_slot(
        &mut self,
        slot: usize,
        dtype: DataType,
        shape: &[usize],
    ) -> TensorVal {
        if let Some((class, class_bytes, must_zero)) = self.lookup.slot(slot) {
            while let Some(mut t) = self.free[class].pop() {
                match t.reuse_for(dtype, shape) {
                    Some(grew) => {
                        if must_zero {
                            t.fill_zero();
                        }
                        if grew {
                            self.stats.miss(0);
                        } else {
                            self.stats.hit();
                        }
                        return t;
                    }
                    // dtype mismatch within the class: this buffer cannot
                    // serve the request; drop it and try the next.
                    None => {
                        self.stats.bytes_held =
                            self.stats.bytes_held.saturating_sub(class_bytes);
                    }
                }
            }
            self.stats.miss(class_bytes);
        } else {
            self.stats.miss(0);
        }
        TensorVal::zeros(dtype, shape)
    }

    /// Return a scope-exited def's buffer to its class free-list.
    pub(crate) fn put_slot(&mut self, slot: usize, t: TensorVal) {
        if let Some((class, _, _)) = self.lookup.slot(slot) {
            self.free[class].push(t);
        }
    }
}

/// Class-keyed free-lists of widened `f64` buffers for the threaded
/// engine, addressed by the `VarDef`'s [`StmtId`] (the threaded engine
/// walks the raw IR tree, so pre-order slot numbering is unavailable).
#[derive(Debug)]
pub(crate) struct ThreadedBufPool {
    plan_hash: u64,
    by_stmt: HashMap<StmtId, (usize, bool)>,
    free: Vec<Vec<Vec<f64>>>,
    pub(crate) stats: ArenaStats,
}

impl ThreadedBufPool {
    pub(crate) fn new(plan: &MemPlan) -> ThreadedBufPool {
        let by_stmt = plan
            .entries
            .iter()
            .filter_map(|e| e.class.map(|c| (e.stmt, (c, e.must_zero))))
            .collect();
        ThreadedBufPool {
            plan_hash: plan.plan_hash(),
            by_stmt,
            free: (0..plan.classes.len()).map(|_| Vec::new()).collect(),
            stats: ArenaStats::default(),
        }
    }

    pub(crate) fn plan_hash(&self) -> u64 {
        self.plan_hash
    }

    /// A zero-semantics `f64` buffer of `numel` elements for def `id`.
    /// Pooled storage skips the fill when write-before-read is proven.
    pub(crate) fn take(&mut self, id: StmtId, numel: usize) -> Vec<f64> {
        if let Some(&(class, must_zero)) = self.by_stmt.get(&id) {
            if let Some(mut v) = self.free[class].pop() {
                let grew = numel > v.capacity();
                if must_zero {
                    v.clear();
                    v.resize(numel, 0.0);
                } else {
                    v.resize(numel, 0.0);
                }
                if grew {
                    self.stats.miss(0);
                } else {
                    self.stats.hit();
                }
                return v;
            }
            self.stats.miss((numel * 8) as u64);
        } else {
            self.stats.miss(0);
        }
        vec![0.0; numel]
    }

    /// Return a scope-exited def's storage to its class free-list.
    pub(crate) fn put(&mut self, id: StmtId, v: Vec<f64>) {
        if let Some(&(class, _)) = self.by_stmt.get(&id) {
            self.free[class].push(v);
        }
    }
}

/// The flat backing allocation handed to generated C as
/// `unsigned char* __ft_arena`. Offsets inside are the plan's class
/// offsets; the base pointer is aligned to [`ARENA_ALIGN`].
#[derive(Debug)]
pub(crate) struct NativeArena {
    plan_hash: u64,
    buf: Vec<u8>,
    pad: usize,
}

impl NativeArena {
    pub(crate) fn new(plan: &MemPlan) -> NativeArena {
        let bytes = plan.planned_peak_bytes as usize;
        let buf = vec![0u8; bytes + ARENA_ALIGN as usize];
        let pad = buf.as_ptr().align_offset(ARENA_ALIGN as usize);
        NativeArena {
            plan_hash: plan.plan_hash(),
            buf,
            pad,
        }
    }

    pub(crate) fn plan_hash(&self) -> u64 {
        self.plan_hash
    }

    pub(crate) fn bytes(&self) -> u64 {
        self.buf.len() as u64
    }

    pub(crate) fn ptr(&mut self) -> *mut u8 {
        // SAFETY: `pad` was computed by `align_offset` on this buffer and
        // the buffer over-allocates by ARENA_ALIGN, so the offset pointer
        // stays in bounds.
        unsafe { self.buf.as_mut_ptr().add(self.pad) }
    }
}

/// What a [`RunContext`] is committed to after its first planned run: the
/// memory-plan hash, a signature of the parameter shapes/sizes, and the
/// expected output set — the facts every later run and recycle must match.
#[derive(Debug, Clone)]
struct CtxBinding {
    func_name: String,
    plan_hash: u64,
    shape_sig: u64,
    /// Output/InOut parameter names with their resolved shapes, for the
    /// recycle-time signature check. `None` shape = unresolvable extent
    /// (symbolic with a missing size), which skips the shape comparison.
    outputs: Vec<(String, Option<Vec<usize>>)>,
}

/// FNV-1a signature of a run's parameter/shape binding: function name,
/// every parameter's (name, dtype, access, resolved shape) and every size
/// parameter's value. Two runs with equal signatures bind buffers of
/// identical names and byte sizes.
fn shape_sig(func: &Func, sizes: &HashMap<String, i64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(func.name.as_bytes());
    for p in &func.params {
        eat(b"|p");
        eat(p.name.as_bytes());
        eat(&[p.dtype as u8, p.atype as u8]);
        for e in &p.shape {
            match ft_analysis::eval_extent(e, sizes) {
                Some(v) => eat(&v.to_le_bytes()),
                None => eat(format!("{e:?}").as_bytes()),
            }
        }
    }
    let mut sp: Vec<&String> = func.size_params.iter().collect();
    sp.sort();
    for s in sp {
        eat(b"|s");
        eat(s.as_bytes());
        if let Some(v) = sizes.get(s) {
            eat(&v.to_le_bytes());
        }
    }
    h
}

/// The bound program's output signature: every Output/InOut parameter with
/// its resolved shape.
fn output_sig(func: &Func, sizes: &HashMap<String, i64>) -> Vec<(String, Option<Vec<usize>>)> {
    func.params
        .iter()
        .filter(|p| matches!(p.atype, AccessType::Output | AccessType::InOut))
        .map(|p| {
            let shape: Option<Vec<usize>> = p
                .shape
                .iter()
                .map(|e| {
                    ft_analysis::eval_extent(e, sizes).and_then(|v| usize::try_from(v).ok())
                })
                .collect();
            (p.name.clone(), shape)
        })
        .collect()
}

/// Reusable cross-run state for [`ExecutionEngine::run_with`]
/// (`crate::engine::ExecutionEngine::run_with`): per-engine buffer pools
/// keyed by the memory-plan hash, plus named staging buffers that keep
/// converted inputs and returned outputs alive between runs.
///
/// A context is engine-agnostic — the same value may be threaded through
/// the interpreter, the VM, the threaded engine and the compiled engine;
/// each keeps its own pool slot. Feed finished results back with
/// [`recycle`](RunContext::recycle) so output buffers return to the
/// staging area instead of being dropped.
///
/// A context *binds* to the first program it runs (memory-plan hash +
/// parameter shape signature). Running it against a different program or
/// different shapes is a [`RuntimeError::ContextMismatch`], and recycling
/// a result whose outputs do not match the bound program's output set is a
/// [`RuntimeError::RecycleMismatch`] — both guard the serving path, where
/// contexts are pooled per program key and a crossed wire would seed one
/// program's staging buffers with another's. [`reset`](RunContext::reset)
/// repurposes a context intentionally. A run that fails mid-way *poisons*
/// the context (pools may have lost or half-written buffers); the next
/// `run_with` detects the poison and resets to a clean slate instead of
/// reusing suspect storage, counted as `mem.arena.poison_resets`.
#[derive(Debug, Default)]
pub struct RunContext {
    pub(crate) tensor_pool: Option<TensorPool>,
    pub(crate) vm_pool: Option<crate::bytecode::VmPool>,
    pub(crate) threaded_pool: Option<Arc<Mutex<ThreadedBufPool>>>,
    pub(crate) native_arena: Option<NativeArena>,
    pub(crate) staging: HashMap<String, TensorVal>,
    /// Staging-layer stats (pools carry their own).
    pub(crate) stats: ArenaStats,
    binding: Option<CtxBinding>,
    poisoned: bool,
}

impl RunContext {
    /// An empty context; pools materialize lazily on first planned run.
    pub fn new() -> RunContext {
        RunContext::default()
    }

    /// Hand a finished run's outputs back to the context so their buffers
    /// are reused by the next run instead of freed.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::RecycleMismatch`] when the outputs do not belong to
    /// the program this context is bound to (nothing is recycled then).
    pub fn recycle(&mut self, result: RunResult) -> Result<(), RuntimeError> {
        self.recycle_outputs(result.outputs)
    }

    /// As [`recycle`](RunContext::recycle), for a bare output map.
    ///
    /// # Errors
    ///
    /// As [`recycle`](RunContext::recycle).
    pub fn recycle_outputs(
        &mut self,
        outputs: HashMap<String, TensorVal>,
    ) -> Result<(), RuntimeError> {
        if let Some(b) = &self.binding {
            for (name, t) in &outputs {
                let expected = b.outputs.iter().find(|(n, _)| n == name);
                match expected {
                    Some((_, Some(shape))) if shape == t.shape() => {}
                    // Unresolvable declared shape: accept (the run-time
                    // binding guard already vouched for the size set).
                    Some((_, None)) => {}
                    Some((_, Some(shape))) => {
                        return Err(RuntimeError::RecycleMismatch {
                            bound_func: b.func_name.clone(),
                            output: name.clone(),
                            expected_shape: Some(shape.clone()),
                            actual_shape: t.shape().to_vec(),
                        });
                    }
                    None => {
                        return Err(RuntimeError::RecycleMismatch {
                            bound_func: b.func_name.clone(),
                            output: name.clone(),
                            expected_shape: None,
                            actual_shape: t.shape().to_vec(),
                        });
                    }
                }
            }
        }
        for (name, t) in outputs {
            self.stats.bytes_held += t.size_bytes() as u64;
            self.staging.insert(name, t);
        }
        self.stats.bytes_peak = self.stats.bytes_peak.max(self.stats.bytes_held);
        Ok(())
    }

    /// Drop all pooled storage, staging buffers, and the program binding,
    /// returning the context to its freshly-constructed state (stats
    /// survive — they are observability, not state).
    pub fn reset(&mut self) {
        self.tensor_pool = None;
        self.vm_pool = None;
        self.threaded_pool = None;
        self.native_arena = None;
        self.staging.clear();
        self.stats.bytes_held = 0;
        self.binding = None;
        self.poisoned = false;
    }

    /// Mark the context suspect: a run using it failed mid-way, so pooled
    /// buffers may be lost or half-written. The next `run_with` resets it
    /// to a clean slate before reuse.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// Whether the context is awaiting a poison reset.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The function name this context is bound to, if any.
    pub fn bound_func(&self) -> Option<&str> {
        self.binding.as_ref().map(|b| b.func_name.as_str())
    }

    /// Poison the context for errors that indict the run, not the binding
    /// handshake (a `ContextMismatch` leaves the context perfectly good
    /// for its own program).
    pub(crate) fn poison_on(&mut self, e: &RuntimeError) {
        if !matches!(e, RuntimeError::ContextMismatch { .. }) {
            self.poison();
        }
    }

    /// Admission check run by every engine before drawing on the context:
    /// heal a poisoned context (full reset, counted), then bind to
    /// `(func, sizes, plan)` or verify the existing binding matches.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ContextMismatch`] when bound to a different
    /// program/plan/shape set.
    pub(crate) fn ensure_bound(
        &mut self,
        func: &Func,
        sizes: &HashMap<String, i64>,
        plan: &MemPlan,
    ) -> Result<(), RuntimeError> {
        if self.poisoned {
            self.reset();
            self.stats.poison_resets += 1;
        }
        let sig = shape_sig(func, sizes);
        match &self.binding {
            None => {
                self.binding = Some(CtxBinding {
                    func_name: func.name.clone(),
                    plan_hash: plan.plan_hash(),
                    shape_sig: sig,
                    outputs: output_sig(func, sizes),
                });
                Ok(())
            }
            Some(b) if b.plan_hash == plan.plan_hash() && b.shape_sig == sig => Ok(()),
            Some(b) => Err(RuntimeError::ContextMismatch {
                bound_func: b.func_name.clone(),
                bound_plan_hash: b.plan_hash,
                requested_func: func.name.clone(),
                requested_plan_hash: plan.plan_hash(),
            }),
        }
    }

    /// The interpreter's pool for `plan`, rebuilt when the plan hash
    /// changed since the previous run.
    pub(crate) fn tensor_pool_for(&mut self, plan: &MemPlan) -> &mut TensorPool {
        let hash = plan.plan_hash();
        if self.tensor_pool.as_ref().is_none_or(|p| p.plan_hash() != hash) {
            self.tensor_pool = Some(TensorPool::new(plan));
        }
        self.tensor_pool.as_mut().expect("just filled")
    }

    /// The threaded engine's pool for `plan`, rebuilt on plan change.
    pub(crate) fn threaded_pool_for(&mut self, plan: &MemPlan) -> Arc<Mutex<ThreadedBufPool>> {
        let hash = plan.plan_hash();
        if self
            .threaded_pool
            .as_ref()
            .is_none_or(|p| p.lock().plan_hash() != hash)
        {
            self.threaded_pool = Some(Arc::new(Mutex::new(ThreadedBufPool::new(plan))));
        }
        self.threaded_pool.as_ref().expect("just filled").clone()
    }

    /// The compiled engine's flat arena for `plan`, rebuilt on plan change.
    /// Counts a fresh allocation (vs a reuse hit) in the staging stats.
    pub(crate) fn native_arena_for(&mut self, plan: &MemPlan) -> &mut NativeArena {
        let hash = plan.plan_hash();
        match &self.native_arena {
            Some(a) if a.plan_hash() == hash => self.stats.hit(),
            prev => {
                let freed = prev.as_ref().map_or(0, NativeArena::bytes);
                self.stats.bytes_held = self.stats.bytes_held.saturating_sub(freed);
                let a = NativeArena::new(plan);
                self.stats.miss(a.bytes());
                self.native_arena = Some(a);
            }
        }
        self.native_arena.as_mut().expect("just filled")
    }

    /// A staged owned buffer named `name`, retargeted at `(dtype, shape)`.
    /// Zero-fills on reuse when `zeroed` (fresh allocations are already
    /// zeroed). A staging hit with matching dtype performs no heap
    /// allocation.
    pub(crate) fn staged_zeros(
        &mut self,
        name: &str,
        dtype: DataType,
        shape: &[usize],
        zeroed: bool,
    ) -> TensorVal {
        if let Some(mut t) = self.staging.remove(name) {
            self.stats.bytes_held = self.stats.bytes_held.saturating_sub(t.size_bytes() as u64);
            if let Some(grew) = t.reuse_for(dtype, shape) {
                if zeroed {
                    t.fill_zero();
                }
                if grew {
                    self.stats.miss(0);
                } else {
                    self.stats.hit();
                }
                return t;
            }
        }
        self.stats.miss((shape.iter().product::<usize>() * dtype.size_bytes()) as u64);
        TensorVal::zeros(dtype, shape)
    }

    /// A staged owned copy of `src` named `name` (used for dtype-converted
    /// or in/out params). Reuses the staged buffer when dtypes match.
    pub(crate) fn staged_copy(&mut self, name: &str, src: &TensorVal) -> TensorVal {
        if let Some(mut t) = self.staging.remove(name) {
            self.stats.bytes_held = self.stats.bytes_held.saturating_sub(t.size_bytes() as u64);
            if let Some(grew) = t.copy_from(src) {
                if grew {
                    self.stats.miss(0);
                } else {
                    self.stats.hit();
                }
                return t;
            }
        }
        self.stats.miss(src.size_bytes() as u64);
        src.clone()
    }
}
