//! A flat bytecode VM over the slot-indexed lowering in [`crate::compiled`].
//!
//! The tree-walking interpreter ([`crate::interp::Runtime`]) is the
//! *specification*: deterministic, fully instrumented, and deliberately
//! simple. It is also slow — every expression evaluation chases `Box`es,
//! re-matches enum variants, and re-folds multi-dimensional indices. This
//! module lowers a [`Compiled`] function once more into a linear instruction
//! stream over a flat `u64` register file, executed by a single dispatch
//! loop with explicit jump offsets: no recursion, no allocation per
//! statement, no hash lookups.
//!
//! Two modes ([`VmMode`]):
//!
//! * **Fast** — the wall-clock execution path. Performance counters, the
//!   cache simulator and per-statement profiling are compiled *out* (only
//!   the device-capacity accounting needed to reproduce out-of-memory
//!   errors remains), and affine tensor indices inside the innermost loop
//!   are strength-reduced to a per-iteration induction increment
//!   (`off += stride`) hoisted into a loop preheader.
//! * **Instrumented** — executes the same instruction stream annotated with
//!   counting ops in exactly the interpreter's order, reproducing
//!   [`PerfCounters`] (including the `f64` `modeled_cycles`) and the
//!   per-statement profile *bit-for-bit*. Strength reduction is disabled so
//!   every access runs through the same bounds-check/cache-model sequence
//!   as the interpreter.
//!
//! Programs the static compiler cannot type (currently: `Select` whose arms
//! evaluate to different runtime scalar kinds) and runs whose supplied
//! input dtypes differ from the declared parameter dtypes fall back
//! transparently to the interpreter, so [`VmRuntime::run`] is a drop-in
//! replacement for [`Runtime::run`](crate::interp::Runtime::run).
//!
//! ## Known, documented divergences (erroring programs only)
//!
//! On programs that *succeed*, outputs (all modes) and counters
//! (instrumented mode) are bit-identical to the interpreter; the
//! differential fuzz suite asserts this. Programs that *fail* may differ in
//! the error payload (never in success/failure of instrumented runs on
//! in-bounds programs):
//!
//! * Fast-mode strength-reduced accesses check the *flat* offset against
//!   `numel` instead of each dimension, so a program that indexes
//!   out-of-bounds per-dimension but in-bounds flat is caught by the
//!   interpreter and instrumented mode but not by fast mode, and the
//!   out-of-bounds payload carries the flat offset.
//! * `VarDef`/parameter shapes are evaluated dimension-at-a-time by the
//!   interpreter (erroring before later dimensions run) but
//!   all-dims-then-convert by the VM.
//! * Integer overflow wraps in the VM (as it does in interpreter release
//!   builds) where a debug-build interpreter would panic.
//! * Fast mode hoists loop-invariant index arithmetic — including loads
//!   from tensors the loop does not write, for accesses executed
//!   unconditionally on every iteration — into the loop preheader. The
//!   hoisted code only runs when the loop has at least one iteration, so
//!   every fault it can raise is one the first iteration would raise too,
//!   but it runs *before* that iteration's other side effects, so an
//!   erroring program may report a different (still-legitimate) error than
//!   the interpreter.

use crate::compiled::Compiled;
use crate::counters::{CacheSim, PerfCounters, LINE};
use crate::device::DeviceConfig;
use crate::error::RuntimeError;
use crate::interp::{RunResult, Runtime};
use crate::pool::{grain_for, WorkerPool};
use crate::value::{lanes, Scalar, TensorVal};
use ft_ir::{AccessType, BinaryOp, DataType, Device, Func, MemType, ParallelScope, ReduceOp, UnaryOp};
use ft_metrics::Metrics;
use ft_trace::{ProfileNode, RunProfile, StmtCounters, TraceSink, TRACK_RUNTIME};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Execution mode of the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum VmMode {
    /// Counters off, cache model off, strength reduction on: the wall-clock
    /// path. [`RunResult::counters`] comes back defaulted.
    #[default]
    Fast,
    /// Bit-exact [`PerfCounters`] / profile parity with the interpreter.
    Instrumented,
}

/// Statically inferred scalar kind of a register, mirroring the
/// interpreter's runtime [`Scalar`] variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    /// `Scalar::Int` — stored as the `i64` bit pattern.
    I,
    /// `Scalar::Float` — stored via `f64::to_bits`.
    F,
    /// `Scalar::Bool` — stored as 0/1.
    B,
}

fn ty_of(dtype: DataType) -> Ty {
    match dtype {
        DataType::F32 | DataType::F64 => Ty::F,
        DataType::I32 | DataType::I64 => Ty::I,
        DataType::Bool => Ty::B,
    }
}

/// One VM instruction. Register operands are indices into a flat `u64`
/// file; the first `n_scalars` registers are the scalar slots of the
/// lowering (loop iterators and size parameters, always [`Ty::I`]).
#[derive(Debug, Clone)]
enum Instr {
    ConstI { dst: u32, v: i64 },
    ConstF { dst: u32, v: f64 },
    ConstB { dst: u32, v: bool },
    Mov { dst: u32, src: u32 },
    /// `dst += v` (wrapping). Loop increment and preheader probe.
    AddImmI { dst: u32, v: i64 },

    AddI { dst: u32, a: u32, b: u32 },
    SubI { dst: u32, a: u32, b: u32 },
    MulI { dst: u32, a: u32, b: u32 },
    DivI { dst: u32, a: u32, b: u32 },
    ModI { dst: u32, a: u32, b: u32 },
    MinI { dst: u32, a: u32, b: u32 },
    MaxI { dst: u32, a: u32, b: u32 },
    PowI { dst: u32, a: u32, b: u32 },

    AddF { dst: u32, a: u32, b: u32 },
    SubF { dst: u32, a: u32, b: u32 },
    MulF { dst: u32, a: u32, b: u32 },
    DivF { dst: u32, a: u32, b: u32 },
    ModF { dst: u32, a: u32, b: u32 },
    MinF { dst: u32, a: u32, b: u32 },
    MaxF { dst: u32, a: u32, b: u32 },
    PowF { dst: u32, a: u32, b: u32 },

    NegI { dst: u32, a: u32 },
    NegF { dst: u32, a: u32 },
    AbsI { dst: u32, a: u32 },
    AbsF { dst: u32, a: u32 },
    SignI { dst: u32, a: u32 },
    SignF { dst: u32, a: u32 },
    NotB { dst: u32, a: u32 },
    SqrtF { dst: u32, a: u32 },
    ExpF { dst: u32, a: u32 },
    LnF { dst: u32, a: u32 },
    SigmoidF { dst: u32, a: u32 },
    TanhF { dst: u32, a: u32 },

    /// Comparisons over `f64` operands (the interpreter compares `as_f64`).
    EqF { dst: u32, a: u32, b: u32 },
    NeF { dst: u32, a: u32, b: u32 },
    LtF { dst: u32, a: u32, b: u32 },
    LeF { dst: u32, a: u32, b: u32 },
    GtF { dst: u32, a: u32, b: u32 },
    GeF { dst: u32, a: u32, b: u32 },
    AndB { dst: u32, a: u32, b: u32 },
    OrB { dst: u32, a: u32, b: u32 },

    IToF { dst: u32, a: u32 },
    BToF { dst: u32, a: u32 },
    BToI { dst: u32, a: u32 },
    FToI { dst: u32, a: u32 },
    IToB { dst: u32, a: u32 },
    FToB { dst: u32, a: u32 },
    /// `x as f32 as f64` — the F32 cast.
    RoundF32 { dst: u32, a: u32 },
    /// `x as i32 as i64` — the I32 cast.
    TruncI32 { dst: u32, a: u32 },

    Jmp { to: u32 },
    BrFalse { cond: u32, to: u32 },
    /// Loop guard: jump if `regs[a] >= regs[b]` (as `i64`).
    BrGeI { a: u32, b: u32, to: u32 },

    /// Row-major fold of `ndim` index registers starting at `idx`, with
    /// per-dimension bounds checks (the interpreter's `bounds_check`).
    Off { t: u32, idx: u32, ndim: u8, dst: u32 },
    /// Same fold, wrapping and unchecked — preheader stride probes only.
    OffRaw { t: u32, idx: u32, ndim: u8, dst: u32 },
    LoadT { t: u32, off: u32, dst: u32 },
    /// Strength-reduced load: flat offset checked against `numel` only.
    LoadFlat { t: u32, off: u32, dst: u32 },
    StoreT { t: u32, off: u32, src: u32, sty: Ty },
    StoreFlat { t: u32, off: u32, src: u32, sty: Ty },
    ReduceT { t: u32, off: u32, src: u32, sty: Ty, op: ReduceOp },
    ReduceFlat { t: u32, off: u32, src: u32, sty: Ty, op: ReduceOp },

    Alloc { t: u32, shape: u32, ndim: u8, dtype: DataType, mtype: MemType },
    Free { t: u32 },
    BindParam { p: u32, shape: u32, ndim: u8 },
    LibCall { id: u32 },

    /// `count_op` in the interpreter's exact position (instrumented only).
    CountOp { float: bool },
    LoopEnter { b: u32, e: u32, prof: u32, scope: ParallelScope },
    LoopExit { b: u32, e: u32, scope: ParallelScope, vectorize: bool },
    /// Fast mode: a whole innermost `vectorize`-marked loop fused into one
    /// wide kernel dispatch ([`VecSite`]). Carries no jump targets, so it
    /// relocates freely inside enclosing loop bodies.
    VecLoop { site: u32 },
    /// Fast mode: a whole `OpenMp` loop run as a fork-join region on the
    /// persistent worker pool ([`ParSite`]).
    ParRegion { site: u32 },
    Halt,
}

/// Marker: the program uses a construct the static compiler cannot type;
/// the caller falls back to the interpreter. Carries a stable machine-
/// readable reason naming the construct (reported as the `reason` arg of
/// the `vm.fallback` trace span — no fallback is silent).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Unsupported(pub(crate) &'static str);

/// A parameter binding site.
#[derive(Debug, Clone)]
struct ParamSite {
    slot: usize,
    dtype: DataType,
    mtype: MemType,
    atype: AccessType,
}

/// A `LibCall` site.
#[derive(Debug, Clone)]
struct LibSite {
    kernel: String,
    inputs: Vec<usize>,
    outputs: Vec<usize>,
    attrs: Vec<i64>,
    prof: usize,
}

/// A strength-reduced access used by a vectorized loop: the register
/// holding the flat base offset (maintained by the loop preheader) plus the
/// register holding the numerically probed per-iteration stride (`None` for
/// loop-invariant accesses, i.e. stride 0).
#[derive(Debug, Clone)]
struct VecAccess {
    t: u32,
    off: u32,
    stride: Option<u32>,
}

/// The fused inner-loop shapes the vectorizer recognizes. Float reduction
/// kernels preserve the interpreter's serial-order combines and per-step
/// storage rounding (see [`crate::value::lanes`]), so accepting a kernel
/// never changes results — only dispatch cost.
#[derive(Debug, Clone)]
enum VecKernel {
    /// `dst[k] = v` with `v` loop-invariant (hoisted into register `src`).
    Fill { dst: VecAccess, src: u32, sty: Ty },
    /// `dst[k] = x[k]` (dtype conversion through the scalar widen/narrow).
    Copy { dst: VecAccess, x: VecAccess },
    /// `dst[k] += a * x[k]` — elementwise float accumulate with an optional
    /// invariant multiplier `a` (`a_lhs` records the operand order so NaN
    /// propagation matches the serial multiply).
    Axpy {
        dst: VecAccess,
        x: VecAccess,
        a: Option<(u32, Ty)>,
        a_lhs: bool,
    },
    /// `acc += x[k] * y[k]` — loop-carried dot-product reduction into one
    /// invariant cell.
    Dot {
        dst: VecAccess,
        x: VecAccess,
        y: VecAccess,
    },
    /// `acc op= x[k]` — loop-carried horizontal reduction (Add/Min/Max).
    HReduce {
        dst: VecAccess,
        x: VecAccess,
        op: ReduceOp,
    },
}

impl VecKernel {
    fn name(&self) -> &'static str {
        match self {
            VecKernel::Fill { .. } => "fill",
            VecKernel::Copy { .. } => "copy",
            VecKernel::Axpy { .. } => "axpy",
            VecKernel::Dot { .. } => "dot",
            VecKernel::HReduce { .. } => "hreduce",
        }
    }
}

/// A vectorized-loop site: iterator register, end-bound register, kernel.
#[derive(Debug, Clone)]
struct VecSite {
    s: u32,
    end: u32,
    kernel: VecKernel,
}

/// A parallel-region site: the loop body compiled into a standalone
/// instruction stream workers execute once per iteration.
#[derive(Debug, Clone)]
struct ParSite {
    s: u32,
    end: u32,
    code: Vec<Instr>,
    /// Per tensor slot: `true` when each worker owns a private copy
    /// (`VarDef` locals and privatized reduction targets); `false` slots
    /// route to the parent's storage, written disjointly.
    local_mask: Vec<bool>,
    /// Reduction targets privatized per worker and merged in deterministic
    /// chunk order after the join (the runtime `cache_reduce`).
    privatized: Vec<(usize, ReduceOp)>,
    /// Static body cost (instruction count) feeding the grain heuristic.
    cost: u32,
}

/// One lowering decision (a `vectorize` or parallel-region attempt),
/// surfaced as a `vm.simd` / `vm.parallel` / `vm.reduce.privatize` trace
/// span with a structured acceptance or rejection reason.
#[derive(Debug, Clone)]
struct LowerDecision {
    kind: &'static str,
    prof: usize,
    accepted: bool,
    detail: String,
}

/// A compiled VM program.
#[derive(Debug, Clone)]
pub(crate) struct VmProgram {
    code: Vec<Instr>,
    n_regs: usize,
    n_tensors: usize,
    tensor_names: Vec<String>,
    params: Vec<ParamSite>,
    size_slots: Vec<(String, usize)>,
    lib_sites: Vec<LibSite>,
    prof_nodes: Vec<ProfileNode>,
    vec_sites: Vec<VecSite>,
    par_sites: Vec<ParSite>,
    decisions: Vec<LowerDecision>,
}

/// Per-open-loop compile state for strength reduction.
struct LoopCtx {
    /// Scalar slot of the loop iterator.
    s: usize,
    /// `Compiler::cond_depth` at loop entry; an access compiled while the
    /// depth is back at this value executes unconditionally every iteration.
    cond_base: usize,
    /// Tensor slots the loop body writes (stores, reduces, `LibCall`
    /// outputs, and `VarDef`s) — loads from any other tensor are
    /// loop-invariant.
    writes: std::collections::HashSet<usize>,
    /// Whether the preheader contains instructions that can fault (hoisted
    /// invariant loads / integer division); if so the preheader must be
    /// skipped for zero-trip loops.
    faulty_preheader: bool,
    /// Instructions to run once at loop entry (after `s = begin`).
    preheader: Vec<Instr>,
    /// Induction increments to run at the end of every iteration.
    latches: Vec<Instr>,
}

impl LoopCtx {
    fn new(s: usize, cond_base: usize, writes: std::collections::HashSet<usize>) -> LoopCtx {
        LoopCtx {
            s,
            cond_base,
            writes,
            faulty_preheader: false,
            preheader: Vec::new(),
            latches: Vec::new(),
        }
    }
}

/// Collect every tensor slot `s` can write (or reallocate).
fn collect_writes(s: &crate::compiled::CStmt, out: &mut std::collections::HashSet<usize>) {
    use crate::compiled::CStmt as S;
    match s {
        S::Nop => {}
        S::Seq(v) => v.iter().for_each(|st| collect_writes(st, out)),
        S::VarDef { t, body, .. } => {
            out.insert(*t);
            collect_writes(body, out);
        }
        S::For { body, .. } => collect_writes(body, out),
        S::If {
            then, otherwise, ..
        } => {
            collect_writes(then, out);
            if let Some(o) = otherwise {
                collect_writes(o, out);
            }
        }
        S::Store { t, .. } | S::Reduce { t, .. } => {
            out.insert(*t);
        }
        S::LibCall { outputs, .. } => out.extend(outputs.iter().copied()),
    }
}

struct Compiler {
    buf: Vec<Instr>,
    /// Next free register (stack-discipline temporaries).
    next: u32,
    /// Registers below this are permanently reserved (persists).
    floor: u32,
    max_regs: u32,
    instrumented: bool,
    loops: Vec<LoopCtx>,
    /// Loop depth at which each tensor slot was defined (`Some(0)` for
    /// parameters), used to prove a tensor — and hence its shape — is
    /// invariant in the innermost loop.
    depth_of: Vec<Option<usize>>,
    /// Declared dtype per tensor slot (fixed by the lowering).
    tdtype: Vec<DataType>,
    /// Number of conditional constructs (`If` branches, `Select` arms)
    /// currently open; compared against `LoopCtx::cond_base` to decide
    /// whether an access executes unconditionally in its loop.
    cond_depth: usize,
    lib_sites: Vec<LibSite>,
    /// Whether we are compiling the body of a parallel region (nested
    /// `OpenMp` loops then stay serial — the pool is flat).
    in_region: bool,
    vec_sites: Vec<VecSite>,
    par_sites: Vec<ParSite>,
    decisions: Vec<LowerDecision>,
}

/// Tensor slots a region body defines locally (`VarDef`s).
fn collect_locals(s: &crate::compiled::CStmt, out: &mut std::collections::HashSet<usize>) {
    use crate::compiled::CStmt as S;
    match s {
        S::Nop | S::Store { .. } | S::Reduce { .. } | S::LibCall { .. } => {}
        S::Seq(v) => v.iter().for_each(|st| collect_locals(st, out)),
        S::VarDef { t, body, .. } => {
            out.insert(*t);
            collect_locals(body, out);
        }
        S::For { body, .. } => collect_locals(body, out),
        S::If {
            then, otherwise, ..
        } => {
            collect_locals(then, out);
            if let Some(o) = otherwise {
                collect_locals(o, out);
            }
        }
    }
}

/// Record every non-local tensor `e` loads from into `loaded`.
fn collect_loads(
    e: &crate::compiled::CExpr,
    locals: &std::collections::HashSet<usize>,
    loaded: &mut std::collections::HashSet<usize>,
) {
    use crate::compiled::CExpr as E;
    match e {
        E::Int(_) | E::Float(_) | E::Bool(_) | E::Scalar(_) => {}
        E::Load { t, idx } => {
            if !locals.contains(t) {
                loaded.insert(*t);
            }
            idx.iter().for_each(|i| collect_loads(i, locals, loaded));
        }
        E::Unary { a, .. } => collect_loads(a, locals, loaded),
        E::Binary { a, b, .. } => {
            collect_loads(a, locals, loaded);
            collect_loads(b, locals, loaded);
        }
        E::Select {
            cond,
            then,
            otherwise,
        } => {
            collect_loads(cond, locals, loaded);
            collect_loads(then, locals, loaded);
            collect_loads(otherwise, locals, loaded);
        }
        E::Cast { a, .. } => collect_loads(a, locals, loaded),
    }
}

/// Whether a write at `idx` provably touches distinct cells on distinct
/// iterations of the loop over scalar slot `s`: some index component must
/// be a pure, strictly affine function of `s`. Scatter writes (`y[idx[k]]`)
/// and divided/modded indices fail the test and serialize the region.
fn disjoint_by(idx: &[crate::compiled::CExpr], s: usize) -> bool {
    idx.iter()
        .any(|e| pure_total(e) && linear_in(e, s) && contains_scalar(e, s))
}

/// What a parallel-region analysis proved about a loop body.
struct RegionInfo {
    locals: std::collections::HashSet<usize>,
    privatized: Vec<(usize, ReduceOp)>,
}

/// If `e` is a load whose index varies in `s`, return its target and index.
fn varying_load(
    e: &crate::compiled::CExpr,
    s: usize,
) -> Option<(usize, &[crate::compiled::CExpr])> {
    match e {
        crate::compiled::CExpr::Load { t, idx }
            if idx.iter().any(|i| contains_scalar(i, s)) =>
        {
            Some((*t, idx))
        }
        _ => None,
    }
}

/// Strip nested single-statement `Seq` wrappers.
fn unwrap_single(body: &crate::compiled::CStmt) -> &crate::compiled::CStmt {
    match body {
        crate::compiled::CStmt::Seq(v) if v.len() == 1 => unwrap_single(&v[0]),
        other => other,
    }
}

/// Whether `e` is total (cannot fault), pure (no memory reads) and integer
/// (never produces a `Float`/`Bool` that `as_i64` would bend nonlinearly):
/// safe to evaluate speculatively in a preheader, even for zero-trip loops.
fn pure_total(e: &crate::compiled::CExpr) -> bool {
    use crate::compiled::CExpr as E;
    use BinaryOp::*;
    match e {
        E::Int(_) | E::Scalar(_) => true,
        E::Unary { op, a } => {
            matches!(op, UnaryOp::Neg | UnaryOp::Abs | UnaryOp::Sign) && pure_total(a)
        }
        E::Binary { op, a, b } => {
            matches!(op, Add | Sub | Mul | Min | Max) && pure_total(a) && pure_total(b)
        }
        _ => false,
    }
}

/// Whether scalar slot `s` appears anywhere in `e`.
fn contains_scalar(e: &crate::compiled::CExpr, s: usize) -> bool {
    use crate::compiled::CExpr as E;
    match e {
        E::Int(_) | E::Float(_) | E::Bool(_) => false,
        E::Scalar(x) => *x == s,
        E::Load { idx, .. } => idx.iter().any(|i| contains_scalar(i, s)),
        E::Unary { a, .. } => contains_scalar(a, s),
        E::Binary { a, b, .. } => contains_scalar(a, s) || contains_scalar(b, s),
        E::Select {
            cond,
            then,
            otherwise,
        } => {
            contains_scalar(cond, s) || contains_scalar(then, s) || contains_scalar(otherwise, s)
        }
        E::Cast { a, .. } => contains_scalar(a, s),
    }
}

/// Whether `e` (already known `pure_total`) is an affine function of scalar
/// slot `s`, with everything else loop-invariant.
fn linear_in(e: &crate::compiled::CExpr, s: usize) -> bool {
    use crate::compiled::CExpr as E;
    use BinaryOp::*;
    match e {
        E::Int(_) | E::Scalar(_) => true,
        E::Unary { op, a } => match op {
            UnaryOp::Neg => linear_in(a, s),
            _ => !contains_scalar(a, s),
        },
        E::Binary { op, a, b } => match op {
            Add | Sub => linear_in(a, s) && linear_in(b, s),
            Mul => {
                (linear_in(a, s) && !contains_scalar(b, s))
                    || (!contains_scalar(a, s) && linear_in(b, s))
            }
            Min | Max => !contains_scalar(a, s) && !contains_scalar(b, s),
            _ => false,
        },
        _ => false,
    }
}

fn reloc(mut ins: Instr, base: u32) -> Instr {
    match &mut ins {
        Instr::Jmp { to } | Instr::BrFalse { to, .. } | Instr::BrGeI { to, .. } => *to += base,
        _ => {}
    }
    ins
}

impl Compiler {
    fn emit(&mut self, i: Instr) {
        self.buf.push(i);
    }

    fn emit_idx(&mut self, i: Instr) -> usize {
        self.buf.push(i);
        self.buf.len() - 1
    }

    fn patch(&mut self, at: usize, to: u32) {
        match &mut self.buf[at] {
            Instr::Jmp { to: t } | Instr::BrFalse { to: t, .. } | Instr::BrGeI { to: t, .. } => {
                *t = to
            }
            other => unreachable!("patch target is not a branch: {other:?}"),
        }
    }

    fn mark(&self) -> u32 {
        self.next
    }

    fn alloc_tmp(&mut self) -> u32 {
        let r = self.next;
        self.next += 1;
        if self.next > self.max_regs {
            self.max_regs = self.next;
        }
        r
    }

    /// Release temporaries back to `mark` (never below the persist floor).
    fn free_to(&mut self, mark: u32) {
        self.next = mark.max(self.floor);
    }

    /// Allocate a register that survives for the rest of the program.
    ///
    /// Persists must not collide with *any* temporary — including ones in
    /// code emitted earlier that re-executes every loop iteration (a loop
    /// body's early statements run again after a later statement's persist
    /// is installed). Allocating at the high watermark puts the persist
    /// above every register ever touched, and raising the floor keeps all
    /// future temporaries above it too. Registers skipped in between are
    /// leaked (8 bytes each, bounded by program size).
    fn alloc_persist(&mut self) -> u32 {
        let r = self.max_regs;
        self.max_regs = r + 1;
        self.floor = r + 1;
        self.next = r + 1;
        r
    }

    /// Emit a conversion between scalar kinds, mirroring the interpreter's
    /// `as_f64`/`as_i64`/`as_bool` (which are free — no `count_op`).
    fn conv(&mut self, r: u32, from: Ty, to: Ty) -> u32 {
        if from == to {
            return r;
        }
        let dst = self.alloc_tmp();
        let ins = match (from, to) {
            (Ty::I, Ty::F) => Instr::IToF { dst, a: r },
            (Ty::B, Ty::F) => Instr::BToF { dst, a: r },
            (Ty::B, Ty::I) => Instr::BToI { dst, a: r },
            (Ty::F, Ty::I) => Instr::FToI { dst, a: r },
            (Ty::I, Ty::B) => Instr::IToB { dst, a: r },
            (Ty::F, Ty::B) => Instr::FToB { dst, a: r },
            _ => unreachable!(),
        };
        self.emit(ins);
        dst
    }

    /// Compile each index expression into a contiguous register block
    /// (converted to `i64`, preserving the interpreter's evaluation order).
    fn idx_block(&mut self, idx: &[crate::compiled::CExpr]) -> Result<u32, Unsupported> {
        let blk = self.next;
        for _ in idx {
            self.alloc_tmp();
        }
        for (d, e) in idx.iter().enumerate() {
            let mark = self.mark();
            let (r, t) = self.expr(e)?;
            let r = self.conv(r, t, Ty::I);
            self.emit(Instr::Mov {
                dst: blk + d as u32,
                src: r,
            });
            self.free_to(mark);
        }
        Ok(blk)
    }

    /// Statically inferred scalar kind of an expression, mirroring the
    /// typing rules `expr` compiles with.
    fn static_ty(&self, e: &crate::compiled::CExpr) -> Ty {
        use crate::compiled::CExpr as E;
        use BinaryOp::*;
        match e {
            E::Int(_) => Ty::I,
            E::Float(_) => Ty::F,
            E::Bool(_) => Ty::B,
            E::Scalar(_) => Ty::I,
            E::Load { t, .. } => ty_of(self.tdtype[*t]),
            E::Unary { op, a } => match op {
                UnaryOp::Not => Ty::B,
                UnaryOp::Sqrt
                | UnaryOp::Exp
                | UnaryOp::Ln
                | UnaryOp::Sigmoid
                | UnaryOp::Tanh => Ty::F,
                UnaryOp::Neg | UnaryOp::Abs | UnaryOp::Sign => self.static_ty(a),
            },
            E::Binary { op, a, b } => match op {
                And | Or | Eq | Ne | Lt | Le | Gt | Ge => Ty::B,
                _ if self.static_ty(a) == Ty::F || self.static_ty(b) == Ty::F => Ty::F,
                _ => Ty::I,
            },
            E::Select { then, .. } => self.static_ty(then),
            E::Cast { dtype, .. } => ty_of(*dtype),
        }
    }

    /// Whether `e` is invariant in scalar slot `s` *and* safe to hoist into
    /// the loop preheader: it never references `s`, and every load it
    /// performs reads a tensor that exists before the loop and that the
    /// loop body does not write, so its value — and any fault it raises —
    /// is exactly that of the access's first-iteration evaluation.
    fn invariant_ok(
        &self,
        e: &crate::compiled::CExpr,
        s: usize,
        writes: &std::collections::HashSet<usize>,
    ) -> bool {
        use crate::compiled::CExpr as E;
        match e {
            E::Int(_) | E::Float(_) | E::Bool(_) => true,
            E::Scalar(x) => *x != s,
            E::Load { t, idx } => {
                !writes.contains(t)
                    && self.depth_of[*t].is_some_and(|d| d < self.loops.len())
                    && idx.iter().all(|i| self.invariant_ok(i, s, writes))
            }
            E::Unary { a, .. } => self.invariant_ok(a, s, writes),
            E::Binary { a, b, .. } => {
                self.invariant_ok(a, s, writes) && self.invariant_ok(b, s, writes)
            }
            E::Select {
                cond,
                then,
                otherwise,
            } => {
                self.invariant_ok(cond, s, writes)
                    && self.invariant_ok(then, s, writes)
                    && self.invariant_ok(otherwise, s, writes)
            }
            E::Cast { a, .. } => self.invariant_ok(a, s, writes),
        }
    }

    /// Affine-in-`s` check where `s`-free subtrees may be arbitrary
    /// hoistable invariants ([`Compiler::invariant_ok`]), as long as every
    /// node on the `s`-path stays integer-typed — a float on the path would
    /// round the truncated offset and break the two-point stride probe.
    fn linear_mixed(
        &self,
        e: &crate::compiled::CExpr,
        s: usize,
        writes: &std::collections::HashSet<usize>,
    ) -> bool {
        use crate::compiled::CExpr as E;
        use BinaryOp::*;
        if self.invariant_ok(e, s, writes) {
            return self.static_ty(e) != Ty::F;
        }
        match e {
            E::Scalar(x) => *x == s,
            E::Unary {
                op: UnaryOp::Neg,
                a,
            } => self.linear_mixed(a, s, writes),
            E::Binary { op, a, b } => match op {
                Add | Sub => {
                    self.linear_mixed(a, s, writes) && self.linear_mixed(b, s, writes)
                }
                Mul => {
                    (self.linear_mixed(a, s, writes)
                        && self.invariant_ok(b, s, writes)
                        && self.static_ty(b) != Ty::F)
                        || (self.invariant_ok(a, s, writes)
                            && self.static_ty(a) != Ty::F
                            && self.linear_mixed(b, s, writes))
                }
                _ => false,
            },
            _ => false,
        }
    }

    /// Try to strength-reduce an access to tensor `t` at `idx` against the
    /// innermost loop: returns the register holding the (incrementally
    /// maintained) flat offset, or `None` to take the generic path.
    ///
    /// The stride is measured *numerically* in the preheader — the offset is
    /// evaluated at `s` and `s + 1` and subtracted — which handles
    /// runtime-invariant coefficients (`i * n + j` with a size parameter
    /// `n`) that a compile-time constant folder could not. Structural
    /// linearity is still required, so the two probes fully determine the
    /// sequence (wrapping arithmetic keeps this exact mod 2^64).
    fn try_reduce(
        &mut self,
        t: usize,
        idx: &[crate::compiled::CExpr],
    ) -> Result<Option<u32>, Unsupported> {
        if self.instrumented {
            return Ok(None);
        }
        let Some((s, cond_base)) = self.loops.last().map(|l| (l.s, l.cond_base)) else {
            return Ok(None);
        };
        // The tensor (and hence its shape, which OffRaw reads at loop
        // entry) must exist before the loop starts.
        if self.depth_of[t].is_none_or(|d| d >= self.loops.len()) {
            return Ok(None);
        }
        // Two eligibility tiers: `simple` probes are pure arithmetic that
        // cannot fault, so they may run unconditionally in the preheader
        // even for zero-trip loops; `with_loads` probes additionally hoist
        // loop-invariant loads (gather rows, runtime strides read from
        // memory), which is only sound for accesses executed
        // unconditionally on every iteration — and obliges the preheader to
        // be skipped when the loop runs zero iterations.
        let simple = idx.iter().all(|e| pure_total(e) && linear_in(e, s));
        let with_loads = !simple && self.cond_depth == cond_base && {
            let lp = self.loops.last().expect("checked above");
            idx.iter().all(|e| {
                self.invariant_ok(e, s, &lp.writes) || self.linear_mixed(e, s, &lp.writes)
            })
        };
        if !(simple || with_loads) {
            return Ok(None);
        }
        if with_loads {
            self.loops
                .last_mut()
                .expect("checked above")
                .faulty_preheader = true;
        }
        let varying = idx.iter().any(|e| contains_scalar(e, s));
        let r_off = self.alloc_persist();
        let r_stride = if varying {
            Some(self.alloc_persist())
        } else {
            None
        };
        let mut pre = Vec::new();
        std::mem::swap(&mut self.buf, &mut pre);
        let mark = self.mark();
        let blk = self.idx_block(idx)?;
        self.emit(Instr::OffRaw {
            t: t as u32,
            idx: blk,
            ndim: idx.len() as u8,
            dst: r_off,
        });
        if let Some(rs) = r_stride {
            // stride = off(s + 1) - off(s), probed by nudging the iterator.
            self.emit(Instr::AddImmI {
                dst: s as u32,
                v: 1,
            });
            let blk2 = self.idx_block(idx)?;
            let t2 = self.alloc_tmp();
            self.emit(Instr::OffRaw {
                t: t as u32,
                idx: blk2,
                ndim: idx.len() as u8,
                dst: t2,
            });
            self.emit(Instr::AddImmI {
                dst: s as u32,
                v: -1,
            });
            self.emit(Instr::SubI {
                dst: rs,
                a: t2,
                b: r_off,
            });
        }
        self.free_to(mark);
        std::mem::swap(&mut self.buf, &mut pre);
        let lp = self.loops.last_mut().expect("checked above");
        lp.preheader.extend(pre);
        if let Some(rs) = r_stride {
            lp.latches.push(Instr::AddI {
                dst: r_off,
                a: r_off,
                b: rs,
            });
        }
        Ok(Some(r_off))
    }

    fn expr(&mut self, e: &crate::compiled::CExpr) -> Result<(u32, Ty), Unsupported> {
        use crate::compiled::CExpr as E;
        match e {
            E::Int(v) => {
                let dst = self.alloc_tmp();
                self.emit(Instr::ConstI { dst, v: *v });
                Ok((dst, Ty::I))
            }
            E::Float(v) => {
                let dst = self.alloc_tmp();
                self.emit(Instr::ConstF { dst, v: *v });
                Ok((dst, Ty::F))
            }
            E::Bool(v) => {
                let dst = self.alloc_tmp();
                self.emit(Instr::ConstB { dst, v: *v });
                Ok((dst, Ty::B))
            }
            // Scalar slots are read-only to expressions; return the slot
            // register itself.
            E::Scalar(s) => Ok((*s as u32, Ty::I)),
            E::Load { t, idx } => {
                let ty = ty_of(self.tdtype[*t]);
                if let Some(off) = self.try_reduce(*t, idx)? {
                    let dst = self.alloc_tmp();
                    self.emit(Instr::LoadFlat {
                        t: *t as u32,
                        off,
                        dst,
                    });
                    Ok((dst, ty))
                } else {
                    let mark = self.mark();
                    let blk = self.idx_block(idx)?;
                    let roff = self.alloc_tmp();
                    self.emit(Instr::Off {
                        t: *t as u32,
                        idx: blk,
                        ndim: idx.len() as u8,
                        dst: roff,
                    });
                    self.free_to(mark);
                    let dst = self.alloc_tmp();
                    self.emit(Instr::LoadT {
                        t: *t as u32,
                        off: roff,
                        dst,
                    });
                    Ok((dst, ty))
                }
            }
            E::Unary { op, a } => {
                let mark = self.mark();
                let (ra, ta) = self.expr(a)?;
                if self.instrumented {
                    self.emit(Instr::CountOp { float: ta == Ty::F });
                }
                use UnaryOp::*;
                match op {
                    // The interpreter's catch-all passes Bool operands
                    // through Neg/Abs/Sign unchanged.
                    Neg | Abs | Sign if ta == Ty::B => Ok((ra, Ty::B)),
                    Neg | Abs | Sign => {
                        self.free_to(mark);
                        let dst = self.alloc_tmp();
                        self.emit(match (op, ta) {
                            (Neg, Ty::F) => Instr::NegF { dst, a: ra },
                            (Neg, _) => Instr::NegI { dst, a: ra },
                            (Abs, Ty::F) => Instr::AbsF { dst, a: ra },
                            (Abs, _) => Instr::AbsI { dst, a: ra },
                            (Sign, Ty::F) => Instr::SignF { dst, a: ra },
                            (_, _) => Instr::SignI { dst, a: ra },
                        });
                        Ok((dst, ta))
                    }
                    Not => {
                        let ca = self.conv(ra, ta, Ty::B);
                        self.free_to(mark);
                        let dst = self.alloc_tmp();
                        self.emit(Instr::NotB { dst, a: ca });
                        Ok((dst, Ty::B))
                    }
                    Sqrt | Exp | Ln | Sigmoid | Tanh => {
                        let ca = self.conv(ra, ta, Ty::F);
                        self.free_to(mark);
                        let dst = self.alloc_tmp();
                        self.emit(match op {
                            Sqrt => Instr::SqrtF { dst, a: ca },
                            Exp => Instr::ExpF { dst, a: ca },
                            Ln => Instr::LnF { dst, a: ca },
                            Sigmoid => Instr::SigmoidF { dst, a: ca },
                            _ => Instr::TanhF { dst, a: ca },
                        });
                        Ok((dst, Ty::F))
                    }
                }
            }
            E::Binary { op, a, b } => {
                let mark = self.mark();
                let (ra, ta) = self.expr(a)?;
                let (rb, tb) = self.expr(b)?;
                if self.instrumented {
                    self.emit(Instr::CountOp {
                        float: ta == Ty::F || tb == Ty::F,
                    });
                }
                use BinaryOp::*;
                match op {
                    And | Or => {
                        let ca = self.conv(ra, ta, Ty::B);
                        let cb = self.conv(rb, tb, Ty::B);
                        self.free_to(mark);
                        let dst = self.alloc_tmp();
                        self.emit(match op {
                            And => Instr::AndB { dst, a: ca, b: cb },
                            _ => Instr::OrB { dst, a: ca, b: cb },
                        });
                        Ok((dst, Ty::B))
                    }
                    Eq | Ne | Lt | Le | Gt | Ge => {
                        let ca = self.conv(ra, ta, Ty::F);
                        let cb = self.conv(rb, tb, Ty::F);
                        self.free_to(mark);
                        let dst = self.alloc_tmp();
                        self.emit(match op {
                            Eq => Instr::EqF { dst, a: ca, b: cb },
                            Ne => Instr::NeF { dst, a: ca, b: cb },
                            Lt => Instr::LtF { dst, a: ca, b: cb },
                            Le => Instr::LeF { dst, a: ca, b: cb },
                            Gt => Instr::GtF { dst, a: ca, b: cb },
                            _ => Instr::GeF { dst, a: ca, b: cb },
                        });
                        Ok((dst, Ty::B))
                    }
                    _ if ta == Ty::F || tb == Ty::F => {
                        let ca = self.conv(ra, ta, Ty::F);
                        let cb = self.conv(rb, tb, Ty::F);
                        self.free_to(mark);
                        let dst = self.alloc_tmp();
                        self.emit(match op {
                            Add => Instr::AddF { dst, a: ca, b: cb },
                            Sub => Instr::SubF { dst, a: ca, b: cb },
                            Mul => Instr::MulF { dst, a: ca, b: cb },
                            Div => Instr::DivF { dst, a: ca, b: cb },
                            Mod => Instr::ModF { dst, a: ca, b: cb },
                            Min => Instr::MinF { dst, a: ca, b: cb },
                            Max => Instr::MaxF { dst, a: ca, b: cb },
                            _ => Instr::PowF { dst, a: ca, b: cb },
                        });
                        Ok((dst, Ty::F))
                    }
                    _ => {
                        let ca = self.conv(ra, ta, Ty::I);
                        let cb = self.conv(rb, tb, Ty::I);
                        self.free_to(mark);
                        let dst = self.alloc_tmp();
                        self.emit(match op {
                            Add => Instr::AddI { dst, a: ca, b: cb },
                            Sub => Instr::SubI { dst, a: ca, b: cb },
                            Mul => Instr::MulI { dst, a: ca, b: cb },
                            Div => Instr::DivI { dst, a: ca, b: cb },
                            Mod => Instr::ModI { dst, a: ca, b: cb },
                            Min => Instr::MinI { dst, a: ca, b: cb },
                            Max => Instr::MaxI { dst, a: ca, b: cb },
                            _ => Instr::PowI { dst, a: ca, b: cb },
                        });
                        Ok((dst, Ty::I))
                    }
                }
            }
            E::Select {
                cond,
                then,
                otherwise,
            } => {
                let mark = self.mark();
                let (rc, tc) = self.expr(cond)?;
                let cb = self.conv(rc, tc, Ty::B);
                self.free_to(mark);
                let dst = self.alloc_tmp();
                let br = self.emit_idx(Instr::BrFalse { cond: cb, to: 0 });
                // Arms evaluate conditionally (a compile error discards the
                // whole compiler, so the depth need not unwind on `?`).
                self.cond_depth += 1;
                let mark2 = self.mark();
                let (rt, tt) = self.expr(then)?;
                self.emit(Instr::Mov { dst, src: rt });
                self.free_to(mark2);
                let jend = self.emit_idx(Instr::Jmp { to: 0 });
                let else_pc = self.buf.len() as u32;
                self.patch(br, else_pc);
                let (re, te) = self.expr(otherwise)?;
                self.cond_depth -= 1;
                if tt != te {
                    // Arms of different runtime scalar kinds cannot be
                    // statically typed; the whole program falls back.
                    return Err(Unsupported("select.mixed_arm_types"));
                }
                self.emit(Instr::Mov { dst, src: re });
                self.free_to(mark2);
                let end_pc = self.buf.len() as u32;
                self.patch(jend, end_pc);
                Ok((dst, tt))
            }
            E::Cast { dtype, a } => {
                let mark = self.mark();
                let (ra, ta) = self.expr(a)?;
                match dtype {
                    DataType::F32 => {
                        let c = self.conv(ra, ta, Ty::F);
                        self.free_to(mark);
                        let dst = self.alloc_tmp();
                        self.emit(Instr::RoundF32 { dst, a: c });
                        Ok((dst, Ty::F))
                    }
                    DataType::F64 => Ok((self.conv(ra, ta, Ty::F), Ty::F)),
                    DataType::I32 => {
                        let c = self.conv(ra, ta, Ty::I);
                        self.free_to(mark);
                        let dst = self.alloc_tmp();
                        self.emit(Instr::TruncI32 { dst, a: c });
                        Ok((dst, Ty::I))
                    }
                    DataType::I64 => Ok((self.conv(ra, ta, Ty::I), Ty::I)),
                    DataType::Bool => Ok((self.conv(ra, ta, Ty::B), Ty::B)),
                }
            }
        }
    }

    fn stmt(&mut self, s: &crate::compiled::CStmt) -> Result<(), Unsupported> {
        use crate::compiled::CStmt as S;
        match s {
            S::Nop => {}
            S::Seq(v) => {
                for st in v {
                    self.stmt(st)?;
                }
            }
            S::If {
                cond,
                then,
                otherwise,
            } => {
                let mark = self.mark();
                let (rc, tc) = self.expr(cond)?;
                let cb = self.conv(rc, tc, Ty::B);
                self.free_to(mark);
                let br = self.emit_idx(Instr::BrFalse { cond: cb, to: 0 });
                self.cond_depth += 1;
                self.stmt(then)?;
                if let Some(o) = otherwise {
                    let j = self.emit_idx(Instr::Jmp { to: 0 });
                    let else_pc = self.buf.len() as u32;
                    self.patch(br, else_pc);
                    self.stmt(o)?;
                    let end = self.buf.len() as u32;
                    self.patch(j, end);
                } else {
                    let end = self.buf.len() as u32;
                    self.patch(br, end);
                }
                self.cond_depth -= 1;
            }
            S::Store { t, idx, value } => {
                let mark = self.mark();
                if let Some(off) = self.try_reduce(*t, idx)? {
                    let (rv, tv) = self.expr(value)?;
                    self.emit(Instr::StoreFlat {
                        t: *t as u32,
                        off,
                        src: rv,
                        sty: tv,
                    });
                } else {
                    let blk = self.idx_block(idx)?;
                    let (rv, tv) = self.expr(value)?;
                    // Bounds are checked after the value evaluates, matching
                    // the interpreter's error order.
                    let roff = self.alloc_tmp();
                    self.emit(Instr::Off {
                        t: *t as u32,
                        idx: blk,
                        ndim: idx.len() as u8,
                        dst: roff,
                    });
                    self.emit(Instr::StoreT {
                        t: *t as u32,
                        off: roff,
                        src: rv,
                        sty: tv,
                    });
                }
                self.free_to(mark);
            }
            // `atomic` matters only to the parallel-region analysis
            // (privatization); the serial lowering is identical either way.
            S::Reduce {
                t,
                idx,
                op,
                value,
                atomic: _,
            } => {
                let mark = self.mark();
                if let Some(off) = self.try_reduce(*t, idx)? {
                    let (rv, tv) = self.expr(value)?;
                    self.emit(Instr::ReduceFlat {
                        t: *t as u32,
                        off,
                        src: rv,
                        sty: tv,
                        op: *op,
                    });
                } else {
                    let blk = self.idx_block(idx)?;
                    let (rv, tv) = self.expr(value)?;
                    let roff = self.alloc_tmp();
                    self.emit(Instr::Off {
                        t: *t as u32,
                        idx: blk,
                        ndim: idx.len() as u8,
                        dst: roff,
                    });
                    self.emit(Instr::ReduceT {
                        t: *t as u32,
                        off: roff,
                        src: rv,
                        sty: tv,
                        op: *op,
                    });
                }
                self.free_to(mark);
            }
            S::VarDef {
                t,
                shape,
                dtype,
                mtype,
                body,
            } => {
                self.tdtype[*t] = *dtype;
                let mark = self.mark();
                let blk = self.idx_block(shape)?;
                self.emit(Instr::Alloc {
                    t: *t as u32,
                    shape: blk,
                    ndim: shape.len() as u8,
                    dtype: *dtype,
                    mtype: *mtype,
                });
                self.free_to(mark);
                self.depth_of[*t] = Some(self.loops.len());
                self.stmt(body)?;
                self.emit(Instr::Free { t: *t as u32 });
            }
            S::LibCall {
                kernel,
                inputs,
                outputs,
                attrs,
                prof,
            } => {
                let id = self.lib_sites.len() as u32;
                self.lib_sites.push(LibSite {
                    kernel: kernel.clone(),
                    inputs: inputs.clone(),
                    outputs: outputs.clone(),
                    attrs: attrs.clone(),
                    prof: *prof,
                });
                self.emit(Instr::LibCall { id });
            }
            S::For {
                s,
                begin,
                end,
                scope,
                vectorize,
                prof,
                body,
            } => self.compile_for(*s, begin, end, *scope, *vectorize, *prof, body)?,
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn compile_for(
        &mut self,
        s: usize,
        begin: &crate::compiled::CExpr,
        end: &crate::compiled::CExpr,
        scope: ParallelScope,
        vectorize: bool,
        prof: usize,
        body: &crate::compiled::CStmt,
    ) -> Result<(), Unsupported> {
        let s_reg = s as u32;
        if self.instrumented {
            let rb = self.alloc_persist();
            let re = self.alloc_persist();
            let mark = self.mark();
            let (r0, t0) = self.expr(begin)?;
            let c0 = self.conv(r0, t0, Ty::I);
            self.emit(Instr::Mov { dst: rb, src: c0 });
            self.free_to(mark);
            let (r1, t1) = self.expr(end)?;
            let c1 = self.conv(r1, t1, Ty::I);
            self.emit(Instr::Mov { dst: re, src: c1 });
            self.free_to(mark);
            self.emit(Instr::LoopEnter {
                b: rb,
                e: re,
                prof: prof as u32,
                scope,
            });
            self.emit(Instr::Mov {
                dst: s_reg,
                src: rb,
            });
            let guard = self.buf.len() as u32;
            let gi = self.emit_idx(Instr::BrGeI {
                a: s_reg,
                b: re,
                to: 0,
            });
            // Instrumented mode never strength-reduces, so the loop context
            // carries no write-set.
            self.loops.push(LoopCtx::new(
                s,
                self.cond_depth,
                std::collections::HashSet::new(),
            ));
            let r = self.stmt(body);
            self.loops.pop();
            r?;
            self.emit(Instr::AddImmI { dst: s_reg, v: 1 });
            self.emit(Instr::Jmp { to: guard });
            let exit = self.buf.len() as u32;
            self.patch(gi, exit);
            self.emit(Instr::LoopExit {
                b: rb,
                e: re,
                scope,
                vectorize,
            });
        } else {
            // `end` cannot reference `s` (the lowering creates the iterator
            // slot after lowering both bounds), so `s` can take the begin
            // value before `end` evaluates.
            let mark = self.mark();
            let (r0, t0) = self.expr(begin)?;
            let c0 = self.conv(r0, t0, Ty::I);
            self.emit(Instr::Mov {
                dst: s_reg,
                src: c0,
            });
            self.free_to(mark);
            let re = self.alloc_persist();
            let mark2 = self.mark();
            let (r1, t1) = self.expr(end)?;
            let c1 = self.conv(r1, t1, Ty::I);
            self.emit(Instr::Mov { dst: re, src: c1 });
            self.free_to(mark2);
            // Schedule marks, honored in priority order: an `OpenMp` loop
            // becomes a pool region; failing that, a `vectorize` mark
            // becomes a fused wide kernel; failing both, the plain
            // strength-reduced serial loop below.
            if scope == ParallelScope::OpenMp
                && !self.in_region
                && self.try_region(s, s_reg, re, prof, body)?
            {
                return Ok(());
            }
            if vectorize && self.try_vectorize(s, s_reg, re, prof, body)? {
                return Ok(());
            }
            let mut writes = std::collections::HashSet::new();
            collect_writes(body, &mut writes);
            self.loops.push(LoopCtx::new(s, self.cond_depth, writes));
            let mut body_buf = Vec::new();
            std::mem::swap(&mut self.buf, &mut body_buf);
            let r = self.stmt(body);
            std::mem::swap(&mut self.buf, &mut body_buf);
            let ctx = self.loops.pop().expect("pushed above");
            r?;
            // Preheader (offset bases + numeric stride probes), then the
            // guard, then the relocated body, then the induction latches.
            // When the preheader can fault (hoisted invariant loads), a
            // zero-trip pre-guard skips it entirely so an empty loop never
            // touches memory it would not have touched under the
            // interpreter.
            let pre_gi = if ctx.faulty_preheader {
                Some(self.emit_idx(Instr::BrGeI {
                    a: s_reg,
                    b: re,
                    to: 0,
                }))
            } else {
                None
            };
            self.buf.extend(ctx.preheader);
            let guard = self.buf.len() as u32;
            let gi = self.emit_idx(Instr::BrGeI {
                a: s_reg,
                b: re,
                to: 0,
            });
            let base = self.buf.len() as u32;
            for ins in body_buf {
                let ins = reloc(ins, base);
                self.buf.push(ins);
            }
            self.buf.extend(ctx.latches);
            self.emit(Instr::AddImmI { dst: s_reg, v: 1 });
            self.emit(Instr::Jmp { to: guard });
            let exit = self.buf.len() as u32;
            self.patch(gi, exit);
            if let Some(pg) = pre_gi {
                self.patch(pg, exit);
            }
        }
        Ok(())
    }

    /// Record one lowering decision for the trace.
    fn decide(
        &mut self,
        kind: &'static str,
        prof: usize,
        accepted: bool,
        detail: impl Into<String>,
    ) {
        self.decisions.push(LowerDecision {
            kind,
            prof,
            accepted,
            detail: detail.into(),
        });
    }

    /// Hoist a loop-invariant expression into the (speculative) innermost
    /// loop's preheader, returning the persist register holding its value.
    /// `None` when the expression is not provably invariant.
    fn hoist_invariant(
        &mut self,
        e: &crate::compiled::CExpr,
    ) -> Result<Option<(u32, Ty)>, Unsupported> {
        let ok = {
            let lp = self.loops.last().expect("vectorize ctx pushed");
            self.invariant_ok(e, lp.s, &lp.writes)
        };
        if !ok {
            return Ok(None);
        }
        let dst = self.alloc_persist();
        let mut pre = Vec::new();
        std::mem::swap(&mut self.buf, &mut pre);
        let mark = self.mark();
        let out = self.expr(e).map(|(src, ty)| {
            self.emit(Instr::Mov { dst, src });
            ty
        });
        self.free_to(mark);
        std::mem::swap(&mut self.buf, &mut pre);
        let ty = out?;
        let lp = self.loops.last_mut().expect("vectorize ctx pushed");
        lp.preheader.extend(pre);
        if !pure_total(e) {
            lp.faulty_preheader = true;
        }
        Ok(Some((dst, ty)))
    }

    /// Strength-reduce one access for a vectorized loop and recover the
    /// stride register its induction latch would have advanced by.
    fn vec_access(
        &mut self,
        t: usize,
        idx: &[crate::compiled::CExpr],
    ) -> Result<Option<VecAccess>, Unsupported> {
        let before = self.loops.last().expect("vectorize ctx pushed").latches.len();
        let Some(off) = self.try_reduce(t, idx)? else {
            return Ok(None);
        };
        let lp = self.loops.last().expect("vectorize ctx pushed");
        let stride = lp.latches[before..].iter().find_map(|i| match i {
            Instr::AddI { dst, a, b } if *dst == off && *a == off => Some(*b),
            _ => None,
        });
        Ok(Some(VecAccess {
            t: t as u32,
            off,
            stride,
        }))
    }

    /// Classify the single-statement body of a `vectorize`-marked loop into
    /// a fused kernel. `Ok(Err(reason))` is a structured rejection (the
    /// loop compiles serially); `Err(Unsupported)` aborts the program to
    /// the interpreter as usual.
    fn build_vec_kernel(
        &mut self,
        inner: &crate::compiled::CStmt,
    ) -> Result<Result<VecKernel, &'static str>, Unsupported> {
        use crate::compiled::{CExpr as E, CStmt as S};
        let s = self.loops.last().expect("vectorize ctx pushed").s;
        match inner {
            S::Store { t, idx, value } => {
                let Some(dst) = self.vec_access(*t, idx)? else {
                    return Ok(Err("dst_not_stride_reducible"));
                };
                if dst.stride.is_none() {
                    return Ok(Err("dst_invariant"));
                }
                if let Some((xt, xidx)) = varying_load(value, s) {
                    let Some(x) = self.vec_access(xt, xidx)? else {
                        return Ok(Err("src_not_stride_reducible"));
                    };
                    return Ok(Ok(VecKernel::Copy { dst, x }));
                }
                match self.hoist_invariant(value)? {
                    Some((src, sty)) => Ok(Ok(VecKernel::Fill { dst, src, sty })),
                    None => Ok(Err("unsupported_value_shape")),
                }
            }
            S::Reduce {
                t,
                idx,
                op,
                value,
                atomic: _,
            } => {
                if ty_of(self.tdtype[*t]) != Ty::F {
                    return Ok(Err("unsupported_reduce_dtype"));
                }
                let Some(dst) = self.vec_access(*t, idx)? else {
                    return Ok(Err("dst_not_stride_reducible"));
                };
                let carried = dst.stride.is_none();
                match (op, value) {
                    (
                        ReduceOp::Add,
                        E::Binary {
                            op: BinaryOp::Mul,
                            a,
                            b,
                        },
                    ) => {
                        let (av, bv) = (varying_load(a, s), varying_load(b, s));
                        match (av, bv) {
                            (Some((xt, xidx)), Some((yt, yidx))) if carried => {
                                if xt == *t || yt == *t {
                                    return Ok(Err("reduction_target_reused"));
                                }
                                if ty_of(self.tdtype[xt]) != Ty::F
                                    || ty_of(self.tdtype[yt]) != Ty::F
                                {
                                    return Ok(Err("unsupported_reduce_dtype"));
                                }
                                let Some(x) = self.vec_access(xt, xidx)? else {
                                    return Ok(Err("src_not_stride_reducible"));
                                };
                                let Some(y) = self.vec_access(yt, yidx)? else {
                                    return Ok(Err("src_not_stride_reducible"));
                                };
                                Ok(Ok(VecKernel::Dot { dst, x, y }))
                            }
                            (Some(_), None) | (None, Some(_)) if !carried => {
                                let (xt, xidx) = av.or(bv).expect("one side varies");
                                // Multiplier on the left means the serial
                                // code computed `a * x`.
                                let a_lhs = av.is_none();
                                let mul = if a_lhs { a } else { b };
                                if xt == *t {
                                    return Ok(Err("reduction_target_reused"));
                                }
                                if ty_of(self.tdtype[xt]) != Ty::F {
                                    return Ok(Err("unsupported_reduce_dtype"));
                                }
                                let Some(x) = self.vec_access(xt, xidx)? else {
                                    return Ok(Err("src_not_stride_reducible"));
                                };
                                let Some(a) = self.hoist_invariant(mul)? else {
                                    return Ok(Err("unsupported_value_shape"));
                                };
                                Ok(Ok(VecKernel::Axpy {
                                    dst,
                                    x,
                                    a: Some(a),
                                    a_lhs,
                                }))
                            }
                            _ => Ok(Err("unsupported_value_shape")),
                        }
                    }
                    (ReduceOp::Add, _) => {
                        let Some((xt, xidx)) = varying_load(value, s) else {
                            return Ok(Err("unsupported_value_shape"));
                        };
                        if xt == *t {
                            return Ok(Err("reduction_target_reused"));
                        }
                        if ty_of(self.tdtype[xt]) != Ty::F {
                            return Ok(Err("unsupported_reduce_dtype"));
                        }
                        let Some(x) = self.vec_access(xt, xidx)? else {
                            return Ok(Err("src_not_stride_reducible"));
                        };
                        if carried {
                            Ok(Ok(VecKernel::HReduce {
                                dst,
                                x,
                                op: ReduceOp::Add,
                            }))
                        } else {
                            Ok(Ok(VecKernel::Axpy {
                                dst,
                                x,
                                a: None,
                                a_lhs: true,
                            }))
                        }
                    }
                    (ReduceOp::Min | ReduceOp::Max, _) => {
                        if !carried {
                            return Ok(Err("unsupported_reduce_op"));
                        }
                        let Some((xt, xidx)) = varying_load(value, s) else {
                            return Ok(Err("unsupported_value_shape"));
                        };
                        if xt == *t {
                            return Ok(Err("reduction_target_reused"));
                        }
                        if ty_of(self.tdtype[xt]) != Ty::F {
                            return Ok(Err("unsupported_reduce_dtype"));
                        }
                        let Some(x) = self.vec_access(xt, xidx)? else {
                            return Ok(Err("src_not_stride_reducible"));
                        };
                        Ok(Ok(VecKernel::HReduce { dst, x, op: *op }))
                    }
                    (ReduceOp::Mul, _) => Ok(Err("unsupported_reduce_op")),
                }
            }
            S::For { .. } => Ok(Err("not_innermost")),
            S::If { .. } => Ok(Err("conditional_body")),
            S::VarDef { .. } => Ok(Err("vardef_body")),
            S::LibCall { .. } => Ok(Err("libcall_body")),
            S::Seq(_) => Ok(Err("compound_body")),
            S::Nop => Ok(Err("empty_body")),
        }
    }

    /// Try to lower a `vectorize`-marked innermost loop into a [`VecSite`].
    /// On success the emitted code is `[pre-guard] preheader VecLoop`; on a
    /// structured rejection the caller falls through to the plain serial
    /// lowering with the reason in the decision log.
    fn try_vectorize(
        &mut self,
        s: usize,
        s_reg: u32,
        re: u32,
        prof: usize,
        body: &crate::compiled::CStmt,
    ) -> Result<bool, Unsupported> {
        let inner = unwrap_single(body);
        let mut writes = std::collections::HashSet::new();
        collect_writes(body, &mut writes);
        // A speculative loop context: accepted, its preheader feeds the
        // site; rejected, it is discarded whole (persist registers probed
        // into it leak, which `alloc_persist` documents as fine).
        self.loops.push(LoopCtx::new(s, self.cond_depth, writes));
        let built = self.build_vec_kernel(inner);
        let ctx = self.loops.pop().expect("pushed above");
        match built? {
            Err(reason) => {
                self.decide("vm.simd", prof, false, reason);
                Ok(false)
            }
            Ok(kernel) => {
                // The induction latches are dropped: the kernel dispatch
                // computes every offset from base + k * stride directly.
                let pre_gi = if ctx.faulty_preheader {
                    Some(self.emit_idx(Instr::BrGeI {
                        a: s_reg,
                        b: re,
                        to: 0,
                    }))
                } else {
                    None
                };
                self.buf.extend(ctx.preheader);
                let detail = kernel.name();
                let site = self.vec_sites.len() as u32;
                self.vec_sites.push(VecSite {
                    s: s_reg,
                    end: re,
                    kernel,
                });
                self.emit(Instr::VecLoop { site });
                let after = self.buf.len() as u32;
                if let Some(pg) = pre_gi {
                    self.patch(pg, after);
                }
                self.decide("vm.simd", prof, true, detail);
                Ok(true)
            }
        }
    }

    /// Prove a loop body safe for fork-join execution: every non-local
    /// write lands on provably iteration-disjoint cells, no tensor is both
    /// read and written, and atomic reductions privatize bit-exactly
    /// (integer ops only — wrapping Add/Mul and Min/Max are associative and
    /// commutative mod 2^width; float reductions are not and serialize the
    /// region instead).
    fn analyze_region(
        &self,
        body: &crate::compiled::CStmt,
        s: usize,
    ) -> Result<RegionInfo, &'static str> {
        let mut locals = std::collections::HashSet::new();
        collect_locals(body, &mut locals);
        let mut stored = std::collections::HashSet::new();
        let mut loaded = std::collections::HashSet::new();
        let mut reduced = std::collections::BTreeMap::new();
        scan_region(body, s, &locals, &mut stored, &mut loaded, &mut reduced)?;
        if stored.iter().any(|t| loaded.contains(t)) {
            return Err("read_write_overlap");
        }
        let mut privatized = Vec::new();
        for (&t, &op) in &reduced {
            if stored.contains(&t) || loaded.contains(&t) {
                return Err("reduction_target_reused");
            }
            match self.tdtype[t] {
                DataType::F32 | DataType::F64 => {
                    return Err("nonassociative_float_reduction")
                }
                DataType::Bool => return Err("unsupported_reduce_dtype"),
                DataType::I32 | DataType::I64 => privatized.push((t, op)),
            }
        }
        Ok(RegionInfo { locals, privatized })
    }

    /// Try to lower an `OpenMp` loop into a pool-executed [`ParSite`].
    fn try_region(
        &mut self,
        s: usize,
        s_reg: u32,
        re: u32,
        prof: usize,
        body: &crate::compiled::CStmt,
    ) -> Result<bool, Unsupported> {
        let info = match self.analyze_region(body, s) {
            Err(reason) => {
                self.decide("vm.parallel", prof, false, reason);
                return Ok(false);
            }
            Ok(i) => i,
        };
        // The body compiles into a standalone stream with a clean loop /
        // conditional context (workers re-enter it from scratch every
        // iteration). `depth_of` stays consistent under the reset: tensors
        // defined outside merely stop looking loop-invariant, which only
        // makes strength reduction and hoisting more conservative.
        let saved_loops = std::mem::take(&mut self.loops);
        let saved_cond = self.cond_depth;
        self.cond_depth = 0;
        self.in_region = true;
        let mut code = Vec::new();
        std::mem::swap(&mut self.buf, &mut code);
        let r = self.stmt(body);
        self.emit(Instr::Halt);
        std::mem::swap(&mut self.buf, &mut code);
        self.loops = saved_loops;
        self.cond_depth = saved_cond;
        self.in_region = false;
        r?;
        let mut local_mask = vec![false; self.tdtype.len()];
        for &t in &info.locals {
            local_mask[t] = true;
        }
        for &(t, op) in &info.privatized {
            local_mask[t] = true;
            self.decide("vm.reduce.privatize", prof, true, format!("{op:?}"));
        }
        let cost = code.len() as u32;
        let site = self.par_sites.len() as u32;
        self.par_sites.push(ParSite {
            s: s_reg,
            end: re,
            code,
            local_mask,
            privatized: info.privatized,
            cost,
        });
        self.emit(Instr::ParRegion { site });
        self.decide("vm.parallel", prof, true, format!("cost={cost}"));
        Ok(true)
    }
}

/// Walk a region body collecting non-local reads and writes; errors are
/// structured serialization reasons.
fn scan_region(
    st: &crate::compiled::CStmt,
    s: usize,
    locals: &std::collections::HashSet<usize>,
    stored: &mut std::collections::HashSet<usize>,
    loaded: &mut std::collections::HashSet<usize>,
    reduced: &mut std::collections::BTreeMap<usize, ReduceOp>,
) -> Result<(), &'static str> {
    use crate::compiled::CStmt as S;
    match st {
        S::Nop => Ok(()),
        S::Seq(v) => v
            .iter()
            .try_for_each(|x| scan_region(x, s, locals, stored, loaded, reduced)),
        S::VarDef { shape, body, .. } => {
            shape.iter().for_each(|e| collect_loads(e, locals, loaded));
            scan_region(body, s, locals, stored, loaded, reduced)
        }
        S::For {
            begin, end, body, ..
        } => {
            collect_loads(begin, locals, loaded);
            collect_loads(end, locals, loaded);
            scan_region(body, s, locals, stored, loaded, reduced)
        }
        S::If {
            cond,
            then,
            otherwise,
        } => {
            collect_loads(cond, locals, loaded);
            scan_region(then, s, locals, stored, loaded, reduced)?;
            match otherwise {
                Some(o) => scan_region(o, s, locals, stored, loaded, reduced),
                None => Ok(()),
            }
        }
        S::Store { t, idx, value } => {
            idx.iter().for_each(|e| collect_loads(e, locals, loaded));
            collect_loads(value, locals, loaded);
            if !locals.contains(t) {
                if !disjoint_by(idx, s) {
                    return Err("unproven_disjoint_write");
                }
                stored.insert(*t);
            }
            Ok(())
        }
        S::Reduce {
            t,
            idx,
            op,
            value,
            atomic,
        } => {
            idx.iter().for_each(|e| collect_loads(e, locals, loaded));
            collect_loads(value, locals, loaded);
            if !locals.contains(t) {
                if disjoint_by(idx, s) {
                    stored.insert(*t);
                } else if *atomic {
                    match reduced.entry(*t) {
                        std::collections::btree_map::Entry::Occupied(e) => {
                            if *e.get() != *op {
                                return Err("mixed_reduce_ops");
                            }
                        }
                        std::collections::btree_map::Entry::Vacant(v) => {
                            v.insert(*op);
                        }
                    }
                } else {
                    return Err("unproven_disjoint_write");
                }
            }
            Ok(())
        }
        S::LibCall { .. } => Err("libcall_in_region"),
    }
}

/// Lower a [`Compiled`] function into a VM program.
pub(crate) fn compile_program(
    c: &Compiled,
    instrumented: bool,
) -> Result<VmProgram, Unsupported> {
    let mut cp = Compiler {
        buf: Vec::new(),
        next: c.n_scalars as u32,
        floor: c.n_scalars as u32,
        max_regs: c.n_scalars as u32,
        instrumented,
        loops: Vec::new(),
        cond_depth: 0,
        depth_of: vec![None; c.n_tensors],
        tdtype: vec![DataType::F32; c.n_tensors],
        lib_sites: Vec::new(),
        in_region: false,
        vec_sites: Vec::new(),
        par_sites: Vec::new(),
        decisions: Vec::new(),
    };
    for (pi, (slot, shape, dtype, _mtype, _atype)) in c.params.iter().enumerate() {
        cp.tdtype[*slot] = *dtype;
        cp.depth_of[*slot] = Some(0);
        let mark = cp.mark();
        let blk = cp.idx_block(shape)?;
        cp.emit(Instr::BindParam {
            p: pi as u32,
            shape: blk,
            ndim: shape.len() as u8,
        });
        cp.free_to(mark);
    }
    cp.stmt(&c.body)?;
    cp.emit(Instr::Halt);
    Ok(VmProgram {
        code: cp.buf,
        n_regs: cp.max_regs as usize,
        n_tensors: c.n_tensors,
        tensor_names: c.tensor_names.clone(),
        params: c
            .params
            .iter()
            .map(|(slot, _, dtype, mtype, atype)| ParamSite {
                slot: *slot,
                dtype: *dtype,
                mtype: *mtype,
                atype: *atype,
            })
            .collect(),
        size_slots: c.size_slots.clone(),
        lib_sites: cp.lib_sites,
        prof_nodes: c.prof_nodes.clone(),
        vec_sites: cp.vec_sites,
        par_sites: cp.par_sites,
        decisions: cp.decisions,
    })
}

/// Typed flat storage of one live tensor.
#[derive(Debug, Clone)]
enum Buf {
    F32(Vec<f32>),
    F64(Vec<f64>),
    I32(Vec<i32>),
    I64(Vec<i64>),
    B(Vec<bool>),
}

impl Buf {
    fn of_tensor_val(v: &TensorVal) -> Buf {
        match v.dtype() {
            DataType::F32 => Buf::F32(v.f32_data().expect("dtype pre-checked").to_vec()),
            DataType::F64 => Buf::F64(v.f64_data().expect("dtype pre-checked").to_vec()),
            DataType::I32 => Buf::I32(v.i32_data().expect("dtype pre-checked").to_vec()),
            DataType::I64 => Buf::I64(v.i64_data().expect("dtype pre-checked").to_vec()),
            DataType::Bool => Buf::B(v.bool_data().expect("dtype pre-checked").to_vec()),
        }
    }
}

/// A live tensor in the VM.
#[derive(Debug, Clone)]
struct VTensor {
    buf: Buf,
    shape: Vec<usize>,
    numel: usize,
    dtype: DataType,
    mtype: MemType,
    /// Simulated base address (instrumented mode's cache model).
    base: u64,
    bytes: u64,
}

impl VTensor {
    fn zeros(dtype: DataType, shape: &[usize], mtype: MemType) -> VTensor {
        let numel: usize = shape.iter().product();
        let buf = match dtype {
            DataType::F32 => Buf::F32(vec![0.0; numel]),
            DataType::F64 => Buf::F64(vec![0.0; numel]),
            DataType::I32 => Buf::I32(vec![0; numel]),
            DataType::I64 => Buf::I64(vec![0; numel]),
            DataType::Bool => Buf::B(vec![false; numel]),
        };
        VTensor {
            buf,
            shape: shape.to_vec(),
            numel,
            dtype,
            mtype,
            base: 0,
            bytes: (numel * dtype.size_bytes()) as u64,
        }
    }

    fn from_tensor_val(v: &TensorVal, mtype: MemType) -> VTensor {
        VTensor {
            buf: Buf::of_tensor_val(v),
            shape: v.shape().to_vec(),
            numel: v.numel(),
            dtype: v.dtype(),
            mtype,
            base: 0,
            bytes: v.size_bytes() as u64,
        }
    }

    fn tensor_val(&self) -> TensorVal {
        match &self.buf {
            Buf::F32(v) => TensorVal::from_f32(&self.shape, v.clone()),
            Buf::F64(v) => TensorVal::from_f64(&self.shape, v.clone()),
            Buf::I32(v) => TensorVal::from_i32(&self.shape, v.clone()),
            Buf::I64(v) => TensorVal::from_i64(&self.shape, v.clone()),
            Buf::B(v) => TensorVal::from_bool(&self.shape, v.clone()),
        }
    }

    fn into_tensor_val(self) -> TensorVal {
        match self.buf {
            Buf::F32(v) => TensorVal::from_f32(&self.shape, v),
            Buf::F64(v) => TensorVal::from_f64(&self.shape, v),
            Buf::I32(v) => TensorVal::from_i32(&self.shape, v),
            Buf::I64(v) => TensorVal::from_i64(&self.shape, v),
            Buf::B(v) => TensorVal::from_bool(&self.shape, v),
        }
    }

    /// Mirror of [`TensorVal::get_flat`].
    #[inline]
    fn scalar_at(&self, off: usize) -> Scalar {
        match &self.buf {
            Buf::F32(v) => Scalar::Float(v[off] as f64),
            Buf::F64(v) => Scalar::Float(v[off]),
            Buf::I32(v) => Scalar::Int(v[off] as i64),
            Buf::I64(v) => Scalar::Int(v[off]),
            Buf::B(v) => Scalar::Bool(v[off]),
        }
    }

    /// Mirror of [`TensorVal::set_flat`].
    #[inline]
    fn store_scalar(&mut self, off: usize, v: Scalar) {
        match &mut self.buf {
            Buf::F32(d) => d[off] = v.as_f64() as f32,
            Buf::F64(d) => d[off] = v.as_f64(),
            Buf::I32(d) => d[off] = v.as_i64() as i32,
            Buf::I64(d) => d[off] = v.as_i64(),
            Buf::B(d) => d[off] = v.as_bool(),
        }
    }

    /// Reset every element to zero in place.
    fn fill_zero(&mut self) {
        match &mut self.buf {
            Buf::F32(v) => v.fill(0.0),
            Buf::F64(v) => v.fill(0.0),
            Buf::I32(v) => v.fill(0),
            Buf::I64(v) => v.fill(0),
            Buf::B(v) => v.fill(false),
        }
    }

    /// Retarget this buffer at `(dtype, shape, mtype)` without zeroing,
    /// reusing the storage when the dtype matches. Returns `None` on a
    /// dtype mismatch, otherwise `Some(grew)` — whether the resize had to
    /// allocate beyond the old capacity. Stale elements survive; callers
    /// need a write-before-read proof or a [`fill_zero`](Self::fill_zero).
    fn reuse_for(&mut self, dtype: DataType, shape: &[usize], mtype: MemType) -> Option<bool> {
        if self.dtype != dtype {
            return None;
        }
        let numel: usize = shape.iter().product();
        fn fit<T: Default + Clone>(v: &mut Vec<T>, n: usize) -> bool {
            let grew = n > v.capacity();
            v.resize(n, T::default());
            grew
        }
        let grew = match &mut self.buf {
            Buf::F32(v) => fit(v, numel),
            Buf::F64(v) => fit(v, numel),
            Buf::I32(v) => fit(v, numel),
            Buf::I64(v) => fit(v, numel),
            Buf::B(v) => fit(v, numel),
        };
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.numel = numel;
        self.mtype = mtype;
        self.base = 0;
        self.bytes = (numel * dtype.size_bytes()) as u64;
        Some(grew)
    }
}

/// Class-keyed free-lists of [`VTensor`] buffers, held across runs by a
/// [`crate::arena::RunContext`]. Only the coordinator state touches the
/// pool — fork-join workers allocate their privates directly.
#[derive(Debug)]
pub(crate) struct VmPool {
    plan_hash: u64,
    n_params: usize,
    /// Per def index (slot − n_params): `(class, must_zero)`.
    defs: Vec<Option<(usize, bool)>>,
    free: Vec<Vec<VTensor>>,
    pub(crate) stats: crate::arena::ArenaStats,
}

impl VmPool {
    pub(crate) fn new(plan: &ft_analysis::MemPlan) -> VmPool {
        VmPool {
            plan_hash: plan.plan_hash(),
            n_params: plan.n_params,
            defs: plan
                .entries
                .iter()
                .map(|e| e.class.map(|c| (c, e.must_zero)))
                .collect(),
            free: (0..plan.classes.len()).map(|_| Vec::new()).collect(),
            stats: crate::arena::ArenaStats::default(),
        }
    }

    pub(crate) fn plan_hash(&self) -> u64 {
        self.plan_hash
    }

    fn class_of(&self, slot: usize) -> Option<(usize, bool)> {
        self.defs.get(slot.checked_sub(self.n_params)?).copied()?
    }

    /// A buffer for the def occupying tensor slot `slot`; pool hits skip
    /// the zero-fill when write-before-read is proven by the plan.
    fn take(&mut self, slot: usize, dtype: DataType, shape: &[usize], mtype: MemType) -> VTensor {
        if let Some((class, must_zero)) = self.class_of(slot) {
            while let Some(mut vt) = self.free[class].pop() {
                match vt.reuse_for(dtype, shape, mtype) {
                    Some(grew) => {
                        if must_zero {
                            vt.fill_zero();
                        }
                        if grew {
                            self.stats.miss(0);
                        } else {
                            self.stats.hit();
                        }
                        return vt;
                    }
                    None => continue, // dtype mismatch: drop, try next
                }
            }
            let vt = VTensor::zeros(dtype, shape, mtype);
            self.stats.miss(vt.bytes);
            return vt;
        }
        self.stats.miss(0);
        VTensor::zeros(dtype, shape, mtype)
    }

    /// Return a scope-exited def's buffer to its class free-list.
    fn put(&mut self, slot: usize, vt: VTensor) {
        if let Some((class, _)) = self.class_of(slot) {
            self.free[class].push(vt);
        }
    }
}

/// Raw shared view of the coordinator's tensor slots for fork-join regions.
///
/// SAFETY: region compilation proves every concurrent non-local write lands
/// on iteration-disjoint cells, so element writes never race; the `Option`
/// shells of shared slots are never inserted or removed while the region
/// runs (region code contains no `Alloc`/`Free`/`BindParam` for non-local
/// tensors, and privatized slots are masked worker-local). Transient `&mut`
/// views of one shared slot may coexist across workers only under that
/// disjoint-write proof — the same contract the threaded backend's shared
/// buffers rely on.
struct SharedSlots(*mut Option<VTensor>);
unsafe impl Send for SharedSlots {}
unsafe impl Sync for SharedSlots {}

/// The identity element of `op`, in the shape and dtype of `like`.
fn identity_tensor(like: &VTensor, op: ReduceOp) -> VTensor {
    let mut vt = VTensor::zeros(like.dtype, &like.shape, like.mtype);
    match (op, &mut vt.buf) {
        (ReduceOp::Add, _) => {}
        (ReduceOp::Mul, Buf::I32(v)) => v.fill(1),
        (ReduceOp::Mul, Buf::I64(v)) => v.fill(1),
        (ReduceOp::Min, Buf::I32(v)) => v.fill(i32::MAX),
        (ReduceOp::Min, Buf::I64(v)) => v.fill(i64::MAX),
        (ReduceOp::Max, Buf::I32(v)) => v.fill(i32::MIN),
        (ReduceOp::Max, Buf::I64(v)) => v.fill(i64::MIN),
        // The region analysis only privatizes integer reductions.
        _ => unreachable!("privatized reductions are integer-only"),
    }
    vt
}

/// Fold one chunk's private accumulator into the shared target, cell by
/// cell, with the interpreter's reduce semantics. Wrapping integer Add/Mul
/// and Min/Max are associative and commutative (i32 truncation commutes
/// with i64 arithmetic), so accumulate-then-merge equals the serial order.
fn merge_reduce(dst: &mut VTensor, part: &VTensor, op: ReduceOp) {
    for o in 0..dst.numel {
        let new = crate::interp::apply_reduce(op, dst.scalar_at(o), part.scalar_at(o));
        dst.store_scalar(o, new);
    }
}

/// Minimum `trip * body_cost` before a parallel region pays for the
/// fork-join handshake; below it the region runs serially in place.
const PAR_THRESHOLD: u64 = 32_768;

/// Mutable machine state of one run.
struct VmState<'a> {
    config: &'a DeviceConfig,
    names: &'a [String],
    regs: Vec<u64>,
    tensors: Vec<Option<VTensor>>,
    instrumented: bool,
    counters: PerfCounters,
    cache: Option<CacheSim>,
    next_addr: u64,
    gpu_depth: usize,
    prof: Option<Vec<StmtCounters>>,
    prof_cur: usize,
    /// `(saved prof_cur, modeled_cycles at entry)` per open loop.
    loop_stack: Vec<(usize, f64)>,
    /// Fast-mode live-byte accounting, `[cpu, gpu]`.
    live: [u64; 2],
    /// Inside a fork-join region: the coordinator's slots plus the mask of
    /// slots that stay worker-private (region locals and privatized
    /// reduction targets).
    shared: Option<(&'a SharedSlots, &'a [bool])>,
    /// Fast-mode dispatch tallies, present only when the owning
    /// [`VmRuntime`] has a metrics registry. Coordinator-thread only:
    /// worker states inside a fork-join region run untallied, so the
    /// counts are independent of worker count.
    tally: Option<VmTally>,
    /// Plan-driven buffer pool for `Alloc`/`Free` storage. Coordinator
    /// only — fork-join worker states run with `None`; accounting
    /// (instrumented counters and fast-mode live bytes) is unchanged.
    arena: Option<VmPool>,
}

/// Per-run dispatch bookkeeping harvested into the metrics registry after
/// execution. Plain integers on the coordinator thread — no atomics on the
/// dispatch hot path.
#[derive(Debug)]
struct VmTally {
    /// Dispatch counts per fused [`VecKernel`] kind, indexed as
    /// [`VEC_KERNEL_NAMES`].
    vec: [u64; VEC_KERNEL_NAMES.len()],
    /// Parallel-region sites scheduled on the worker pool.
    par_pool: u64,
    /// Parallel-region sites that took the serial fallback (tiny trip
    /// count, nested region, or unavailable privatization).
    par_serial: u64,
    /// Wall time of each fused-kernel dispatch, in nanoseconds.
    kernel_ns: ft_metrics::Histogram,
}

/// Metric-name suffixes of the fused vectorized kernels, in
/// [`VmTally::vec`] index order.
const VEC_KERNEL_NAMES: [&str; 5] = ["fill", "copy", "axpy", "dot", "hreduce"];

/// The [`VmTally::vec`] slot a kernel dispatch is counted in.
fn vec_tally_idx(k: &VecKernel) -> usize {
    match k {
        VecKernel::Fill { .. } => 0,
        VecKernel::Copy { .. } => 1,
        VecKernel::Axpy { .. } => 2,
        VecKernel::Dot { .. } => 3,
        VecKernel::HReduce { .. } => 4,
    }
}

#[inline(always)]
fn dev_index(device: Device) -> usize {
    matches!(device, Device::Gpu) as usize
}

impl VmState<'_> {
    #[inline(always)]
    fn ri(&self, r: u32) -> i64 {
        self.regs[r as usize] as i64
    }

    #[inline(always)]
    fn rf(&self, r: u32) -> f64 {
        f64::from_bits(self.regs[r as usize])
    }

    #[inline(always)]
    fn rb(&self, r: u32) -> bool {
        self.regs[r as usize] != 0
    }

    #[inline(always)]
    fn wi(&mut self, r: u32, v: i64) {
        self.regs[r as usize] = v as u64;
    }

    #[inline(always)]
    fn wf(&mut self, r: u32, v: f64) {
        self.regs[r as usize] = v.to_bits();
    }

    #[inline(always)]
    fn wb(&mut self, r: u32, v: bool) {
        self.regs[r as usize] = v as u64;
    }

    #[inline]
    fn scalar_of(&self, r: u32, ty: Ty) -> Scalar {
        match ty {
            Ty::I => Scalar::Int(self.ri(r)),
            Ty::F => Scalar::Float(self.rf(r)),
            Ty::B => Scalar::Bool(self.rb(r)),
        }
    }

    /// The tensor slot `t` resolves to: the local vector, or the
    /// coordinator's slot when running inside a fork-join region and `t`
    /// is not worker-private.
    #[inline(always)]
    fn slot(&self, t: usize) -> &Option<VTensor> {
        match self.shared {
            // SAFETY: see [`SharedSlots`].
            Some((sh, mask)) if !mask[t] => unsafe { &*sh.0.add(t) },
            _ => &self.tensors[t],
        }
    }

    #[inline(always)]
    fn slot_mut(&mut self, t: usize) -> &mut Option<VTensor> {
        match self.shared {
            // SAFETY: see [`SharedSlots`].
            Some((sh, mask)) if !mask[t] => unsafe { &mut *sh.0.add(t) },
            _ => &mut self.tensors[t],
        }
    }

    /// `numel` of a live slot, or the load/store error payload.
    #[inline]
    fn numel_of(&self, t: usize) -> Result<usize, RuntimeError> {
        self.slot(t)
            .as_ref()
            .map(|vt| vt.numel)
            .ok_or_else(|| RuntimeError::UndefinedName(self.names[t].clone()))
    }

    /// One `LoadFlat` worth of semantics (checks and error payloads
    /// included) as a plain call, for the vector kernels' scalar tails.
    #[inline]
    fn load_flat_val(&self, t: usize, o: i64) -> Result<Scalar, RuntimeError> {
        let Some(vt) = self.slot(t).as_ref() else {
            return Err(RuntimeError::UndefinedName(self.names[t].clone()));
        };
        if o < 0 || o as usize >= vt.numel {
            return Err(self.oob(t, vec![o]));
        }
        Ok(vt.scalar_at(o as usize))
    }

    /// One `StoreFlat` worth of semantics as a plain call.
    #[inline]
    fn store_flat_val(&mut self, t: usize, o: i64, v: Scalar) -> Result<(), RuntimeError> {
        let numel = self.numel_of(t)?;
        if o < 0 || o as usize >= numel {
            return Err(self.oob(t, vec![o]));
        }
        self.slot_mut(t)
            .as_mut()
            .expect("checked above")
            .store_scalar(o as usize, v);
        Ok(())
    }

    /// One `ReduceFlat` worth of semantics as a plain call.
    #[inline]
    fn reduce_flat_val(
        &mut self,
        t: usize,
        o: i64,
        op: ReduceOp,
        v: Scalar,
    ) -> Result<(), RuntimeError> {
        let old = self.load_flat_val(t, o)?;
        let new = crate::interp::apply_reduce(op, old, v);
        self.slot_mut(t)
            .as_mut()
            .expect("checked above")
            .store_scalar(o as usize, new);
        Ok(())
    }

    /// Mirror of `ExecCtx::count_op`.
    fn count_op(&mut self, float: bool) {
        if float {
            self.counters.flops += 1;
        } else {
            self.counters.int_ops += 1;
        }
        self.counters.modeled_cycles += self.config.cost_op;
        if let Some(p) = self.prof.as_mut() {
            let c = &mut p[self.prof_cur];
            if float {
                c.flops += 1;
            } else {
                c.int_ops += 1;
            }
            c.cycles += self.config.cost_op;
        }
    }

    /// Mirror of `ExecCtx::record_access`.
    fn record_access(&mut self, t: usize, off: usize) {
        let vt = self.slot(t).as_ref().expect("checked by caller");
        let bytes = vt.dtype.size_bytes() as u64;
        let mtype = vt.mtype;
        let base = vt.base;
        match mtype {
            MemType::CpuHeap | MemType::GpuGlobal => {
                self.counters.heap_bytes += bytes;
                self.counters.l2_bytes += bytes;
                let cache = self.cache.as_mut().expect("instrumented");
                let addr = base + off as u64 * bytes;
                let m0 = cache.misses;
                cache.access(addr, bytes);
                let misses = cache.misses - m0;
                let cyc = if misses > 0 {
                    misses as f64 * self.config.cost_dram
                } else {
                    self.config.cost_l2
                };
                self.counters.dram_bytes += misses * LINE;
                self.counters.modeled_cycles += cyc;
                if let Some(p) = self.prof.as_mut() {
                    let c = &mut p[self.prof_cur];
                    c.heap_bytes += bytes;
                    c.l2_bytes += bytes;
                    c.dram_bytes += misses * LINE;
                    c.cycles += cyc;
                }
            }
            MemType::CpuStack | MemType::GpuShared | MemType::GpuLocal => {
                self.counters.scratch_bytes += bytes;
                self.counters.modeled_cycles += self.config.cost_scratch;
                if let Some(p) = self.prof.as_mut() {
                    let c = &mut p[self.prof_cur];
                    c.scratch_bytes += bytes;
                    c.cycles += self.config.cost_scratch;
                }
            }
        }
    }

    /// Mirror of `ExecCtx::charge_bulk`.
    fn charge_bulk(&mut self, bytes: u64, flops: u64, cycles: f64) {
        self.counters.heap_bytes += bytes;
        self.counters.l2_bytes += bytes;
        self.counters.dram_bytes += bytes;
        self.counters.flops += flops;
        let cyc = cycles + (bytes as f64 / LINE as f64) * self.config.cost_dram / 4.0;
        self.counters.modeled_cycles += cyc;
        if let Some(p) = self.prof.as_mut() {
            let c = &mut p[self.prof_cur];
            c.heap_bytes += bytes;
            c.l2_bytes += bytes;
            c.dram_bytes += bytes;
            c.flops += flops;
            c.cycles += cyc;
        }
    }

    /// Capacity check + accounting, mirroring `ExecCtx::alloc` in
    /// instrumented mode and keeping only the OOM check in fast mode.
    fn account_alloc(&mut self, t: usize, mut vt: VTensor) -> Result<(), RuntimeError> {
        let device = vt.mtype.device();
        let bytes = vt.bytes;
        let capacity = self.config.capacity(device) as u64;
        if self.instrumented {
            let dev_name = device.to_string();
            let live = *self.counters.live_bytes.get(&dev_name).unwrap_or(&0);
            if live + bytes > capacity {
                return Err(RuntimeError::OutOfMemory {
                    device,
                    requested: bytes,
                    live,
                    capacity,
                });
            }
            self.counters.alloc(&dev_name, bytes);
            vt.base = self.next_addr;
            self.next_addr += bytes.div_ceil(LINE) * LINE;
        } else {
            let di = dev_index(device);
            let live = self.live[di];
            if live + bytes > capacity {
                return Err(RuntimeError::OutOfMemory {
                    device,
                    requested: bytes,
                    live,
                    capacity,
                });
            }
            self.live[di] = live + bytes;
        }
        *self.slot_mut(t) = Some(vt);
        Ok(())
    }

    fn account_free(&mut self, t: usize) -> Option<VTensor> {
        self.slot_mut(t).take().inspect(|vt| {
            let device = vt.mtype.device();
            if self.instrumented {
                self.counters.free(&device.to_string(), vt.bytes);
            } else {
                let di = dev_index(device);
                self.live[di] = self.live[di].saturating_sub(vt.bytes);
            }
        })
    }

    fn oob(&self, t: usize, index: Vec<i64>) -> RuntimeError {
        let shape = self.slot(t)
            .as_ref()
            .map(|vt| vt.shape.clone())
            .unwrap_or_default();
        RuntimeError::IndexOutOfBounds {
            name: self.names[t].clone(),
            index,
            shape,
        }
    }

    /// Dispatch a `LibCall` site (same kernels, accounting and error payloads
    /// as `crate::libkernel::dispatch_slots`).
    fn libcall(&mut self, prog: &VmProgram, site: &LibSite) -> Result<(), RuntimeError> {
        match site.kernel.as_str() {
            "matmul" => {
                let [m, k, n] = site.attrs.as_slice() else {
                    return Err(RuntimeError::UnknownKernel(
                        "matmul expects attrs [m, k, n]".to_string(),
                    ));
                };
                let (m, k, n) = (*m as usize, *k as usize, *n as usize);
                let fetch = |st: &VmState<'_>, slot: usize| -> Result<TensorVal, RuntimeError> {
                    st.slot(slot)
                        .as_ref()
                        .map(VTensor::tensor_val)
                        .ok_or_else(|| RuntimeError::UndefinedName(st.names[slot].clone()))
                };
                let a = fetch(self, site.inputs[0])?;
                let b = fetch(self, site.inputs[1])?;
                let mut c = fetch(self, site.outputs[0])?;
                if a.numel() != m * k || b.numel() != k * n || c.numel() != m * n {
                    return Err(RuntimeError::ShapeMismatch {
                        name: prog.tensor_names[site.outputs[0]].clone(),
                        expected: vec![m, n],
                        actual: c.shape().to_vec(),
                    });
                }
                crate::libkernel::matmul_blocked(&a, &b, &mut c, m, k, n);
                let vt = self
                    .slot_mut(site.outputs[0])
                    .as_mut()
                    .expect("fetched above");
                vt.buf = Buf::of_tensor_val(&c);
                if self.instrumented {
                    let elem = 4u64;
                    let bytes = ((m * k + k * n + 2 * m * n) as u64) * elem;
                    let flops = (2 * m * k * n) as u64;
                    self.charge_bulk(
                        bytes,
                        flops,
                        flops as f64 / crate::libkernel::LIB_EFFICIENCY,
                    );
                }
                Ok(())
            }
            other => Err(RuntimeError::UnknownKernel(other.to_string())),
        }
    }

    /// The dispatch loop over the program's top-level stream.
    fn exec(
        &mut self,
        prog: &VmProgram,
        inputs: &HashMap<String, TensorVal>,
    ) -> Result<(), RuntimeError> {
        self.exec_code(&prog.code, prog, inputs)
    }

    /// The dispatch loop over one instruction stream (the top-level code or
    /// a fork-join region body).
    fn exec_code(
        &mut self,
        code: &[Instr],
        prog: &VmProgram,
        inputs: &HashMap<String, TensorVal>,
    ) -> Result<(), RuntimeError> {
        let mut pc = 0usize;
        loop {
            match &code[pc] {
                Instr::Halt => return Ok(()),
                Instr::Jmp { to } => {
                    pc = *to as usize;
                    continue;
                }
                Instr::BrFalse { cond, to } => {
                    if !self.rb(*cond) {
                        pc = *to as usize;
                        continue;
                    }
                }
                Instr::BrGeI { a, b, to } => {
                    if self.ri(*a) >= self.ri(*b) {
                        pc = *to as usize;
                        continue;
                    }
                }
                Instr::ConstI { dst, v } => self.wi(*dst, *v),
                Instr::ConstF { dst, v } => self.wf(*dst, *v),
                Instr::ConstB { dst, v } => self.wb(*dst, *v),
                Instr::Mov { dst, src } => self.regs[*dst as usize] = self.regs[*src as usize],
                Instr::AddImmI { dst, v } => {
                    let x = self.ri(*dst).wrapping_add(*v);
                    self.wi(*dst, x);
                }
                Instr::AddI { dst, a, b } => {
                    let v = self.ri(*a).wrapping_add(self.ri(*b));
                    self.wi(*dst, v);
                }
                Instr::SubI { dst, a, b } => {
                    let v = self.ri(*a).wrapping_sub(self.ri(*b));
                    self.wi(*dst, v);
                }
                Instr::MulI { dst, a, b } => {
                    let v = self.ri(*a).wrapping_mul(self.ri(*b));
                    self.wi(*dst, v);
                }
                Instr::DivI { dst, a, b } => {
                    let y = self.ri(*b);
                    if y == 0 {
                        return Err(RuntimeError::DivisionByZero);
                    }
                    let v = self.ri(*a).div_euclid(y);
                    self.wi(*dst, v);
                }
                Instr::ModI { dst, a, b } => {
                    let y = self.ri(*b);
                    if y == 0 {
                        return Err(RuntimeError::DivisionByZero);
                    }
                    let v = self.ri(*a).rem_euclid(y);
                    self.wi(*dst, v);
                }
                Instr::MinI { dst, a, b } => {
                    let v = self.ri(*a).min(self.ri(*b));
                    self.wi(*dst, v);
                }
                Instr::MaxI { dst, a, b } => {
                    let v = self.ri(*a).max(self.ri(*b));
                    self.wi(*dst, v);
                }
                Instr::PowI { dst, a, b } => {
                    let e = self.ri(*b).clamp(0, 62) as u32;
                    let v = self.ri(*a).wrapping_pow(e);
                    self.wi(*dst, v);
                }
                Instr::AddF { dst, a, b } => {
                    let v = self.rf(*a) + self.rf(*b);
                    self.wf(*dst, v);
                }
                Instr::SubF { dst, a, b } => {
                    let v = self.rf(*a) - self.rf(*b);
                    self.wf(*dst, v);
                }
                Instr::MulF { dst, a, b } => {
                    let v = self.rf(*a) * self.rf(*b);
                    self.wf(*dst, v);
                }
                Instr::DivF { dst, a, b } => {
                    let v = self.rf(*a) / self.rf(*b);
                    self.wf(*dst, v);
                }
                Instr::ModF { dst, a, b } => {
                    let v = self.rf(*a).rem_euclid(self.rf(*b));
                    self.wf(*dst, v);
                }
                Instr::MinF { dst, a, b } => {
                    let v = self.rf(*a).min(self.rf(*b));
                    self.wf(*dst, v);
                }
                Instr::MaxF { dst, a, b } => {
                    let v = self.rf(*a).max(self.rf(*b));
                    self.wf(*dst, v);
                }
                Instr::PowF { dst, a, b } => {
                    let v = self.rf(*a).powf(self.rf(*b));
                    self.wf(*dst, v);
                }
                Instr::NegI { dst, a } => {
                    let v = self.ri(*a).wrapping_neg();
                    self.wi(*dst, v);
                }
                Instr::NegF { dst, a } => {
                    let v = -self.rf(*a);
                    self.wf(*dst, v);
                }
                Instr::AbsI { dst, a } => {
                    let v = self.ri(*a).wrapping_abs();
                    self.wi(*dst, v);
                }
                Instr::AbsF { dst, a } => {
                    let v = self.rf(*a).abs();
                    self.wf(*dst, v);
                }
                Instr::SignI { dst, a } => {
                    let v = self.ri(*a).signum();
                    self.wi(*dst, v);
                }
                Instr::SignF { dst, a } => {
                    let x = self.rf(*a);
                    let v = if x > 0.0 {
                        1.0
                    } else if x < 0.0 {
                        -1.0
                    } else {
                        0.0
                    };
                    self.wf(*dst, v);
                }
                Instr::NotB { dst, a } => {
                    let v = !self.rb(*a);
                    self.wb(*dst, v);
                }
                Instr::SqrtF { dst, a } => {
                    let v = self.rf(*a).sqrt();
                    self.wf(*dst, v);
                }
                Instr::ExpF { dst, a } => {
                    let v = self.rf(*a).exp();
                    self.wf(*dst, v);
                }
                Instr::LnF { dst, a } => {
                    let v = self.rf(*a).ln();
                    self.wf(*dst, v);
                }
                Instr::SigmoidF { dst, a } => {
                    let v = 1.0 / (1.0 + (-self.rf(*a)).exp());
                    self.wf(*dst, v);
                }
                Instr::TanhF { dst, a } => {
                    let v = self.rf(*a).tanh();
                    self.wf(*dst, v);
                }
                Instr::EqF { dst, a, b } => {
                    let v = self.rf(*a) == self.rf(*b);
                    self.wb(*dst, v);
                }
                Instr::NeF { dst, a, b } => {
                    let v = self.rf(*a) != self.rf(*b);
                    self.wb(*dst, v);
                }
                Instr::LtF { dst, a, b } => {
                    let v = self.rf(*a) < self.rf(*b);
                    self.wb(*dst, v);
                }
                Instr::LeF { dst, a, b } => {
                    let v = self.rf(*a) <= self.rf(*b);
                    self.wb(*dst, v);
                }
                Instr::GtF { dst, a, b } => {
                    let v = self.rf(*a) > self.rf(*b);
                    self.wb(*dst, v);
                }
                Instr::GeF { dst, a, b } => {
                    let v = self.rf(*a) >= self.rf(*b);
                    self.wb(*dst, v);
                }
                Instr::AndB { dst, a, b } => {
                    let v = self.rb(*a) && self.rb(*b);
                    self.wb(*dst, v);
                }
                Instr::OrB { dst, a, b } => {
                    let v = self.rb(*a) || self.rb(*b);
                    self.wb(*dst, v);
                }
                Instr::IToF { dst, a } => {
                    let v = self.ri(*a) as f64;
                    self.wf(*dst, v);
                }
                Instr::BToF { dst, a } => {
                    let v = self.rb(*a) as i64 as f64;
                    self.wf(*dst, v);
                }
                Instr::BToI { dst, a } => {
                    let v = self.rb(*a) as i64;
                    self.wi(*dst, v);
                }
                Instr::FToI { dst, a } => {
                    let v = self.rf(*a) as i64;
                    self.wi(*dst, v);
                }
                Instr::IToB { dst, a } => {
                    let v = self.ri(*a) != 0;
                    self.wb(*dst, v);
                }
                Instr::FToB { dst, a } => {
                    let v = self.rf(*a) != 0.0;
                    self.wb(*dst, v);
                }
                Instr::RoundF32 { dst, a } => {
                    let v = self.rf(*a) as f32 as f64;
                    self.wf(*dst, v);
                }
                Instr::TruncI32 { dst, a } => {
                    let v = self.ri(*a) as i32 as i64;
                    self.wi(*dst, v);
                }
                Instr::Off { t, idx, ndim, dst } => {
                    let ti = *t as usize;
                    let Some(vt) = self.slot(ti).as_ref() else {
                        return Err(RuntimeError::UndefinedName(self.names[ti].clone()));
                    };
                    let nd = *ndim as usize;
                    let base = *idx as usize;
                    if nd != vt.shape.len() {
                        let index: Vec<i64> =
                            (0..nd).map(|d| self.regs[base + d] as i64).collect();
                        return Err(self.oob(ti, index));
                    }
                    let mut off = 0usize;
                    let mut ok = true;
                    for d in 0..nd {
                        let i = self.regs[base + d] as i64;
                        let extent = vt.shape[d];
                        if i < 0 || i as usize >= extent {
                            ok = false;
                            break;
                        }
                        off = off * extent + i as usize;
                    }
                    if !ok {
                        let index: Vec<i64> =
                            (0..nd).map(|d| self.regs[base + d] as i64).collect();
                        return Err(self.oob(ti, index));
                    }
                    self.regs[*dst as usize] = off as u64;
                }
                Instr::OffRaw { t, idx, ndim, dst } => {
                    let ti = *t as usize;
                    let vt = self.slot(ti).as_ref().expect("defined outside loop");
                    let base = *idx as usize;
                    let mut off = 0i64;
                    for d in 0..*ndim as usize {
                        let i = self.regs[base + d] as i64;
                        off = off.wrapping_mul(vt.shape[d] as i64).wrapping_add(i);
                    }
                    self.regs[*dst as usize] = off as u64;
                }
                Instr::LoadT { t, off, dst } => {
                    let ti = *t as usize;
                    let o = self.regs[*off as usize] as usize;
                    let vt = self.slot(ti).as_ref().expect("Off checked");
                    let bits = match &vt.buf {
                        Buf::F32(v) => (v[o] as f64).to_bits(),
                        Buf::F64(v) => v[o].to_bits(),
                        Buf::I32(v) => (v[o] as i64) as u64,
                        Buf::I64(v) => v[o] as u64,
                        Buf::B(v) => v[o] as u64,
                    };
                    self.regs[*dst as usize] = bits;
                    if self.instrumented {
                        self.record_access(ti, o);
                    }
                }
                Instr::LoadFlat { t, off, dst } => {
                    let ti = *t as usize;
                    let o = self.regs[*off as usize] as i64;
                    // `Scalar` widens exactly like the register file does.
                    let bits = match self.load_flat_val(ti, o)? {
                        Scalar::Float(x) => x.to_bits(),
                        Scalar::Int(x) => x as u64,
                        Scalar::Bool(x) => x as u64,
                    };
                    self.regs[*dst as usize] = bits;
                }
                Instr::StoreT { t, off, src, sty } => {
                    let ti = *t as usize;
                    let o = self.regs[*off as usize] as usize;
                    let v = self.scalar_of(*src, *sty);
                    self.slot_mut(ti)
                        .as_mut()
                        .expect("Off checked")
                        .store_scalar(o, v);
                    if self.instrumented {
                        self.record_access(ti, o);
                    }
                }
                Instr::StoreFlat { t, off, src, sty } => {
                    let ti = *t as usize;
                    let o = self.regs[*off as usize] as i64;
                    let v = self.scalar_of(*src, *sty);
                    self.store_flat_val(ti, o, v)?;
                }
                Instr::ReduceT {
                    t,
                    off,
                    src,
                    sty,
                    op,
                } => {
                    let ti = *t as usize;
                    let o = self.regs[*off as usize] as usize;
                    let v = self.scalar_of(*src, *sty);
                    let old = self.slot(ti).as_ref().expect("Off checked").scalar_at(o);
                    if self.instrumented {
                        self.record_access(ti, o);
                        self.count_op(
                            matches!(old, Scalar::Float(_)) || matches!(v, Scalar::Float(_)),
                        );
                    }
                    let new = crate::interp::apply_reduce(*op, old, v);
                    self.slot_mut(ti)
                        .as_mut()
                        .expect("Off checked")
                        .store_scalar(o, new);
                    if self.instrumented {
                        self.record_access(ti, o);
                    }
                }
                Instr::ReduceFlat {
                    t,
                    off,
                    src,
                    sty,
                    op,
                } => {
                    let ti = *t as usize;
                    let o = self.regs[*off as usize] as i64;
                    let v = self.scalar_of(*src, *sty);
                    self.reduce_flat_val(ti, o, *op, v)?;
                }
                Instr::Alloc {
                    t,
                    shape,
                    ndim,
                    dtype,
                    mtype,
                } => {
                    let ti = *t as usize;
                    let base = *shape as usize;
                    let mut sh = Vec::with_capacity(*ndim as usize);
                    for d in 0..*ndim as usize {
                        let v = self.regs[base + d] as i64;
                        let u = usize::try_from(v).map_err(|_| {
                            RuntimeError::UnresolvedSize(self.names[ti].clone())
                        })?;
                        sh.push(u);
                    }
                    let vt = match self.arena.as_mut() {
                        Some(pool) => pool.take(ti, *dtype, &sh, *mtype),
                        None => VTensor::zeros(*dtype, &sh, *mtype),
                    };
                    self.account_alloc(ti, vt)?;
                }
                Instr::Free { t } => {
                    let ti = *t as usize;
                    if let Some(vt) = self.account_free(ti) {
                        if let Some(pool) = self.arena.as_mut() {
                            pool.put(ti, vt);
                        }
                    }
                }
                Instr::BindParam { p, shape, ndim } => {
                    let site = &prog.params[*p as usize];
                    let ti = site.slot;
                    let name = &prog.tensor_names[ti];
                    let base = *shape as usize;
                    let mut sh = Vec::with_capacity(*ndim as usize);
                    for d in 0..*ndim as usize {
                        let v = self.regs[base + d] as i64;
                        let u = usize::try_from(v)
                            .map_err(|_| RuntimeError::UnresolvedSize(name.clone()))?;
                        sh.push(u);
                    }
                    let vt = match site.atype {
                        AccessType::Input | AccessType::InOut => {
                            let tv = inputs
                                .get(name)
                                .ok_or_else(|| RuntimeError::MissingInput(name.clone()))?;
                            if tv.shape() != sh.as_slice() {
                                return Err(RuntimeError::ShapeMismatch {
                                    name: name.clone(),
                                    expected: sh,
                                    actual: tv.shape().to_vec(),
                                });
                            }
                            VTensor::from_tensor_val(tv, site.mtype)
                        }
                        _ => VTensor::zeros(site.dtype, &sh, site.mtype),
                    };
                    self.account_alloc(ti, vt)?;
                }
                Instr::LibCall { id } => {
                    let site = &prog.lib_sites[*id as usize];
                    let saved = self.prof_cur;
                    if let Some(p) = self.prof.as_mut() {
                        self.prof_cur = site.prof;
                        p[site.prof].trips += 1;
                    }
                    let r = self.libcall(prog, site);
                    self.prof_cur = saved;
                    r?;
                }
                Instr::CountOp { float } => self.count_op(*float),
                Instr::LoopEnter { b, e, prof, scope } => {
                    let bv = self.ri(*b);
                    let ev = self.ri(*e);
                    let entering_gpu = scope.is_gpu() && self.gpu_depth == 0;
                    if entering_gpu {
                        self.counters.kernel_launches += 1;
                        self.counters.modeled_cycles += self.config.cost_kernel_launch;
                    }
                    if scope.is_gpu() {
                        self.gpu_depth += 1;
                    }
                    let saved = self.prof_cur;
                    if let Some(p) = self.prof.as_mut() {
                        self.prof_cur = *prof as usize;
                        p[*prof as usize].trips += (ev - bv).max(0) as u64;
                    }
                    self.loop_stack.push((saved, self.counters.modeled_cycles));
                }
                Instr::LoopExit {
                    b,
                    e,
                    scope,
                    vectorize,
                } => {
                    let (saved, before) = self.loop_stack.pop().expect("balanced loops");
                    self.prof_cur = saved;
                    if scope.is_gpu() {
                        self.gpu_depth -= 1;
                    }
                    let bv = self.ri(*b);
                    let ev = self.ri(*e);
                    let mut width = self.config.width(*scope) as f64;
                    if *vectorize {
                        width *= 8.0;
                    }
                    if width > 1.0 && ev > bv {
                        let delta = self.counters.modeled_cycles - before;
                        let eff = width.min((ev - bv) as f64);
                        self.counters.modeled_cycles = before + delta / eff;
                    }
                }
                Instr::VecLoop { site } => {
                    self.exec_vec(&prog.vec_sites[*site as usize])?;
                }
                Instr::ParRegion { site } => {
                    self.exec_region(prog, &prog.par_sites[*site as usize], inputs)?;
                }
            }
            pc += 1;
        }
    }

    /// Resolve one vectorized access to `(slot, base offset, stride)`.
    #[inline]
    fn acc(&self, a: &VecAccess) -> (usize, i64, i64) {
        (
            a.t as usize,
            self.ri(a.off),
            a.stride.map_or(0, |r| self.ri(r)),
        )
    }

    /// Dispatch one fused vectorized loop. Every kernel has a wide lane
    /// path gated on stride-1 in-bounds non-aliasing accesses, and a scalar
    /// tail/fallback that replays the exact serial per-iteration semantics
    /// (same op order, same error payloads, same wrapping offset math).
    fn exec_vec(&mut self, site: &VecSite) -> Result<(), RuntimeError> {
        let b = self.ri(site.s);
        let e = self.ri(site.end);
        if b < e {
            let t0 = self.tally.as_ref().map(|_| std::time::Instant::now());
            let trip = (e - b) as usize;
            match &site.kernel {
                VecKernel::Fill { dst, src, sty } => self.vec_fill(trip, dst, *src, *sty)?,
                VecKernel::Copy { dst, x } => self.vec_copy(trip, dst, x)?,
                VecKernel::Axpy { dst, x, a, a_lhs } => {
                    self.vec_axpy(trip, dst, x, *a, *a_lhs)?;
                }
                VecKernel::Dot { dst, x, y } => self.vec_dot(trip, dst, x, y)?,
                VecKernel::HReduce { dst, x, op } => self.vec_hreduce(trip, dst, x, *op)?,
            }
            if let Some(t) = self.tally.as_mut() {
                t.vec[vec_tally_idx(&site.kernel)] += 1;
                if let Some(t0) = t0 {
                    t.kernel_ns
                        .record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                }
            }
        }
        // The loop counter lands on `end`, exactly as the serial loop
        // leaves it.
        self.wi(site.s, e);
        Ok(())
    }

    /// `for i { dst[f(i)] = c }` with a loop-invariant `c`.
    fn vec_fill(
        &mut self,
        trip: usize,
        dst: &VecAccess,
        src: u32,
        sty: Ty,
    ) -> Result<(), RuntimeError> {
        let (dt, db, ds) = self.acc(dst);
        let v = self.scalar_of(src, sty);
        let numel = self.numel_of(dt)?;
        if ds == 1 && db >= 0 && (db as u64).saturating_add(trip as u64) <= numel as u64 {
            let o = db as usize;
            match &mut self.slot_mut(dt).as_mut().expect("checked above").buf {
                Buf::F32(d) => d[o..o + trip].fill(v.as_f64() as f32),
                Buf::F64(d) => d[o..o + trip].fill(v.as_f64()),
                Buf::I32(d) => d[o..o + trip].fill(v.as_i64() as i32),
                Buf::I64(d) => d[o..o + trip].fill(v.as_i64()),
                Buf::B(d) => d[o..o + trip].fill(v.as_bool()),
            }
            return Ok(());
        }
        let mut od = db;
        for _ in 0..trip {
            self.store_flat_val(dt, od, v)?;
            od = od.wrapping_add(ds);
        }
        Ok(())
    }

    /// `for i { dst[f(i)] = x[g(i)] }`.
    fn vec_copy(&mut self, trip: usize, dst: &VecAccess, x: &VecAccess) -> Result<(), RuntimeError> {
        let (dt, db, ds) = self.acc(dst);
        let (xt, xb, xs) = self.acc(x);
        // Serial order faults on the source load before the dest store.
        let xn = self.numel_of(xt)?;
        let dn = self.numel_of(dt)?;
        let lane = xs == 1
            && ds == 1
            && xb >= 0
            && (xb as u64).saturating_add(trip as u64) <= xn as u64
            && db >= 0
            && (db as u64).saturating_add(trip as u64) <= dn as u64
            && dt != xt;
        if lane {
            let (xo, do_) = (xb as usize, db as usize);
            let sp: *const Option<VTensor> = self.slot(xt);
            let dp: *mut Option<VTensor> = self.slot_mut(dt);
            // SAFETY: distinct live slots (checked above); ranges in bounds.
            let xv = unsafe { (*sp).as_ref().expect("checked above") };
            let dv = unsafe { (*dp).as_mut().expect("checked above") };
            match (&mut dv.buf, &xv.buf) {
                (Buf::F32(d), Buf::F32(s)) => {
                    // Keep the serial f32→f64→f32 round-trip for NaN-bit
                    // fidelity.
                    for (dd, ss) in d[do_..do_ + trip].iter_mut().zip(&s[xo..xo + trip]) {
                        *dd = (*ss as f64) as f32;
                    }
                }
                (Buf::F64(d), Buf::F64(s)) => {
                    d[do_..do_ + trip].copy_from_slice(&s[xo..xo + trip]);
                }
                (Buf::I32(d), Buf::I32(s)) => {
                    d[do_..do_ + trip].copy_from_slice(&s[xo..xo + trip]);
                }
                (Buf::I64(d), Buf::I64(s)) => {
                    d[do_..do_ + trip].copy_from_slice(&s[xo..xo + trip]);
                }
                (Buf::B(d), Buf::B(s)) => {
                    d[do_..do_ + trip].copy_from_slice(&s[xo..xo + trip]);
                }
                _ => {
                    // Mixed dtypes: the exact scalar conversion per cell.
                    for k in 0..trip {
                        let v = xv.scalar_at(xo + k);
                        dv.store_scalar(do_ + k, v);
                    }
                }
            }
            return Ok(());
        }
        let (mut ox, mut od) = (xb, db);
        for _ in 0..trip {
            let v = self.load_flat_val(xt, ox)?;
            self.store_flat_val(dt, od, v)?;
            ox = ox.wrapping_add(xs);
            od = od.wrapping_add(ds);
        }
        Ok(())
    }

    /// `for i { dst[f(i)] += a * x[g(i)] }` (or `x[g(i)] * a`, or plain
    /// `x[g(i)]` when `a` is absent).
    fn vec_axpy(
        &mut self,
        trip: usize,
        dst: &VecAccess,
        x: &VecAccess,
        a: Option<(u32, Ty)>,
        a_lhs: bool,
    ) -> Result<(), RuntimeError> {
        let (dt, db, ds) = self.acc(dst);
        let (xt, xb, xs) = self.acc(x);
        let av = a.map(|(r, ty)| self.scalar_of(r, ty).as_f64());
        let xn = self.numel_of(xt)?;
        let dn = self.numel_of(dt)?;
        let lane = xs == 1
            && ds == 1
            && xb >= 0
            && (xb as u64).saturating_add(trip as u64) <= xn as u64
            && db >= 0
            && (db as u64).saturating_add(trip as u64) <= dn as u64
            && dt != xt;
        if lane {
            let (xo, do_) = (xb as usize, db as usize);
            let sp: *const Option<VTensor> = self.slot(xt);
            let dp: *mut Option<VTensor> = self.slot_mut(dt);
            // SAFETY: distinct live slots (checked above); ranges in bounds.
            let xv = unsafe { (*sp).as_ref().expect("checked above") };
            let dv = unsafe { (*dp).as_mut().expect("checked above") };
            match (&mut dv.buf, &xv.buf) {
                (Buf::F32(d), Buf::F32(s)) => {
                    let (d, s) = (&mut d[do_..do_ + trip], &s[xo..xo + trip]);
                    match (av, a_lhs) {
                        (Some(a), true) => lanes::axpy_f32(d, a, s),
                        (Some(a), false) => {
                            for (y, x) in d.iter_mut().zip(s) {
                                *y = (*y as f64 + *x as f64 * a) as f32;
                            }
                        }
                        (None, _) => {
                            for (y, x) in d.iter_mut().zip(s) {
                                *y = (*y as f64 + *x as f64) as f32;
                            }
                        }
                    }
                }
                (Buf::F64(d), Buf::F64(s)) => {
                    let (d, s) = (&mut d[do_..do_ + trip], &s[xo..xo + trip]);
                    match (av, a_lhs) {
                        (Some(a), true) => lanes::axpy_f64(d, a, s),
                        (Some(a), false) => {
                            for (y, x) in d.iter_mut().zip(s) {
                                *y += *x * a;
                            }
                        }
                        (None, _) => {
                            for (y, x) in d.iter_mut().zip(s) {
                                *y += *x;
                            }
                        }
                    }
                }
                _ => {
                    // Mixed float widths: exact f64 math per cell.
                    for k in 0..trip {
                        let xvv = xv.scalar_at(xo + k).as_f64();
                        let prod = match (av, a_lhs) {
                            (Some(a), true) => a * xvv,
                            (Some(a), false) => xvv * a,
                            (None, _) => xvv,
                        };
                        let old = dv.scalar_at(do_ + k).as_f64();
                        dv.store_scalar(do_ + k, Scalar::Float(old + prod));
                    }
                }
            }
            return Ok(());
        }
        let (mut ox, mut od) = (xb, db);
        for _ in 0..trip {
            let xvv = self.load_flat_val(xt, ox)?.as_f64();
            let prod = match (av, a_lhs) {
                (Some(a), true) => a * xvv,
                (Some(a), false) => xvv * a,
                (None, _) => xvv,
            };
            self.reduce_flat_val(dt, od, ReduceOp::Add, Scalar::Float(prod))?;
            ox = ox.wrapping_add(xs);
            od = od.wrapping_add(ds);
        }
        Ok(())
    }

    /// `for i { dst[c] += x[f(i)] * y[g(i)] }` — the loop-carried dot.
    fn vec_dot(
        &mut self,
        trip: usize,
        dst: &VecAccess,
        x: &VecAccess,
        y: &VecAccess,
    ) -> Result<(), RuntimeError> {
        let (dt, db, _) = self.acc(dst);
        let (xt, xb, xs) = self.acc(x);
        let (yt, yb, ys) = self.acc(y);
        let xn = self.numel_of(xt)?;
        let yn = self.numel_of(yt)?;
        let dn = self.numel_of(dt)?;
        let lane = xs == 1
            && ys == 1
            && xb >= 0
            && (xb as u64).saturating_add(trip as u64) <= xn as u64
            && yb >= 0
            && (yb as u64).saturating_add(trip as u64) <= yn as u64
            && db >= 0
            && (db as usize) < dn
            && dt != xt
            && dt != yt;
        if lane {
            let (xo, yo, do_) = (xb as usize, yb as usize, db as usize);
            let xp: *const Option<VTensor> = self.slot(xt);
            let yp: *const Option<VTensor> = self.slot(yt);
            let dp: *mut Option<VTensor> = self.slot_mut(dt);
            // SAFETY: dst is distinct from both sources (checked above);
            // x and y may alias each other, both views are shared.
            let xv = unsafe { (*xp).as_ref().expect("checked above") };
            let yv = unsafe { (*yp).as_ref().expect("checked above") };
            let dv = unsafe { (*dp).as_mut().expect("checked above") };
            match (&mut dv.buf, &xv.buf, &yv.buf) {
                (Buf::F32(d), Buf::F32(sx), Buf::F32(sy)) => {
                    d[do_] = lanes::dot_f32(d[do_], &sx[xo..xo + trip], &sy[yo..yo + trip]);
                }
                (Buf::F64(d), Buf::F64(sx), Buf::F64(sy)) => {
                    d[do_] = lanes::dot_f64(d[do_], &sx[xo..xo + trip], &sy[yo..yo + trip]);
                }
                _ => {
                    // Mixed float widths: exact f64 math per cell.
                    for k in 0..trip {
                        let p = xv.scalar_at(xo + k).as_f64() * yv.scalar_at(yo + k).as_f64();
                        let old = dv.scalar_at(do_).as_f64();
                        dv.store_scalar(do_, Scalar::Float(old + p));
                    }
                }
            }
            return Ok(());
        }
        let (mut ox, mut oy) = (xb, yb);
        for _ in 0..trip {
            let xvv = self.load_flat_val(xt, ox)?.as_f64();
            let yvv = self.load_flat_val(yt, oy)?.as_f64();
            self.reduce_flat_val(dt, db, ReduceOp::Add, Scalar::Float(xvv * yvv))?;
            ox = ox.wrapping_add(xs);
            oy = oy.wrapping_add(ys);
        }
        Ok(())
    }

    /// `for i { dst[c] op= x[f(i)] }` — the loop-carried horizontal reduce.
    fn vec_hreduce(
        &mut self,
        trip: usize,
        dst: &VecAccess,
        x: &VecAccess,
        op: ReduceOp,
    ) -> Result<(), RuntimeError> {
        let (dt, db, _) = self.acc(dst);
        let (xt, xb, xs) = self.acc(x);
        let xn = self.numel_of(xt)?;
        let dn = self.numel_of(dt)?;
        let lane = xs == 1
            && xb >= 0
            && (xb as u64).saturating_add(trip as u64) <= xn as u64
            && db >= 0
            && (db as usize) < dn
            && dt != xt;
        if lane {
            let (xo, do_) = (xb as usize, db as usize);
            let xp: *const Option<VTensor> = self.slot(xt);
            let dp: *mut Option<VTensor> = self.slot_mut(dt);
            // SAFETY: distinct live slots (checked above); ranges in bounds.
            let xv = unsafe { (*xp).as_ref().expect("checked above") };
            let dv = unsafe { (*dp).as_mut().expect("checked above") };
            match (&mut dv.buf, &xv.buf) {
                (Buf::F32(d), Buf::F32(s)) => {
                    let s = &s[xo..xo + trip];
                    d[do_] = match op {
                        ReduceOp::Add => lanes::sum_f32(d[do_], s),
                        ReduceOp::Min => lanes::min_f32(d[do_], s),
                        ReduceOp::Max => lanes::max_f32(d[do_], s),
                        ReduceOp::Mul => unreachable!("rejected at compile time"),
                    };
                }
                (Buf::F64(d), Buf::F64(s)) => {
                    let s = &s[xo..xo + trip];
                    d[do_] = match op {
                        ReduceOp::Add => lanes::sum_f64(d[do_], s),
                        ReduceOp::Min => lanes::min_f64(d[do_], s),
                        ReduceOp::Max => lanes::max_f64(d[do_], s),
                        ReduceOp::Mul => unreachable!("rejected at compile time"),
                    };
                }
                _ => {
                    // Mixed float widths: exact scalar reduce per cell.
                    for k in 0..trip {
                        let v = xv.scalar_at(xo + k);
                        let old = dv.scalar_at(do_);
                        let new = crate::interp::apply_reduce(op, old, v);
                        dv.store_scalar(do_, new);
                    }
                }
            }
            return Ok(());
        }
        let mut ox = xb;
        for _ in 0..trip {
            let v = self.load_flat_val(xt, ox)?;
            self.reduce_flat_val(dt, db, op, v)?;
            ox = ox.wrapping_add(xs);
        }
        Ok(())
    }

    /// Run one fork-join region on the worker pool, or serially in place
    /// when the work would not pay for the handshake.
    fn exec_region(
        &mut self,
        prog: &VmProgram,
        site: &ParSite,
        inputs: &HashMap<String, TensorVal>,
    ) -> Result<(), RuntimeError> {
        let b = self.ri(site.s);
        let e = self.ri(site.end);
        if b >= e {
            self.wi(site.s, e);
            return Ok(());
        }
        let trip = (e - b) as usize;
        let pool = WorkerPool::global();
        let workers = (pool.background_workers() + 1).min(trip);
        let work = (trip as u64).saturating_mul(u64::from(site.cost.max(1)));
        let priv_ok = site.privatized.iter().all(|&(t, _)| self.tensors[t].is_some());
        if workers <= 1 || work < PAR_THRESHOLD || !priv_ok || self.shared.is_some() {
            if let Some(t) = self.tally.as_mut() {
                t.par_serial += 1;
            }
            for i in b..e {
                self.wi(site.s, i);
                self.exec_code(&site.code, prog, inputs)?;
            }
            self.wi(site.s, e);
            return Ok(());
        }
        if let Some(t) = self.tally.as_mut() {
            t.par_pool += 1;
        }
        let grain = grain_for(trip as i64, workers, u64::from(site.cost.max(1)));
        // Per-chunk private accumulators start from the identity, cloned
        // from templates built before any worker can touch the slots.
        let templates: Vec<(usize, ReduceOp, VTensor)> = site
            .privatized
            .iter()
            .map(|&(t, op)| {
                let src = self.tensors[t].as_ref().expect("priv_ok checked");
                (t, op, identity_tensor(src, op))
            })
            .collect();
        let base_regs = self.regs.clone();
        let shared = SharedSlots(self.tensors.as_mut_ptr());
        let config = self.config;
        let names = self.names;
        let live = self.live;
        let mask = site.local_mask.as_slice();
        let n_tensors = prog.n_tensors;
        // First error in deterministic (chunk, not thread) order. Region
        // analysis rejects loads of anything the region writes, so whether
        // each iteration faults is independent of the others and the
        // minimum faulting chunk matches the serial first fault.
        let err: Mutex<Option<(usize, RuntimeError)>> = Mutex::new(None);
        let init = |_chunk: usize| -> (Vec<u64>, Vec<Option<VTensor>>) {
            let mut tensors: Vec<Option<VTensor>> = (0..n_tensors).map(|_| None).collect();
            for (t, _, ident) in &templates {
                tensors[*t] = Some(ident.clone());
            }
            (base_regs.clone(), tensors)
        };
        let body = |lo: i64, hi: i64, acc: &mut (Vec<u64>, Vec<Option<VTensor>>)| {
            let chunk = ((lo - b) / grain) as usize;
            if err.lock().as_ref().is_some_and(|(c, _)| *c < chunk) {
                return;
            }
            let mut ws = VmState {
                config,
                names,
                regs: std::mem::take(&mut acc.0),
                tensors: std::mem::take(&mut acc.1),
                instrumented: false,
                counters: PerfCounters::default(),
                cache: None,
                next_addr: 0,
                gpu_depth: 0,
                prof: None,
                prof_cur: 0,
                loop_stack: Vec::new(),
                live,
                shared: Some((&shared, mask)),
                tally: None,
                arena: None,
            };
            for i in lo..hi {
                ws.wi(site.s, i);
                if let Err(er) = ws.exec_code(&site.code, prog, inputs) {
                    let mut g = err.lock();
                    if g.as_ref().is_none_or(|(c, _)| chunk < *c) {
                        *g = Some((chunk, er));
                    }
                    break;
                }
            }
            acc.0 = ws.regs;
            acc.1 = ws.tensors;
        };
        // Merge runs on this thread, in ascending chunk order, strictly
        // after every worker has left the region.
        let mut merge = |_chunk: usize, mut acc: (Vec<u64>, Vec<Option<VTensor>>)| {
            if err.lock().is_some() {
                return;
            }
            for (t, op, _) in &templates {
                let Some(part) = acc.1[*t].take() else {
                    continue;
                };
                // SAFETY: workers never touch privatized slots through the
                // shared view (they are masked local), and all workers have
                // finished by the time merge runs.
                let dst = unsafe { (*shared.0.add(*t)).as_mut().expect("priv_ok checked") };
                merge_reduce(dst, &part, *op);
            }
        };
        if let Err(payload) = pool.try_run_reduce(b, e, grain, workers, &init, &body, &mut merge)
        {
            std::panic::resume_unwind(payload);
        }
        if let Some((_, er)) = err.into_inner() {
            return Err(er);
        }
        self.wi(site.s, e);
        Ok(())
    }
}

/// The bytecode execution engine, a drop-in replacement for
/// [`Runtime`](crate::interp::Runtime).
#[derive(Debug, Clone, Default)]
pub struct VmRuntime {
    /// Modeled platform parameters (used by instrumented mode and by the
    /// out-of-memory checks in both modes).
    pub config: DeviceConfig,
    mode: VmMode,
    sink: Option<TraceSink>,
    metrics: Option<Metrics>,
}


impl VmRuntime {
    /// A fast-mode VM with the default device model.
    pub fn new() -> VmRuntime {
        VmRuntime::default()
    }

    /// An instrumented-mode VM (bit-exact counter parity with the
    /// interpreter) with the default device model.
    pub fn instrumented() -> VmRuntime {
        VmRuntime {
            mode: VmMode::Instrumented,
            ..VmRuntime::default()
        }
    }

    /// A fast-mode VM with an explicit device model.
    pub fn with_config(config: DeviceConfig) -> VmRuntime {
        VmRuntime {
            config,
            ..VmRuntime::default()
        }
    }

    /// Switch execution mode.
    pub fn with_mode(mut self, mode: VmMode) -> VmRuntime {
        self.mode = mode;
        self
    }

    /// The current execution mode.
    pub fn mode(&self) -> VmMode {
        self.mode
    }

    /// Install (or remove) a trace sink. A sink records a `"vm <name>"`
    /// runtime span per run and, in instrumented mode, the same
    /// per-statement [`RunProfile`] the interpreter emits.
    pub fn set_sink(&mut self, sink: Option<TraceSink>) {
        self.sink = sink;
    }

    /// The installed trace sink, if any.
    pub fn sink(&self) -> Option<&TraceSink> {
        self.sink.as_ref()
    }

    /// Install (or remove) a metrics registry. When present, every run
    /// records an `engine.vm.run_us` wall histogram, fast-mode fused-kernel
    /// dispatch counters (`vm.kernel.*`) with an `engine.vm.kernel_ns`
    /// dispatch-wall histogram, parallel-region scheduling counters
    /// (`vm.par.{pool,serial}`), worker-pool claim counters, and an
    /// `engine.vm.fallback` counter for runs delegated to the interpreter
    /// (those record interpreter metrics instead).
    pub fn set_metrics(&mut self, metrics: Option<Metrics>) {
        self.metrics = metrics;
    }

    /// The installed metrics registry, if any.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.metrics.as_ref()
    }

    /// Execute `func`, falling back to the interpreter for programs the
    /// static compiler cannot type (or whose supplied inputs' dtypes differ
    /// from the declarations).
    ///
    /// # Errors
    ///
    /// The same [`RuntimeError`] conditions as
    /// [`Runtime::run`](crate::interp::Runtime::run).
    pub fn run(
        &self,
        func: &Func,
        inputs: &HashMap<String, TensorVal>,
        sizes: &HashMap<String, i64>,
    ) -> Result<RunResult, RuntimeError> {
        self.run_inner(func, inputs, sizes, None)
    }

    pub(crate) fn run_inner(
        &self,
        func: &Func,
        inputs: &HashMap<String, TensorVal>,
        sizes: &HashMap<String, i64>,
        mut rctx: Option<&mut crate::arena::RunContext>,
    ) -> Result<RunResult, RuntimeError> {
        let t0 = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let pool_before = self.metrics.as_ref().map(|_| WorkerPool::global().stats());
        let compiled = crate::compiled::compile(func)?;
        // The interpreter binds inputs by clone whatever their dtype; the
        // VM compiles loads against the declared dtype, so mismatched
        // inputs take the interpreter path instead.
        let dtype_mismatch = compiled.params.iter().any(|(slot, _, dtype, _, atype)| {
            matches!(atype, AccessType::Input | AccessType::InOut)
                && inputs
                    .get(&compiled.tensor_names[*slot])
                    .is_some_and(|t| t.dtype() != *dtype)
        });
        let instrumented = self.mode == VmMode::Instrumented;
        let prog = if dtype_mismatch {
            Err(Unsupported("input.dtype_mismatch"))
        } else {
            compile_program(&compiled, instrumented)
        };
        let prog = match prog {
            Ok(p) => p,
            Err(Unsupported(reason)) => {
                // Structured fallback: name the construct that kept the
                // program off the VM, then run the interpreter. Never
                // silent — conformance asserts on this span.
                if let Some(sink) = &self.sink {
                    let mut sp = sink.span_on(TRACK_RUNTIME, "vm.fallback", "vm.fallback");
                    sp.arg("reason", reason);
                    sp.arg("target", &func.name);
                }
                let mut rt = Runtime::with_config(self.config.clone());
                rt.set_sink(self.sink.clone());
                if let Some(m) = &self.metrics {
                    m.counter("engine.vm.fallback").inc();
                    rt.set_metrics(self.metrics.clone());
                }
                return rt.run_timed(func, inputs, sizes, rctx);
            }
        };
        // With a cross-run context: plan VarDef storage and pool `Alloc`
        // buffers by interference class, keyed by the plan hash. Plain
        // `run` keeps the allocation-free fast path untouched.
        let mut pool: Option<VmPool> = None;
        if let Some(c) = rctx.as_deref_mut() {
            let plan = ft_analysis::MemPlan::plan(func, sizes);
            c.ensure_bound(func, sizes, &plan)?;
            crate::arena::publish_plan(
                self.sink.as_ref(),
                self.metrics.as_ref(),
                &func.name,
                &plan,
            );
            if crate::arena::plan_matches_names(&plan, &prog.tensor_names) {
                let hash = plan.plan_hash();
                pool = Some(match c.vm_pool.take() {
                    Some(p) if p.plan_hash() == hash => p,
                    _ => VmPool::new(&plan),
                });
            }
        }
        let mut span = self
            .sink
            .as_ref()
            .map(|s| s.span_on(TRACK_RUNTIME, "runtime", &format!("vm {}", func.name)));
        // One span per lowering decision (fast mode only — instrumented
        // compilation takes none), so a trace explains which loops became
        // wide kernels or pool regions and why the rest did not.
        if let Some(sink) = &self.sink {
            for d in &prog.decisions {
                let mut sp = sink.span_on(TRACK_RUNTIME, "vm.lower", d.kind);
                sp.arg("target", &prog.prof_nodes[d.prof].desc);
                sp.arg("accepted", d.accepted);
                sp.arg(if d.accepted { "how" } else { "reason" }, &d.detail);
            }
        }
        let mut st = VmState {
            config: &self.config,
            names: &prog.tensor_names,
            regs: vec![0; prog.n_regs],
            tensors: (0..prog.n_tensors).map(|_| None).collect(),
            instrumented,
            counters: PerfCounters::default(),
            cache: instrumented
                .then(|| CacheSim::new(self.config.l2_size, self.config.l2_ways)),
            next_addr: 0x1000,
            gpu_depth: 0,
            prof: (instrumented && self.sink.is_some())
                .then(|| vec![StmtCounters::default(); prog.prof_nodes.len()]),
            prof_cur: 0,
            loop_stack: Vec::new(),
            live: [0, 0],
            shared: None,
            tally: self.metrics.as_ref().map(|m| VmTally {
                vec: [0; VEC_KERNEL_NAMES.len()],
                par_pool: 0,
                par_serial: 0,
                kernel_ns: m.histogram("engine.vm.kernel_ns"),
            }),
            arena: pool,
        };
        for (name, slot) in &prog.size_slots {
            let v = *sizes
                .get(name)
                .ok_or_else(|| RuntimeError::UnresolvedSize(name.clone()))?;
            st.regs[*slot] = v as u64;
        }
        let exec_r = st.exec(&prog, inputs);
        if let Some(m) = &self.metrics {
            if let Some(t0) = t0 {
                m.histogram("engine.vm.run_us").record_duration_us(t0.elapsed());
            }
            if exec_r.is_err() {
                m.counter("engine.vm.errors").inc();
            }
            if let Some(t) = st.tally.take() {
                for (i, name) in VEC_KERNEL_NAMES.iter().enumerate() {
                    if t.vec[i] > 0 {
                        m.counter(&format!("vm.kernel.{name}")).add(t.vec[i]);
                    }
                }
                if t.par_pool > 0 {
                    m.counter("vm.par.pool").add(t.par_pool);
                }
                if t.par_serial > 0 {
                    m.counter("vm.par.serial").add(t.par_serial);
                }
            }
            if let Some(before) = &pool_before {
                crate::engine::record_pool_delta(m, before);
            }
        }
        // Recover the buffer pool (even on error) so the context keeps its
        // free-lists, and flush its allocation counters.
        if let Some(mut p) = st.arena.take() {
            if let Some(m) = &self.metrics {
                crate::arena::flush_stats(m, &mut p.stats);
            }
            if let Some(c) = rctx.as_deref_mut() {
                c.vm_pool = Some(p);
            }
        }
        if let (Err(e), Some(c)) = (&exec_r, rctx) {
            c.poison_on(e);
        }
        exec_r?;
        let mut outputs = HashMap::new();
        for p in &prog.params {
            if matches!(p.atype, AccessType::Output | AccessType::InOut) {
                let name = prog.tensor_names[p.slot].clone();
                let vt = st.tensors[p.slot].take().expect("params stay live");
                outputs.insert(name, vt.into_tensor_val());
            }
        }
        if instrumented {
            if let (Some(sink), Some(buckets)) = (&self.sink, st.prof.take()) {
                let mut nodes = prog.prof_nodes.clone();
                for (n, c) in nodes.iter_mut().zip(buckets) {
                    n.counters = c;
                }
                sink.profile(RunProfile {
                    func: func.name.clone(),
                    nodes,
                });
                if let Some(sp) = span.as_mut() {
                    sp.arg("modeled_cycles", format!("{:.0}", st.counters.modeled_cycles));
                    sp.arg("flops", st.counters.flops);
                }
            }
        }
        Ok(RunResult {
            outputs,
            counters: if instrumented {
                st.counters
            } else {
                PerfCounters::default()
            },
        })
    }
}

/// Execute a function on the fast-mode VM and return its outputs.
///
/// # Errors
///
/// The same [`RuntimeError`] conditions as [`VmRuntime::run`].
pub fn run_vm(
    func: &Func,
    inputs: &HashMap<String, TensorVal>,
    sizes: &HashMap<String, i64>,
) -> Result<HashMap<String, TensorVal>, RuntimeError> {
    VmRuntime::new().run(func, inputs, sizes).map(|r| r.outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;
    use ft_ir::ForProperty;

    fn maps(
        inputs: &[(&str, TensorVal)],
        sizes: &[(&str, i64)],
    ) -> (HashMap<String, TensorVal>, HashMap<String, i64>) {
        (
            inputs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            sizes.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        )
    }

    /// Run `f` on the interpreter and on both VM modes; outputs must be
    /// bit-identical everywhere and the instrumented VM's counters must
    /// equal the interpreter's exactly (f64 `modeled_cycles` included).
    fn assert_parity(
        f: &Func,
        inputs: &[(&str, TensorVal)],
        sizes: &[(&str, i64)],
    ) -> RunResult {
        let (ins, szs) = maps(inputs, sizes);
        let ri = Runtime::new().run(f, &ins, &szs).expect("interp ok");
        let rf = VmRuntime::new().run(f, &ins, &szs).expect("fast vm ok");
        let rv = VmRuntime::instrumented()
            .run(f, &ins, &szs)
            .expect("instrumented vm ok");
        assert_eq!(ri.outputs, rf.outputs, "fast-mode outputs differ");
        assert_eq!(ri.outputs, rv.outputs, "instrumented outputs differ");
        assert_eq!(ri.counters, rv.counters, "instrumented counters differ");
        assert_eq!(
            rf.counters,
            PerfCounters::default(),
            "fast mode must not count"
        );
        ri
    }

    #[test]
    fn fast_vm_matches_interp_on_affine_elementwise() {
        let f = Func::new("scale")
            .param("x", [var("n")], DataType::F32, AccessType::Input)
            .param("y", [var("n")], DataType::F32, AccessType::Output)
            .size_param("n")
            .body(for_(
                "i",
                0,
                var("n"),
                store("y", [var("i")], load("x", [var("i")]) * 2.0f32 + 1.0f32),
            ));
        let x = TensorVal::from_f32(&[100], (0..100).map(|v| v as f32 * 0.25).collect());
        let r = assert_parity(&f, &[("x", x)], &[("n", 100)]);
        assert_eq!(r.output("y").get_flat(4).as_f64(), 3.0);
    }

    #[test]
    fn nested_tiled_loops_with_runtime_strides() {
        // Transposed read: the `j` stride in `x` is the runtime size `n`,
        // so strength reduction must probe the stride numerically.
        let f = Func::new("transpose")
            .param("x", [var("m"), var("n")], DataType::F64, AccessType::Input)
            .param("y", [var("n"), var("m")], DataType::F64, AccessType::Output)
            .size_param("m")
            .size_param("n")
            .body(for_(
                "i",
                0,
                var("m"),
                for_(
                    "j",
                    0,
                    var("n"),
                    store(
                        "y",
                        [var("j"), var("i")],
                        load("x", [var("i"), var("j")]) * 3.0f64,
                    ),
                ),
            ));
        let x = TensorVal::from_f64(&[5, 7], (0..35).map(|v| v as f64).collect());
        let r = assert_parity(&f, &[("x", x)], &[("m", 5), ("n", 7)]);
        // y[j, i] = 3 * x[i, j] = 3 * (i*7 + j)
        assert_eq!(r.output("y").get(&[6, 4]).as_f64(), 3.0 * (4.0 * 7.0 + 6.0));
    }

    #[test]
    fn gather_guards_and_select_take_generic_path() {
        let f = Func::new("gather")
            .param("x", [8], DataType::F32, AccessType::Input)
            .param("idx", [4], DataType::I64, AccessType::Input)
            .param("y", [4], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                4,
                if_(
                    load("idx", [var("i")]).ge(0),
                    store(
                        "y",
                        [var("i")],
                        Expr::select(
                            load("x", [load("idx", [var("i")])]).gt(2.0f32),
                            load("x", [load("idx", [var("i")])]),
                            Expr::from(-1.0f32),
                        ),
                    ),
                ),
            ));
        let x = TensorVal::from_f32(&[8], (0..8).map(|v| v as f32).collect());
        let idx = TensorVal::from_i64(&[4], vec![7, 0, 3, 2]);
        let r = assert_parity(&f, &[("x", x), ("idx", idx)], &[]);
        assert_eq!(r.output("y").to_f64_vec(), vec![7.0, -1.0, 3.0, -1.0]);
    }

    /// One function exercising every instrumentation source: GPU kernel
    /// launches, vectorized width scaling, scratch memory, float and int
    /// reductions, casts, intrinsics, `Pow` and `Mod`.
    fn mixed_workload() -> Func {
        let vec_prop = ForProperty {
            vectorize: true,
            ..ForProperty::serial()
        };
        let cpu_part = block([
            for_with(
                "i",
                0,
                64,
                ForProperty::parallel(ParallelScope::OpenMp),
                store(
                    "y",
                    [var("i")],
                    intrin::sqrt(intrin::abs(load("x", [var("i")])))
                        + intrin::sigmoid(load("x", [var("i")]))
                            * Expr::cast(DataType::F32, var("i").rem(7)),
                ),
            ),
            for_with(
                "v",
                0,
                64,
                vec_prop,
                reduce(
                    "acc",
                    [0],
                    ReduceOp::Add,
                    load("y", [var("v")]) * load("y", [var("v")]),
                ),
            ),
            for_(
                "j",
                0,
                8,
                reduce(
                    "zi",
                    [0],
                    ReduceOp::Max,
                    Expr::binary(BinaryOp::Pow, var("j"), 2.into())
                        - Expr::binary(BinaryOp::Mod, var("j"), 3.into()),
                ),
            ),
            var_def(
                "scratch",
                [16],
                DataType::F32,
                MemType::CpuStack,
                block([
                    for_("s", 0, 16, store("scratch", [var("s")], var("s") * 2)),
                    for_(
                        "s2",
                        0,
                        16,
                        reduce("acc", [0], ReduceOp::Add, load("scratch", [var("s2")])),
                    ),
                ]),
            ),
        ]);
        let gpu_part = for_with(
            "b",
            0,
            4,
            ForProperty::parallel(ParallelScope::CudaBlockX),
            for_with(
                "t",
                0,
                8,
                ForProperty::parallel(ParallelScope::CudaThreadX),
                store("g", [var("b") * 8 + var("t")], var("b") + var("t")),
            ),
        );
        Func::new("mix")
            .param("x", [64], DataType::F32, AccessType::Input)
            .param("y", [64], DataType::F32, AccessType::Output)
            .param("acc", [1], DataType::F32, AccessType::Output)
            .param("zi", [1], DataType::I64, AccessType::Output)
            .param_on(
                "g",
                [32],
                DataType::F32,
                MemType::GpuGlobal,
                AccessType::Output,
            )
            .body(block([cpu_part, gpu_part]))
    }

    #[test]
    fn instrumented_counters_match_interp_exactly() {
        let x = TensorVal::from_f32(&[64], (0..64).map(|v| (v as f32 - 31.0) * 0.5).collect());
        let r = assert_parity(&mixed_workload(), &[("x", x)], &[]);
        assert_eq!(r.counters.kernel_launches, 1);
        assert!(r.counters.scratch_bytes > 0);
        assert!(r.counters.flops > 0 && r.counters.int_ops > 0);
    }

    #[test]
    fn profile_and_span_parity() {
        let x = TensorVal::from_f32(&[64], (0..64).map(|v| v as f32 * 0.1).collect());
        let (ins, szs) = maps(&[("x", x)], &[]);
        let f = mixed_workload();

        let interp_sink = TraceSink::new();
        let mut rt = Runtime::new();
        rt.set_sink(Some(interp_sink.clone()));
        rt.run(&f, &ins, &szs).expect("interp ok");

        let vm_sink = TraceSink::new();
        let mut vm = VmRuntime::instrumented();
        vm.set_sink(Some(vm_sink.clone()));
        vm.run(&f, &ins, &szs).expect("vm ok");

        let pi = interp_sink.profiles();
        let pv = vm_sink.profiles();
        assert_eq!(pi.len(), 1);
        assert_eq!(pv.len(), 1);
        assert_eq!(pi[0].func, pv[0].func);
        assert_eq!(pi[0].nodes.len(), pv[0].nodes.len());
        for (a, b) in pi[0].nodes.iter().zip(&pv[0].nodes) {
            assert_eq!(a.desc, b.desc);
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.counters, b.counters, "profile bucket for {}", a.desc);
        }
        let names: Vec<String> = vm_sink.events().into_iter().map(|e| e.name).collect();
        assert!(
            names.iter().any(|n| n == "vm mix"),
            "expected a vm span, got {names:?}"
        );
    }

    #[test]
    fn mixed_type_select_falls_back_to_interp() {
        // `select` arms of different register types are statically untypable
        // for the VM; the program must still run (via the interpreter) and
        // announce itself as such in the trace.
        let f = Func::new("mixsel")
            .param("y", [4], DataType::F64, AccessType::Output)
            .body(for_(
                "i",
                0,
                4,
                store(
                    "y",
                    [var("i")],
                    Expr::select(var("i").lt(2), var("i"), Expr::from(0.5f64)),
                ),
            ));
        let (ins, szs) = maps(&[], &[]);
        let ri = Runtime::new().run(&f, &ins, &szs).expect("interp ok");
        let sink = TraceSink::new();
        let mut vm = VmRuntime::new();
        vm.set_sink(Some(sink.clone()));
        let rv = vm.run(&f, &ins, &szs).expect("vm (fallback) ok");
        assert_eq!(ri.outputs, rv.outputs);
        let events = sink.events();
        let fb = events
            .iter()
            .find(|e| e.name == "vm.fallback")
            .unwrap_or_else(|| {
                panic!(
                    "expected a structured vm.fallback span, got {:?}",
                    events.iter().map(|e| &e.name).collect::<Vec<_>>()
                )
            });
        assert!(
            fb.args
                .iter()
                .any(|(k, v)| k == "reason" && v == "select.mixed_arm_types"),
            "fallback span must name the construct, got args {:?}",
            fb.args
        );
        let names: Vec<String> = events.iter().map(|e| e.name.clone()).collect();
        assert!(
            names.iter().any(|n| n == "interp mixsel"),
            "expected interpreter fallback span, got {names:?}"
        );
    }

    #[test]
    fn dtype_mismatch_fallback_names_its_reason() {
        // Inputs whose dtype differs from the declaration take the
        // interpreter path with a named reason — not silently.
        let f = Func::new("mismatch")
            .param("x", [4], DataType::F32, AccessType::Input)
            .param("y", [4], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                4,
                store("y", [var("i")], load("x", [var("i")]) * 2.0f64),
            ));
        let x = TensorVal::from_f64(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        let (ins, szs) = maps(&[("x", x)], &[]);
        let sink = TraceSink::new();
        let mut vm = VmRuntime::new();
        vm.set_sink(Some(sink.clone()));
        vm.run(&f, &ins, &szs).expect("fallback run ok");
        let events = sink.events();
        assert!(
            events.iter().any(|e| e.name == "vm.fallback"
                && e.args
                    .iter()
                    .any(|(k, v)| k == "reason" && v == "input.dtype_mismatch")),
            "expected vm.fallback with input.dtype_mismatch, got {:?}",
            events
                .iter()
                .map(|e| (&e.name, &e.args))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn error_parity_division_by_zero() {
        let f = Func::new("div")
            .param("x", [8], DataType::I64, AccessType::Input)
            .param("y", [8], DataType::I64, AccessType::Output)
            .body(for_(
                "i",
                0,
                8,
                store("y", [var("i")], load("x", [var("i")]) / (var("i") - 2)),
            ));
        let x = TensorVal::from_i64(&[8], (1..9).collect());
        let (ins, szs) = maps(&[("x", x)], &[]);
        let ei = Runtime::new().run(&f, &ins, &szs).unwrap_err();
        let ef = VmRuntime::new().run(&f, &ins, &szs).unwrap_err();
        let ev = VmRuntime::instrumented().run(&f, &ins, &szs).unwrap_err();
        assert_eq!(ei, RuntimeError::DivisionByZero);
        assert_eq!(ei, ef);
        assert_eq!(ei, ev);
    }

    #[test]
    fn error_parity_out_of_bounds_and_missing_input() {
        // A data-dependent index keeps even fast mode on the generic
        // (per-dimension checked) path, so the error payload is identical.
        let f = Func::new("oob")
            .param("idx", [1], DataType::I64, AccessType::Input)
            .param("y", [2], DataType::F32, AccessType::Output)
            .body(store("y", [load("idx", [0])], 1.0f32));
        let idx = TensorVal::from_i64(&[1], vec![5]);
        let (ins, szs) = maps(&[("idx", idx)], &[]);
        let ei = Runtime::new().run(&f, &ins, &szs).unwrap_err();
        let ef = VmRuntime::new().run(&f, &ins, &szs).unwrap_err();
        assert_eq!(
            ei,
            RuntimeError::IndexOutOfBounds {
                name: "y".to_string(),
                index: vec![5],
                shape: vec![2],
            }
        );
        assert_eq!(ei, ef);

        let empty = HashMap::new();
        let mi = Runtime::new().run(&f, &empty, &szs).unwrap_err();
        let mv = VmRuntime::new().run(&f, &empty, &szs).unwrap_err();
        assert_eq!(mi, RuntimeError::MissingInput("idx".to_string()));
        assert_eq!(mi, mv);
    }

    #[test]
    fn zero_trip_loops_are_safe_with_strength_reduction() {
        // Zero-trip and negative-trip loops must not fault in the stride
        // probe even though the body indexes `x[i*3 + 1]`.
        let f = Func::new("zt")
            .param("x", [4], DataType::F32, AccessType::Input)
            .param("y", [4], DataType::F32, AccessType::Output)
            .size_param("n")
            .body(block([
                for_(
                    "i",
                    0,
                    var("n"),
                    store("y", [var("i")], load("x", [var("i") * 3 + 1])),
                ),
                for_(
                    "k",
                    5,
                    2,
                    store("y", [var("k")], 9.0f32),
                ),
            ]));
        let x = TensorVal::from_f32(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        let r = assert_parity(&f, &[("x", x.clone())], &[("n", 0)]);
        assert_eq!(r.output("y").to_f64_vec(), vec![0.0; 4]);
        // And a one-trip run still reads through the reduced offset.
        let r = assert_parity(&f, &[("x", x)], &[("n", 1)]);
        assert_eq!(r.output("y").get_flat(0).as_f64(), 2.0);
    }

    #[test]
    fn libcall_matmul_parity() {
        let (m, k, n) = (9usize, 5usize, 6usize);
        let f = Func::new("mm")
            .param("A", [m, k], DataType::F32, AccessType::Input)
            .param("B", [k, n], DataType::F32, AccessType::Input)
            .param("C", [m, n], DataType::F32, AccessType::Output)
            .body(ft_ir::Stmt::new(ft_ir::StmtKind::LibCall {
                kernel: "matmul".to_string(),
                inputs: vec!["A".to_string(), "B".to_string()],
                outputs: vec!["C".to_string()],
                attrs: vec![m as i64, k as i64, n as i64],
            }));
        let a = TensorVal::from_f32(&[m, k], (0..m * k).map(|v| v as f32 * 0.5).collect());
        let b = TensorVal::from_f32(&[k, n], (0..k * n).map(|v| (v as f32).sin()).collect());
        let r = assert_parity(&f, &[("A", a), ("B", b)], &[]);
        assert_eq!(r.counters.flops, (2 * m * k * n) as u64);
    }

    #[test]
    fn dtype_mismatched_inputs_fall_back() {
        // The interpreter binds inputs by clone whatever the declared dtype;
        // the VM detects the mismatch and must take the same path.
        let f = Func::new("dt")
            .param("x", [3], DataType::F32, AccessType::Input)
            .param("y", [3], DataType::F64, AccessType::Output)
            .body(for_(
                "i",
                0,
                3,
                store("y", [var("i")], load("x", [var("i")]) + 0.5f64),
            ));
        let x64 = TensorVal::from_f64(&[3], vec![1.25, 2.25, 3.25]);
        let (ins, szs) = maps(&[("x", x64)], &[]);
        let ri = Runtime::new().run(&f, &ins, &szs).expect("interp ok");
        let rv = VmRuntime::new().run(&f, &ins, &szs).expect("vm ok");
        assert_eq!(ri.outputs, rv.outputs);
        assert_eq!(ri.output("y").to_f64_vec(), vec![1.75, 2.75, 3.75]);
    }

    #[test]
    fn oom_error_parity() {
        // 17 Mi f32 = 68 MB > the 64 MB default GPU capacity.
        let f = Func::new("oom")
            .param("y", [1], DataType::F32, AccessType::Output)
            .body(var_def(
                "t",
                [17 * 1024 * 1024],
                DataType::F32,
                MemType::GpuGlobal,
                store("y", [0], 1.0f32),
            ));
        let (ins, szs) = maps(&[], &[]);
        let ei = Runtime::new().run(&f, &ins, &szs).unwrap_err();
        let ef = VmRuntime::new().run(&f, &ins, &szs).unwrap_err();
        let ev = VmRuntime::instrumented().run(&f, &ins, &szs).unwrap_err();
        assert!(matches!(ei, RuntimeError::OutOfMemory { .. }));
        assert_eq!(ei, ef);
        assert_eq!(ei, ev);
    }

    #[test]
    fn strength_reduction_emits_flat_accesses() {
        let affine = Func::new("aff")
            .param("x", [64], DataType::F32, AccessType::Input)
            .param("y", [64], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                64,
                store("y", [var("i")], load("x", [var("i")])),
            ));
        let c = crate::compiled::compile(&affine).unwrap();
        let prog = compile_program(&c, false).expect("typable");
        assert!(
            prog.code.iter().any(|i| matches!(i, Instr::LoadFlat { .. })),
            "affine load should strength-reduce"
        );
        assert!(
            prog.code.iter().any(|i| matches!(i, Instr::StoreFlat { .. })),
            "affine store should strength-reduce"
        );

        let gather = Func::new("gat")
            .param("x", [64], DataType::F32, AccessType::Input)
            .param("idx", [64], DataType::I64, AccessType::Input)
            .param("y", [64], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                64,
                store("y", [var("i")], load("x", [load("idx", [var("i")])])),
            ));
        let c = crate::compiled::compile(&gather).unwrap();
        let prog = compile_program(&c, false).expect("typable");
        assert!(
            prog.code.iter().any(|i| matches!(i, Instr::LoadT { .. })),
            "gather load must stay on the generic checked path"
        );

        // Instrumented mode never strength-reduces (it must observe every
        // access through the cache model).
        let prog = compile_program(&c, true).expect("typable");
        assert!(
            !prog.code.iter().any(|i| matches!(
                i,
                Instr::LoadFlat { .. } | Instr::StoreFlat { .. } | Instr::ReduceFlat { .. }
            )),
            "instrumented mode must not emit flat accesses"
        );
    }

    #[test]
    fn invariant_gather_rows_strength_reduce() {
        // SubdivNet's inner-loop shape: the gathered row index
        // `adj[i, j]` (and its `% 3` neighbour) is invariant in the channel
        // loop, so the channel-loop accesses strength-reduce to flat
        // loads even though the index contains loads and a Mod.
        let (faces, ch) = (6usize, 8usize);
        let f = Func::new("conv")
            .param("e", [faces, ch], DataType::F32, AccessType::Input)
            .param("adj", [faces, 3], DataType::I64, AccessType::Input)
            .param("y", [faces, ch], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                faces as i64,
                for_(
                    "j",
                    0,
                    3,
                    for_(
                        "c",
                        0,
                        ch as i64,
                        reduce(
                            "y",
                            [var("i"), var("c")],
                            ReduceOp::Add,
                            load("e", [load("adj", [var("i"), var("j")]), var("c")])
                                + load(
                                    "e",
                                    [
                                        load("adj", [var("i"), (var("j") + 1) % 3]),
                                        var("c"),
                                    ],
                                ),
                        ),
                    ),
                ),
            ));
        let c = crate::compiled::compile(&f).unwrap();
        let prog = compile_program(&c, false).expect("typable");
        let flat_loads = prog
            .code
            .iter()
            .filter(|i| matches!(i, Instr::LoadFlat { .. }))
            .count();
        assert!(
            flat_loads >= 2,
            "both invariant-row gathers should strength-reduce, got {flat_loads} flat loads"
        );

        let e = TensorVal::from_f32(
            &[faces, ch],
            (0..faces * ch).map(|v| v as f32 * 0.25 - 3.0).collect(),
        );
        let adj = TensorVal::from_i64(
            &[faces, 3],
            (0..faces * 3)
                .map(|v| ((v * 7 + 2) % faces) as i64)
                .collect(),
        );
        let r = assert_parity(&f, &[("e", e.clone()), ("adj", adj.clone())], &[]);
        // Spot-check one output cell against a direct computation.
        let mut expect = 0.0f32;
        for j in 0..3 {
            let r0 = adj.get_flat(2 * 3 + j).as_i64() as usize;
            let r1 = adj.get_flat(2 * 3 + (j + 1) % 3).as_i64() as usize;
            expect += e.get_flat(r0 * ch + 5).as_f64() as f32
                + e.get_flat(r1 * ch + 5).as_f64() as f32;
        }
        assert_eq!(r.output("y").get_flat(2 * ch + 5).as_f64(), expect as f64);
    }

    #[test]
    fn zero_trip_loop_skips_faulting_preheader() {
        // The hoisted invariant load `idx[7]` is out of bounds, but the
        // loop never runs an iteration — the interpreter succeeds, so the
        // VM's preheader must be skipped by the zero-trip pre-guard.
        let f = Func::new("ztf")
            .param("x", [8], DataType::F32, AccessType::Input)
            .param("idx", [4], DataType::I64, AccessType::Input)
            .param("y", [8], DataType::F32, AccessType::Output)
            .size_param("n")
            .body(for_(
                "c",
                0,
                var("n"),
                store("y", [var("c")], load("x", [load("idx", [7])])),
            ));
        let x = TensorVal::from_f32(&[8], vec![1.0; 8]);
        let idx = TensorVal::from_i64(&[4], vec![0; 4]);
        let r = assert_parity(&f, &[("x", x), ("idx", idx)], &[("n", 0)]);
        assert_eq!(r.output("y").to_f64_vec(), vec![0.0; 8]);
    }

    #[test]
    fn guarded_gather_is_not_hoisted() {
        // `idx[0]` is 100 — far out of bounds of `x` — but the guard is
        // false on every iteration, so the interpreter never evaluates the
        // load. Hoisting it into the preheader would fault; conditional
        // accesses must stay on the generic lazily-evaluated path.
        let f = Func::new("guard")
            .param("x", [4], DataType::F32, AccessType::Input)
            .param("idx", [1], DataType::I64, AccessType::Input)
            .param("y", [8], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                8,
                if_(
                    var("i").lt(0),
                    store("y", [var("i")], load("x", [load("idx", [0])])),
                ),
            ));
        let x = TensorVal::from_f32(&[4], vec![1.0; 4]);
        let idx = TensorVal::from_i64(&[1], vec![100]);
        let r = assert_parity(&f, &[("x", x), ("idx", idx)], &[]);
        assert_eq!(r.output("y").to_f64_vec(), vec![0.0; 8]);
    }

    #[test]
    fn loads_from_loop_written_tensors_are_not_hoisted() {
        // `acc[0]` has a loop-invariant index but the loop itself writes
        // `acc`, so the load must be re-evaluated every iteration.
        let f = Func::new("carry")
            .param("y", [8], DataType::I64, AccessType::Output)
            .body(var_def(
                "acc",
                [1usize],
                DataType::I64,
                MemType::CpuHeap,
                for_(
                    "i",
                    0,
                    8,
                    block([
                        store("acc", [0], load("acc", [0]) + var("i")),
                        store("y", [var("i")], load("acc", [0])),
                    ]),
                ),
            ));
        let r = assert_parity(&f, &[], &[]);
        // Running sums 0,1,3,6,... — a stale hoisted load would repeat 0.
        assert_eq!(
            r.output("y").to_f64_vec(),
            vec![0.0, 1.0, 3.0, 6.0, 10.0, 15.0, 21.0, 28.0]
        );
    }

    #[test]
    fn int_reduction_and_wrapping_parity() {
        // Int reduce via apply_reduce plus wrapping int arithmetic.
        let f = Func::new("ired")
            .param("x", [16], DataType::I32, AccessType::Input)
            .param("s", [1], DataType::I64, AccessType::Output)
            .body(for_(
                "i",
                0,
                16,
                reduce(
                    "s",
                    [0],
                    ReduceOp::Add,
                    load("x", [var("i")]) * load("x", [var("i")]) - var("i"),
                ),
            ));
        let x = TensorVal::from_i32(&[16], (0..16).map(|v| v * 3 - 20).collect());
        let r = assert_parity(&f, &[("x", x)], &[]);
        let expect: i64 = (0..16i64)
            .map(|i| {
                let v = i * 3 - 20;
                v * v - i
            })
            .sum();
        assert_eq!(r.output("s").get_flat(0).as_i64(), expect);
    }

    /// Filter the lowering decision log by span kind, as (accepted, detail).
    fn decisions_of(f: &Func, kind: &str) -> Vec<(bool, String)> {
        let c = crate::compiled::compile(f).unwrap();
        let prog = compile_program(&c, false).expect("typable");
        prog.decisions
            .iter()
            .filter(|d| d.kind == kind)
            .map(|d| (d.accepted, d.detail.clone()))
            .collect()
    }

    /// One loop per fused kernel shape, every loop `vectorize`-marked with
    /// a runtime trip count.
    fn all_kernels_func() -> Func {
        let vec = ForProperty {
            vectorize: true,
            ..ForProperty::serial()
        };
        Func::new("kernels")
            .param("x", [16], DataType::F32, AccessType::Input)
            .param("w", [16], DataType::F32, AccessType::Input)
            .param("yf", [16], DataType::F32, AccessType::Output)
            .param("yc", [16], DataType::F32, AccessType::Output)
            .param("ya", [16], DataType::F32, AccessType::Output)
            .param("yb", [16], DataType::F32, AccessType::Output)
            .param("d", [1], DataType::F32, AccessType::Output)
            .param("hs", [1], DataType::F32, AccessType::Output)
            .param("hmin", [1], DataType::F32, AccessType::Output)
            .param("hmax", [1], DataType::F32, AccessType::Output)
            .size_param("n")
            .body(block([
                // Fill: invariant store.
                for_with("i", 0, var("n"), vec.clone(), store("yf", [var("i")], 1.25f32)),
                // Copy: stride-1 load to stride-1 store.
                for_with(
                    "i",
                    0,
                    var("n"),
                    vec.clone(),
                    store("yc", [var("i")], load("x", [var("i")])),
                ),
                // Axpy with a hoisted multiplier.
                for_with(
                    "i",
                    0,
                    var("n"),
                    vec.clone(),
                    reduce(
                        "ya",
                        [var("i")],
                        ReduceOp::Add,
                        load("x", [var("i")]) * 2.5f32,
                    ),
                ),
                // Elementwise accumulate (Axpy with no multiplier).
                for_with(
                    "i",
                    0,
                    var("n"),
                    vec.clone(),
                    reduce("yb", [var("i")], ReduceOp::Add, load("x", [var("i")])),
                ),
                // Dot: carried add of a two-stream product.
                for_with(
                    "i",
                    0,
                    var("n"),
                    vec.clone(),
                    reduce(
                        "d",
                        [0],
                        ReduceOp::Add,
                        load("x", [var("i")]) * load("w", [var("i")]),
                    ),
                ),
                // Horizontal reductions: Add, Min, Max.
                for_with(
                    "i",
                    0,
                    var("n"),
                    vec.clone(),
                    reduce("hs", [0], ReduceOp::Add, load("x", [var("i")])),
                ),
                for_with(
                    "i",
                    0,
                    var("n"),
                    vec.clone(),
                    reduce("hmin", [0], ReduceOp::Min, load("x", [var("i")])),
                ),
                for_with(
                    "i",
                    0,
                    var("n"),
                    vec,
                    reduce("hmax", [0], ReduceOp::Max, load("x", [var("i")])),
                ),
            ]))
    }

    #[test]
    fn every_vectorize_kernel_shape_lowers() {
        let f = all_kernels_func();
        let c = crate::compiled::compile(&f).unwrap();
        let prog = compile_program(&c, false).expect("typable");
        let veclooops = prog
            .code
            .iter()
            .filter(|i| matches!(i, Instr::VecLoop { .. }))
            .count();
        assert_eq!(veclooops, 8, "all eight marked loops must lower");
        assert_eq!(prog.vec_sites.len(), 8);
        let mut accepted: Vec<String> = prog
            .decisions
            .iter()
            .filter(|d| d.kind == "vm.simd")
            .map(|d| {
                assert!(d.accepted, "unexpected rejection: {}", d.detail);
                d.detail.clone()
            })
            .collect();
        accepted.sort();
        assert_eq!(
            accepted,
            ["axpy", "axpy", "copy", "dot", "fill", "hreduce", "hreduce", "hreduce"]
        );
        // The instrumented VM must observe every scalar access: no fused
        // kernels there, ever.
        let prog = compile_program(&c, true).expect("typable");
        assert!(
            !prog.code.iter().any(|i| matches!(i, Instr::VecLoop { .. })),
            "instrumented mode must not vectorize"
        );
    }

    #[test]
    fn scalar_tail_parity_across_trip_counts() {
        // Trip counts 0..=9 cover the zero-trip guard, pure-tail loops
        // (n < 4), exactly-one-lane-group (n = 4,8), and every lane+tail
        // split in between; 13 and 16 add multi-group cases. f32 data with
        // irrational-ish mantissas makes any reassociation or skipped
        // per-step rounding visible in the bit pattern.
        let f = all_kernels_func();
        let x = TensorVal::from_f32(&[16], (0..16).map(|v| v as f32 * 0.37 - 2.21).collect());
        let w = TensorVal::from_f32(&[16], (0..16).map(|v| 1.0 / (v as f32 + 1.5)).collect());
        for n in (0..=9).chain([13, 16]) {
            assert_parity(&f, &[("x", x.clone()), ("w", w.clone())], &[("n", n)]);
        }
    }

    #[test]
    fn every_vectorize_rejection_reason_fires() {
        // One loop per structured rejection; each must fall back to the
        // serial lowering (parity below) with the right reason logged.
        let vec = ForProperty {
            vectorize: true,
            ..ForProperty::serial()
        };
        let f = Func::new("rej")
            .param("x", [16], DataType::F32, AccessType::Input)
            .param("xi", [16], DataType::I32, AccessType::Input)
            .param("idx", [16], DataType::I64, AccessType::Input)
            .param("a", [64], DataType::F32, AccessType::Output)
            .param("b", [16], DataType::F32, AccessType::Output)
            .param("c", [16], DataType::F32, AccessType::Output)
            .param("d", [16], DataType::F32, AccessType::Output)
            .param("e", [1], DataType::F32, AccessType::Output)
            .param("g", [16], DataType::F32, AccessType::Output)
            .param("g1", [1], DataType::F32, AccessType::Output)
            .param("h", [16], DataType::F32, AccessType::Output)
            .param("k", [16], DataType::F32, AccessType::Output)
            .param("si", [1], DataType::I64, AccessType::Output)
            .param("p", [1], DataType::F32, AccessType::Output)
            .param("q", [16], DataType::F32, AccessType::Output)
            .body(block([
                // not_innermost
                for_with(
                    "i",
                    0,
                    16,
                    vec.clone(),
                    for_(
                        "j",
                        0,
                        4,
                        store("a", [var("i") * 4 + var("j")], 1.0f32),
                    ),
                ),
                // conditional_body
                for_with(
                    "i",
                    0,
                    16,
                    vec.clone(),
                    if_(var("i").lt(8), store("b", [var("i")], load("x", [var("i")]))),
                ),
                // vardef_body
                for_with(
                    "i",
                    0,
                    16,
                    vec.clone(),
                    var_def(
                        "t",
                        [1usize],
                        DataType::F32,
                        MemType::CpuHeap,
                        block([
                            store("t", [0], load("x", [var("i")])),
                            store("c", [var("i")], load("t", [0]) * 2.0f32),
                        ]),
                    ),
                ),
                // compound_body
                for_with(
                    "i",
                    0,
                    16,
                    vec.clone(),
                    block([
                        store("d", [var("i")], load("x", [var("i")])),
                        reduce("e", [0], ReduceOp::Add, load("x", [var("i")])),
                    ]),
                ),
                // empty_body
                for_with("i", 0, 16, vec.clone(), Stmt::new(StmtKind::Empty)),
                // dst_not_stride_reducible (scatter store)
                for_with(
                    "i",
                    0,
                    16,
                    vec.clone(),
                    store("g", [load("idx", [var("i")])], 1.0f32),
                ),
                // dst_invariant
                for_with("i", 0, 16, vec.clone(), store("g1", [0], 3.5f32)),
                // src_not_stride_reducible (gather load)
                for_with(
                    "i",
                    0,
                    16,
                    vec.clone(),
                    store("h", [var("i")], load("x", [load("idx", [var("i")])])),
                ),
                // unsupported_value_shape (not a plain load or invariant)
                for_with(
                    "i",
                    0,
                    16,
                    vec.clone(),
                    store("k", [var("i")], load("x", [var("i")]) + 1.0f32),
                ),
                // unsupported_reduce_dtype (integer target)
                for_with(
                    "i",
                    0,
                    16,
                    vec.clone(),
                    reduce("si", [0], ReduceOp::Add, load("xi", [var("i")])),
                ),
                // unsupported_reduce_op (carried product)
                for_with(
                    "i",
                    0,
                    16,
                    vec.clone(),
                    reduce("p", [0], ReduceOp::Mul, load("x", [var("i")])),
                ),
                // reduction_target_reused
                for_with(
                    "i",
                    0,
                    16,
                    vec,
                    reduce("q", [var("i")], ReduceOp::Add, load("q", [var("i")])),
                ),
            ]));
        let mut reasons: Vec<String> = decisions_of(&f, "vm.simd")
            .into_iter()
            .map(|(accepted, detail)| {
                assert!(!accepted, "loop unexpectedly vectorized: {detail}");
                detail
            })
            .collect();
        reasons.sort();
        let mut expect = vec![
            "not_innermost",
            "conditional_body",
            "vardef_body",
            "compound_body",
            "empty_body",
            "dst_not_stride_reducible",
            "dst_invariant",
            "src_not_stride_reducible",
            "unsupported_value_shape",
            "unsupported_reduce_dtype",
            "unsupported_reduce_op",
            "reduction_target_reused",
        ];
        expect.sort_unstable();
        assert_eq!(reasons, expect);
        // Every rejected loop runs the plain serial lowering; outputs must
        // still match the interpreter bit-for-bit.
        let x = TensorVal::from_f32(&[16], (0..16).map(|v| v as f32 * 0.11 - 0.8).collect());
        let xi = TensorVal::from_i32(&[16], (0..16).map(|v| v * 5 - 17).collect());
        let idx = TensorVal::from_i64(&[16], (0..16).map(|v| (v * 7 + 3) % 16).collect());
        assert_parity(&f, &[("x", x), ("xi", xi), ("idx", idx)], &[]);
    }

    #[test]
    fn parallel_region_privatizes_int_reductions() {
        // A histogram (random-access atomic Add) plus a carried Max: both
        // integer, so both privatize bit-exactly; the decision log must say
        // so and the pooled execution must match the interpreter exactly.
        let body = block([
            Stmt::new(StmtKind::ReduceTo {
                var: "hist".to_string(),
                indices: vec![Expr::cast(DataType::I64, load("x", [var("i")]).rem(8))],
                op: ReduceOp::Add,
                value: Expr::IntConst(1),
                atomic: true,
            }),
            Stmt::new(StmtKind::ReduceTo {
                var: "top".to_string(),
                indices: vec![Expr::IntConst(0)],
                op: ReduceOp::Max,
                value: load("x", [var("i")]),
                atomic: true,
            }),
        ]);
        let f = Func::new("ppriv")
            .param("x", [256], DataType::I32, AccessType::Input)
            .param("hist", [8], DataType::I64, AccessType::Output)
            .param("top", [1], DataType::I64, AccessType::Output)
            .body(for_with(
                "i",
                0,
                256,
                ForProperty::parallel(ParallelScope::OpenMp),
                body,
            ));
        let priv_log = decisions_of(&f, "vm.reduce.privatize");
        assert_eq!(
            priv_log,
            vec![(true, "Add".to_string()), (true, "Max".to_string())]
        );
        let par_log = decisions_of(&f, "vm.parallel");
        assert_eq!(par_log.len(), 1);
        assert!(par_log[0].0, "region must parallelize");
        assert!(
            par_log[0].1.starts_with("cost="),
            "accepted detail carries the grain cost: {}",
            par_log[0].1
        );
        let x = TensorVal::from_i32(&[256], (0..256).map(|v| (v * 13 + 5) % 97).collect());
        let r = assert_parity(&f, &[("x", x)], &[]);
        assert_eq!(r.output("top").get_flat(0).as_i64(), 96);
        let total: f64 = r.output("hist").to_f64_vec().iter().sum();
        assert_eq!(total, 256.0);
    }

    #[test]
    fn parallel_region_serializes_float_reductions() {
        // A carried f32 Add is not associative under per-step rounding, so
        // the region must refuse to privatize and run serially — and the
        // serial run must stay bit-identical to the interpreter.
        let f = Func::new("fser")
            .param("x", [64], DataType::F32, AccessType::Input)
            .param("acc", [1], DataType::F32, AccessType::Output)
            .body(for_with(
                "i",
                0,
                64,
                ForProperty::parallel(ParallelScope::OpenMp),
                Stmt::new(StmtKind::ReduceTo {
                    var: "acc".to_string(),
                    indices: vec![Expr::IntConst(0)],
                    op: ReduceOp::Add,
                    value: load("x", [var("i")]),
                    atomic: true,
                }),
            ));
        assert_eq!(
            decisions_of(&f, "vm.parallel"),
            vec![(false, "nonassociative_float_reduction".to_string())]
        );
        assert!(decisions_of(&f, "vm.reduce.privatize").is_empty());
        let x = TensorVal::from_f32(&[64], (0..64).map(|v| v as f32 * 0.093 - 1.7).collect());
        assert_parity(&f, &[("x", x)], &[]);
    }

    #[test]
    fn parallel_region_rejects_overlap_and_unproven_writes() {
        // Reading a tensor the region also writes is a cross-iteration
        // hazard the analysis cannot rule out.
        let f = Func::new("overlap")
            .param("x", [32], DataType::F32, AccessType::Input)
            .param("y", [32], DataType::F32, AccessType::Output)
            .param("z", [32], DataType::F32, AccessType::Output)
            .body(for_with(
                "i",
                0,
                32,
                ForProperty::parallel(ParallelScope::OpenMp),
                block([
                    store("y", [var("i")], load("x", [var("i")]) * 2.0f32),
                    store("z", [var("i")], load("y", [var("i")]) + 1.0f32),
                ]),
            ));
        assert_eq!(
            decisions_of(&f, "vm.parallel"),
            vec![(false, "read_write_overlap".to_string())]
        );
        let x = TensorVal::from_f32(&[32], (0..32).map(|v| v as f32 * 0.5).collect());
        assert_parity(&f, &[("x", x)], &[]);

        // A non-atomic store whose cell does not depend on the parallel
        // iterator could land anywhere; the region must serialize.
        let g = Func::new("unproven")
            .param("y", [1], DataType::I64, AccessType::Output)
            .body(for_with(
                "i",
                0,
                32,
                ForProperty::parallel(ParallelScope::OpenMp),
                store("y", [0], var("i")),
            ));
        assert_eq!(
            decisions_of(&g, "vm.parallel"),
            vec![(false, "unproven_disjoint_write".to_string())]
        );
        assert_parity(&g, &[], &[]);
    }
}
