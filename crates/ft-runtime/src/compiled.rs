//! Slot-indexed lowering of the IR for execution.
//!
//! Interpreting the IR directly would resolve tensor and iterator *names*
//! through hash maps on every access; this module lowers a [`Func`] once
//! into a compiled form where every scalar and tensor reference is a dense
//! slot index, and the executor works over plain vectors. Semantics and
//! instrumentation are identical to the specification in [`crate::interp`]
//! (the equivalence is exercised by the whole cross-crate test suite, which
//! runs everything through this path).

use crate::counters::{CacheSim, PerfCounters, LINE};
use crate::device::DeviceConfig;
use crate::error::RuntimeError;
use crate::value::{Scalar, TensorVal};
use ft_ir::{
    AccessType, BinaryOp, DataType, Expr, Func, MemType, ParallelScope, ReduceOp, Stmt, StmtKind,
    UnaryOp,
};
use ft_trace::{ProfileNode, StmtCounters};
use std::collections::HashMap;

/// A compiled expression over slot indices.
#[derive(Debug, Clone)]
pub(crate) enum CExpr {
    Int(i64),
    Float(f64),
    Bool(bool),
    /// Scalar slot (loop iterator or size parameter).
    Scalar(usize),
    Load {
        t: usize,
        idx: Vec<CExpr>,
    },
    Unary {
        op: UnaryOp,
        a: Box<CExpr>,
    },
    Binary {
        op: BinaryOp,
        a: Box<CExpr>,
        b: Box<CExpr>,
    },
    Select {
        cond: Box<CExpr>,
        then: Box<CExpr>,
        otherwise: Box<CExpr>,
    },
    Cast {
        dtype: DataType,
        a: Box<CExpr>,
    },
}

/// A compiled statement over slot indices.
#[derive(Debug, Clone)]
pub(crate) enum CStmt {
    Seq(Vec<CStmt>),
    VarDef {
        t: usize,
        shape: Vec<CExpr>,
        dtype: DataType,
        mtype: MemType,
        body: Box<CStmt>,
    },
    For {
        s: usize,
        begin: CExpr,
        end: CExpr,
        scope: ParallelScope,
        vectorize: bool,
        /// Profile-node index counters inside this loop are attributed to.
        prof: usize,
        body: Box<CStmt>,
    },
    If {
        cond: CExpr,
        then: Box<CStmt>,
        otherwise: Option<Box<CStmt>>,
    },
    Store {
        t: usize,
        idx: Vec<CExpr>,
        value: CExpr,
    },
    Reduce {
        t: usize,
        idx: Vec<CExpr>,
        op: ReduceOp,
        value: CExpr,
        /// Carried over from `StmtKind::ReduceTo`: the schedule marked this
        /// reduction as crossing iterations of an enclosing parallel loop
        /// (paper Fig. 13(d)/(e)). Parallel backends must privatize or
        /// serialize it; sequential execution ignores the flag.
        atomic: bool,
    },
    LibCall {
        kernel: String,
        inputs: Vec<usize>,
        outputs: Vec<usize>,
        attrs: Vec<i64>,
        /// Profile-node index this call's bulk charges are attributed to.
        prof: usize,
    },
    Nop,
}

/// A fully lowered function, ready to execute.
#[derive(Debug, Clone)]
pub(crate) struct Compiled {
    pub body: CStmt,
    /// One entry per tensor slot: diagnostic name.
    pub tensor_names: Vec<String>,
    /// Parameter slots in declaration order: (slot, shape, dtype, mtype, atype).
    pub params: Vec<(usize, Vec<CExpr>, DataType, MemType, AccessType)>,
    /// Scalar slot per size parameter, by name.
    pub size_slots: Vec<(String, usize)>,
    pub n_tensors: usize,
    pub n_scalars: usize,
    /// Profile-tree skeleton in preorder (node 0 = the function root); each
    /// `For`/`LibCall` carries the index of its node. Counters are zeroed
    /// here and filled per run.
    pub prof_nodes: Vec<ProfileNode>,
}

struct Lower {
    tensor_names: Vec<String>,
    n_scalars: usize,
    tensor_scope: HashMap<String, Vec<usize>>,
    scalar_scope: HashMap<String, Vec<usize>>,
    prof_nodes: Vec<ProfileNode>,
    prof_cur: usize,
}

impl Lower {
    fn tensor_slot(&mut self, name: &str) -> Result<usize, RuntimeError> {
        self.tensor_scope
            .get(name)
            .and_then(|v| v.last().copied())
            .ok_or_else(|| RuntimeError::UndefinedName(name.to_string()))
    }

    fn new_tensor(&mut self, name: &str) -> usize {
        let slot = self.tensor_names.len();
        self.tensor_names.push(name.to_string());
        self.tensor_scope
            .entry(name.to_string())
            .or_default()
            .push(slot);
        slot
    }

    fn new_scalar(&mut self, name: &str) -> usize {
        let slot = self.n_scalars;
        self.n_scalars += 1;
        self.scalar_scope
            .entry(name.to_string())
            .or_default()
            .push(slot);
        slot
    }

    fn new_prof_node(&mut self, stmt: ft_ir::StmtId, desc: String) -> usize {
        let idx = self.prof_nodes.len();
        self.prof_nodes.push(ProfileNode {
            stmt: Some(stmt),
            desc,
            parent: Some(self.prof_cur),
            counters: StmtCounters::default(),
        });
        idx
    }

    fn expr(&mut self, e: &Expr) -> Result<CExpr, RuntimeError> {
        Ok(match e {
            Expr::IntConst(v) => CExpr::Int(*v),
            Expr::FloatConst(v) => CExpr::Float(*v),
            Expr::BoolConst(v) => CExpr::Bool(*v),
            Expr::Var(n) => CExpr::Scalar(
                self.scalar_scope
                    .get(n)
                    .and_then(|v| v.last().copied())
                    .ok_or_else(|| RuntimeError::UndefinedName(n.clone()))?,
            ),
            Expr::Load { var, indices } => CExpr::Load {
                t: self.tensor_slot(var)?,
                idx: indices
                    .iter()
                    .map(|i| self.expr(i))
                    .collect::<Result<_, _>>()?,
            },
            Expr::Unary { op, a } => CExpr::Unary {
                op: *op,
                a: Box::new(self.expr(a)?),
            },
            Expr::Binary { op, a, b } => CExpr::Binary {
                op: *op,
                a: Box::new(self.expr(a)?),
                b: Box::new(self.expr(b)?),
            },
            Expr::Select {
                cond,
                then,
                otherwise,
            } => CExpr::Select {
                cond: Box::new(self.expr(cond)?),
                then: Box::new(self.expr(then)?),
                otherwise: Box::new(self.expr(otherwise)?),
            },
            Expr::Cast { dtype, a } => CExpr::Cast {
                dtype: *dtype,
                a: Box::new(self.expr(a)?),
            },
        })
    }

    fn stmt(&mut self, s: &Stmt) -> Result<CStmt, RuntimeError> {
        Ok(match &s.kind {
            StmtKind::Empty => CStmt::Nop,
            StmtKind::Block(v) => CStmt::Seq(
                v.iter()
                    .map(|st| self.stmt(st))
                    .collect::<Result<_, _>>()?,
            ),
            StmtKind::VarDef {
                name,
                shape,
                dtype,
                mtype,
                body,
                ..
            } => {
                let shape: Vec<CExpr> = shape
                    .iter()
                    .map(|e| self.expr(e))
                    .collect::<Result<_, _>>()?;
                let t = self.new_tensor(name);
                let body = self.stmt(body)?;
                self.tensor_scope
                    .get_mut(name)
                    .expect("just pushed")
                    .pop();
                CStmt::VarDef {
                    t,
                    shape,
                    dtype: *dtype,
                    mtype: *mtype,
                    body: Box::new(body),
                }
            }
            StmtKind::For {
                iter,
                begin,
                end,
                property,
                body,
            } => {
                let begin = self.expr(begin)?;
                let end = self.expr(end)?;
                let s_slot = self.new_scalar(iter);
                let prof = self.new_prof_node(s.id, format!("for {iter}"));
                let saved = self.prof_cur;
                self.prof_cur = prof;
                let body = self.stmt(body)?;
                self.prof_cur = saved;
                self.scalar_scope
                    .get_mut(iter)
                    .expect("just pushed")
                    .pop();
                CStmt::For {
                    s: s_slot,
                    begin,
                    end,
                    scope: property.parallel,
                    vectorize: property.vectorize,
                    prof,
                    body: Box::new(body),
                }
            }
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => CStmt::If {
                cond: self.expr(cond)?,
                then: Box::new(self.stmt(then)?),
                otherwise: match otherwise {
                    Some(o) => Some(Box::new(self.stmt(o)?)),
                    None => None,
                },
            },
            StmtKind::Store {
                var,
                indices,
                value,
            } => CStmt::Store {
                t: self.tensor_slot(var)?,
                idx: indices
                    .iter()
                    .map(|i| self.expr(i))
                    .collect::<Result<_, _>>()?,
                value: self.expr(value)?,
            },
            StmtKind::ReduceTo {
                var,
                indices,
                op,
                value,
                atomic,
            } => CStmt::Reduce {
                t: self.tensor_slot(var)?,
                idx: indices
                    .iter()
                    .map(|i| self.expr(i))
                    .collect::<Result<_, _>>()?,
                op: *op,
                value: self.expr(value)?,
                atomic: *atomic,
            },
            StmtKind::LibCall {
                kernel,
                inputs,
                outputs,
                attrs,
            } => CStmt::LibCall {
                kernel: kernel.clone(),
                inputs: inputs
                    .iter()
                    .map(|n| self.tensor_slot(n))
                    .collect::<Result<_, _>>()?,
                outputs: outputs
                    .iter()
                    .map(|n| self.tensor_slot(n))
                    .collect::<Result<_, _>>()?,
                attrs: attrs.clone(),
                prof: self.new_prof_node(s.id, kernel.clone()),
            },
        })
    }
}

/// Lower a function into slot-indexed form.
pub(crate) fn compile(func: &Func) -> Result<Compiled, RuntimeError> {
    let mut lw = Lower {
        tensor_names: Vec::new(),
        n_scalars: 0,
        tensor_scope: HashMap::new(),
        scalar_scope: HashMap::new(),
        prof_nodes: vec![ProfileNode {
            stmt: None,
            desc: func.name.clone(),
            parent: None,
            counters: StmtCounters::default(),
        }],
        prof_cur: 0,
    };
    let mut size_slots = Vec::new();
    for sp in &func.size_params {
        size_slots.push((sp.clone(), lw.new_scalar(sp)));
    }
    let mut params = Vec::new();
    for p in &func.params {
        let shape: Vec<CExpr> = p
            .shape
            .iter()
            .map(|e| lw.expr(e))
            .collect::<Result<_, _>>()?;
        let slot = lw.new_tensor(&p.name);
        params.push((slot, shape, p.dtype, p.mtype, p.atype));
    }
    let body = lw.stmt(&func.body)?;
    Ok(Compiled {
        body,
        tensor_names: lw.tensor_names,
        params,
        size_slots,
        n_tensors: 0,
        n_scalars: lw.n_scalars,
        prof_nodes: lw.prof_nodes,
    }
    .finish())
}

impl Compiled {
    fn finish(mut self) -> Compiled {
        self.n_tensors = self.tensor_names.len();
        self
    }
}

pub(crate) struct TensorEntry {
    pub val: TensorVal,
    pub mtype: MemType,
    pub base: u64,
}

/// Execution context over slot vectors (same instrumentation semantics as
/// the reference interpreter).
pub(crate) struct ExecCtx<'a> {
    pub config: &'a DeviceConfig,
    pub tensors: Vec<Option<TensorEntry>>,
    pub names: &'a [String],
    pub scalars: Vec<i64>,
    pub counters: PerfCounters,
    pub cache: CacheSim,
    pub next_addr: u64,
    pub gpu_depth: usize,
    /// When profiling: one exclusive counter bucket per `Compiled::prof_nodes`
    /// entry. `None` keeps the hot path attribution-free.
    pub prof: Option<Vec<StmtCounters>>,
    /// Index of the bucket currently being charged (node 0 = function root).
    pub prof_cur: usize,
    /// When metrics are installed: wall time of each library-kernel call.
    pub kernel_us: Option<ft_metrics::Histogram>,
    /// Plan-driven buffer pool for `VarDef` storage. Reuses scope-exited
    /// buffers of the same interference class (skipping the zero-fill when
    /// the plan proved write-before-read); modeled accounting is unchanged.
    pub arena: Option<crate::arena::TensorPool>,
}

impl ExecCtx<'_> {
    pub(crate) fn entry(&self, t: usize) -> Result<&TensorEntry, RuntimeError> {
        self.tensors[t]
            .as_ref()
            .ok_or_else(|| RuntimeError::UndefinedName(self.names[t].clone()))
    }

    pub(crate) fn tensor(&self, t: usize) -> Result<&TensorVal, RuntimeError> {
        Ok(&self.entry(t)?.val)
    }

    pub(crate) fn replace_tensor(&mut self, t: usize, val: TensorVal) -> Result<(), RuntimeError> {
        let e = self.tensors[t]
            .as_mut()
            .ok_or_else(|| RuntimeError::UndefinedName(self.names[t].clone()))?;
        e.val = val;
        Ok(())
    }

    /// Charge counters in bulk for a library kernel.
    pub(crate) fn charge_bulk(&mut self, bytes: u64, flops: u64, cycles: f64) {
        self.counters.heap_bytes += bytes;
        self.counters.l2_bytes += bytes;
        self.counters.dram_bytes += bytes;
        self.counters.flops += flops;
        let cyc = cycles + (bytes as f64 / LINE as f64) * self.config.cost_dram / 4.0;
        self.counters.modeled_cycles += cyc;
        if let Some(p) = self.prof.as_mut() {
            let c = &mut p[self.prof_cur];
            c.heap_bytes += bytes;
            c.l2_bytes += bytes;
            c.dram_bytes += bytes;
            c.flops += flops;
            c.cycles += cyc;
        }
    }

    pub(crate) fn alloc(
        &mut self,
        t: usize,
        val: TensorVal,
        mtype: MemType,
    ) -> Result<(), RuntimeError> {
        let device = mtype.device();
        let dev_name = device.to_string();
        let bytes = val.size_bytes() as u64;
        let live = *self.counters.live_bytes.get(&dev_name).unwrap_or(&0);
        let capacity = self.config.capacity(device) as u64;
        if live + bytes > capacity {
            return Err(RuntimeError::OutOfMemory {
                device,
                requested: bytes,
                live,
                capacity,
            });
        }
        self.counters.alloc(&dev_name, bytes);
        let base = self.next_addr;
        self.next_addr += bytes.div_ceil(LINE) * LINE;
        self.tensors[t] = Some(TensorEntry { val, mtype, base });
        Ok(())
    }

    fn dealloc(&mut self, t: usize) -> Option<TensorVal> {
        self.tensors[t].take().map(|e| {
            self.counters
                .free(&e.mtype.device().to_string(), e.val.size_bytes() as u64);
            e.val
        })
    }

    #[inline]
    fn record_access(&mut self, t: usize, off: usize) {
        let entry = self.tensors[t].as_ref().expect("checked by caller");
        let bytes = entry.val.dtype().size_bytes() as u64;
        let mtype = entry.mtype;
        let base = entry.base;
        match mtype {
            MemType::CpuHeap | MemType::GpuGlobal => {
                self.counters.heap_bytes += bytes;
                self.counters.l2_bytes += bytes;
                let addr = base + off as u64 * bytes;
                let m0 = self.cache.misses;
                self.cache.access(addr, bytes);
                let misses = self.cache.misses - m0;
                let cyc = if misses > 0 {
                    misses as f64 * self.config.cost_dram
                } else {
                    self.config.cost_l2
                };
                self.counters.dram_bytes += misses * LINE;
                self.counters.modeled_cycles += cyc;
                if let Some(p) = self.prof.as_mut() {
                    let c = &mut p[self.prof_cur];
                    c.heap_bytes += bytes;
                    c.l2_bytes += bytes;
                    c.dram_bytes += misses * LINE;
                    c.cycles += cyc;
                }
            }
            MemType::CpuStack | MemType::GpuShared | MemType::GpuLocal => {
                self.counters.scratch_bytes += bytes;
                self.counters.modeled_cycles += self.config.cost_scratch;
                if let Some(p) = self.prof.as_mut() {
                    let c = &mut p[self.prof_cur];
                    c.scratch_bytes += bytes;
                    c.cycles += self.config.cost_scratch;
                }
            }
        }
    }

    fn bounds_check(&self, t: usize, idx: &[i64]) -> Result<usize, RuntimeError> {
        let entry = self.entry(t)?;
        if idx.len() != entry.val.ndim()
            || idx
                .iter()
                .zip(entry.val.shape())
                .any(|(&i, &e)| i < 0 || i as usize >= e)
        {
            return Err(RuntimeError::IndexOutOfBounds {
                name: self.names[t].clone(),
                index: idx.to_vec(),
                shape: entry.val.shape().to_vec(),
            });
        }
        Ok(entry.val.flat_index(idx))
    }

    #[inline]
    fn count_op(&mut self, float: bool) {
        if float {
            self.counters.flops += 1;
        } else {
            self.counters.int_ops += 1;
        }
        self.counters.modeled_cycles += self.config.cost_op;
        if let Some(p) = self.prof.as_mut() {
            let c = &mut p[self.prof_cur];
            if float {
                c.flops += 1;
            } else {
                c.int_ops += 1;
            }
            c.cycles += self.config.cost_op;
        }
    }

    fn eval_indices(&mut self, idx: &[CExpr]) -> Result<Vec<i64>, RuntimeError> {
        idx.iter().map(|e| Ok(self.eval(e)?.as_i64())).collect()
    }

    pub(crate) fn eval(&mut self, e: &CExpr) -> Result<Scalar, RuntimeError> {
        Ok(match e {
            CExpr::Int(v) => Scalar::Int(*v),
            CExpr::Float(v) => Scalar::Float(*v),
            CExpr::Bool(v) => Scalar::Bool(*v),
            CExpr::Scalar(s) => Scalar::Int(self.scalars[*s]),
            CExpr::Load { t, idx } => {
                let idx = self.eval_indices(idx)?;
                let off = self.bounds_check(*t, &idx)?;
                let v = self.tensors[*t].as_ref().expect("checked").val.get_flat(off);
                self.record_access(*t, off);
                v
            }
            CExpr::Unary { op, a } => {
                let v = self.eval(a)?;
                self.count_op(matches!(v, Scalar::Float(_)));
                crate::interp::eval_unary(*op, v)?
            }
            CExpr::Binary { op, a, b } => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                self.count_op(
                    matches!(va, Scalar::Float(_)) || matches!(vb, Scalar::Float(_)),
                );
                crate::interp::eval_binary(*op, va, vb)?
            }
            CExpr::Select {
                cond,
                then,
                otherwise,
            } => {
                if self.eval(cond)?.as_bool() {
                    self.eval(then)?
                } else {
                    self.eval(otherwise)?
                }
            }
            CExpr::Cast { dtype, a } => {
                let v = self.eval(a)?;
                match dtype {
                    DataType::F32 => Scalar::Float(v.as_f64() as f32 as f64),
                    DataType::F64 => Scalar::Float(v.as_f64()),
                    DataType::I32 => Scalar::Int(v.as_i64() as i32 as i64),
                    DataType::I64 => Scalar::Int(v.as_i64()),
                    DataType::Bool => Scalar::Bool(v.as_bool()),
                }
            }
        })
    }

    pub(crate) fn exec(&mut self, s: &CStmt) -> Result<(), RuntimeError> {
        match s {
            CStmt::Nop => Ok(()),
            CStmt::Seq(v) => {
                for st in v {
                    self.exec(st)?;
                }
                Ok(())
            }
            CStmt::VarDef {
                t,
                shape,
                dtype,
                mtype,
                body,
            } => {
                let sh: Vec<usize> = shape
                    .iter()
                    .map(|e| {
                        let v = self.eval(e)?.as_i64();
                        usize::try_from(v)
                            .map_err(|_| RuntimeError::UnresolvedSize(self.names[*t].clone()))
                    })
                    .collect::<Result<_, _>>()?;
                let val = match self.arena.as_mut() {
                    Some(pool) => pool.take_slot(*t, *dtype, &sh),
                    None => TensorVal::zeros(*dtype, &sh),
                };
                self.alloc(*t, val, *mtype)?;
                let r = self.exec(body);
                if let Some(val) = self.dealloc(*t) {
                    if let Some(pool) = self.arena.as_mut() {
                        pool.put_slot(*t, val);
                    }
                }
                r
            }
            CStmt::For {
                s: slot,
                begin,
                end,
                scope,
                vectorize,
                prof,
                body,
            } => {
                let b = self.eval(begin)?.as_i64();
                let e = self.eval(end)?.as_i64();
                let entering_gpu = scope.is_gpu() && self.gpu_depth == 0;
                if entering_gpu {
                    self.counters.kernel_launches += 1;
                    self.counters.modeled_cycles += self.config.cost_kernel_launch;
                }
                if scope.is_gpu() {
                    self.gpu_depth += 1;
                }
                let saved_prof = self.prof_cur;
                if let Some(p) = self.prof.as_mut() {
                    self.prof_cur = *prof;
                    p[*prof].trips += (e - b).max(0) as u64;
                }
                let cycles_before = self.counters.modeled_cycles;
                for i in b..e {
                    self.scalars[*slot] = i;
                    self.exec(body)?;
                }
                self.prof_cur = saved_prof;
                if scope.is_gpu() {
                    self.gpu_depth -= 1;
                }
                let mut width = self.config.width(*scope) as f64;
                if *vectorize {
                    width *= 8.0;
                }
                if width > 1.0 && e > b {
                    let delta = self.counters.modeled_cycles - cycles_before;
                    let eff = width.min((e - b) as f64);
                    self.counters.modeled_cycles = cycles_before + delta / eff;
                }
                Ok(())
            }
            CStmt::If {
                cond,
                then,
                otherwise,
            } => {
                if self.eval(cond)?.as_bool() {
                    self.exec(then)
                } else if let Some(o) = otherwise {
                    self.exec(o)
                } else {
                    Ok(())
                }
            }
            CStmt::Store { t, idx, value } => {
                let idx = self.eval_indices(idx)?;
                let v = self.eval(value)?;
                let off = self.bounds_check(*t, &idx)?;
                self.tensors[*t]
                    .as_mut()
                    .expect("checked")
                    .val
                    .set_flat(off, v);
                self.record_access(*t, off);
                Ok(())
            }
            CStmt::Reduce {
                t,
                idx,
                op,
                value,
                atomic: _,
            } => {
                let idx = self.eval_indices(idx)?;
                let v = self.eval(value)?;
                let off = self.bounds_check(*t, &idx)?;
                let old = self.tensors[*t].as_ref().expect("checked").val.get_flat(off);
                self.record_access(*t, off);
                self.count_op(
                    matches!(old, Scalar::Float(_)) || matches!(v, Scalar::Float(_)),
                );
                let new = crate::interp::apply_reduce(*op, old, v);
                self.tensors[*t]
                    .as_mut()
                    .expect("checked")
                    .val
                    .set_flat(off, new);
                self.record_access(*t, off);
                Ok(())
            }
            CStmt::LibCall {
                kernel,
                inputs,
                outputs,
                attrs,
                prof,
            } => {
                let saved_prof = self.prof_cur;
                if let Some(p) = self.prof.as_mut() {
                    self.prof_cur = *prof;
                    p[*prof].trips += 1;
                }
                let t0 = self.kernel_us.as_ref().map(|_| std::time::Instant::now());
                let r = crate::libkernel::dispatch_slots(self, kernel, inputs, outputs, attrs);
                if let (Some(h), Some(t0)) = (&self.kernel_us, t0) {
                    h.record_duration_us(t0.elapsed());
                }
                self.prof_cur = saved_prof;
                r
            }
        }
    }
}
