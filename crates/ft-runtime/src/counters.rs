//! Performance counters and the L2 cache simulator.

use std::collections::HashMap;

/// A set-associative cache simulator with LRU replacement and 64-byte lines.
///
/// Heap/global accesses are pushed through this model; a hit counts as L2
/// traffic, a miss as DRAM traffic — matching the DRAM/L2 breakdown the
/// paper profiles in Fig. 17.
#[derive(Debug, Clone)]
pub struct CacheSim {
    sets: Vec<Vec<u64>>, // per set: line tags, most-recently-used last
    ways: usize,
    set_mask: u64,
    /// Number of accesses that hit in the cache.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

/// Cache line size in bytes.
pub const LINE: u64 = 64;

/// The reason a requested cache geometry is not exactly realizable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheGeometryError {
    /// `ways` was zero.
    ZeroWays,
    /// `size` holds fewer lines than one full set (`size < ways * LINE`),
    /// so the derived set count is zero.
    TooSmall,
    /// The derived set count is not a power of two, which the mask-based
    /// indexing requires.
    NonPowerOfTwoSets(usize),
}

impl CacheSim {
    /// Build a simulator of `size` bytes with `ways`-way associativity.
    ///
    /// Geometries that are not exactly realizable are clamped to the nearest
    /// valid one instead of panicking: `ways` is raised to at least 1, and
    /// the set count is rounded *down* to a power of two, with a floor of
    /// one set. Use [`CacheSim::try_new`] to reject inexact geometries
    /// instead.
    pub fn new(size: usize, ways: usize) -> CacheSim {
        let ways = ways.max(1);
        let raw_sets = size / (ways * LINE as usize);
        let n_sets = if raw_sets == 0 {
            1
        } else {
            1 << raw_sets.ilog2()
        };
        CacheSim {
            sets: vec![Vec::with_capacity(ways); n_sets],
            ways,
            set_mask: n_sets as u64 - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Build a simulator only if `size` and `ways` describe an exact
    /// geometry (a positive power-of-two set count).
    ///
    /// # Errors
    ///
    /// [`CacheGeometryError`] naming what is wrong with the request.
    pub fn try_new(size: usize, ways: usize) -> Result<CacheSim, CacheGeometryError> {
        if ways == 0 {
            return Err(CacheGeometryError::ZeroWays);
        }
        let n_sets = size / (ways * LINE as usize);
        if n_sets == 0 {
            return Err(CacheGeometryError::TooSmall);
        }
        if !n_sets.is_power_of_two() {
            return Err(CacheGeometryError::NonPowerOfTwoSets(n_sets));
        }
        Ok(CacheSim::new(size, ways))
    }

    /// Number of sets the simulator settled on.
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Access `len` bytes starting at `addr`; touches every covered line.
    pub fn access(&mut self, addr: u64, len: u64) {
        let first = addr / LINE;
        let last = (addr + len.max(1) - 1) / LINE;
        for line in first..=last {
            self.touch(line);
        }
    }

    fn touch(&mut self, line: u64) {
        let set = (line & self.set_mask) as usize;
        let tags = &mut self.sets[set];
        if let Some(pos) = tags.iter().position(|&t| t == line) {
            tags.remove(pos);
            tags.push(line);
            self.hits += 1;
        } else {
            if tags.len() == self.ways {
                tags.remove(0);
            }
            tags.push(line);
            self.misses += 1;
        }
    }

    /// Forget all cached lines but keep the counters.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

/// Aggregated execution counters of one run.
///
/// `PartialEq` compares every field exactly (including `modeled_cycles`,
/// which is an `f64`): the bytecode VM's instrumented mode is required to
/// reproduce the interpreter's counters bit-for-bit, and the differential
/// tests assert that with `==`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfCounters {
    /// GPU kernel launches (outermost GPU-parallel region entries).
    pub kernel_launches: u64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Integer/addressing operations executed.
    pub int_ops: u64,
    /// Bytes moved to/from DRAM (cache-line granularity misses).
    pub dram_bytes: u64,
    /// Bytes served by the simulated L2.
    pub l2_bytes: u64,
    /// Bytes accessed in scratch memories (stack / shared / registers).
    pub scratch_bytes: u64,
    /// Raw bytes requested from heap/global memory (before the cache model).
    pub heap_bytes: u64,
    /// Current live bytes per device name ("cpu" / "gpu").
    pub live_bytes: HashMap<String, u64>,
    /// Peak live bytes per device name.
    pub peak_bytes: HashMap<String, u64>,
    /// Modeled execution time in cycle units (parallelism-aware).
    pub modeled_cycles: f64,
}

impl PerfCounters {
    /// Record an allocation on a device; returns the new live size.
    /// Saturating: a pathological allocation stream pins at `u64::MAX`
    /// instead of wrapping (a wrapped `live_bytes` would also corrupt the
    /// peak tracking below it).
    pub fn alloc(&mut self, device: &str, bytes: u64) -> u64 {
        let live = self.live_bytes.entry(device.to_string()).or_insert(0);
        *live = live.saturating_add(bytes);
        let live_now = *live;
        let peak = self.peak_bytes.entry(device.to_string()).or_insert(0);
        if live_now > *peak {
            *peak = live_now;
        }
        live_now
    }

    /// Record a deallocation on a device.
    pub fn free(&mut self, device: &str, bytes: u64) {
        if let Some(live) = self.live_bytes.get_mut(device) {
            *live = live.saturating_sub(bytes);
        }
    }

    /// Merge another counter set into this one (used by threaded execution
    /// and long accumulation loops). Saturating on every `u64` field: near
    /// the top of the range a sum pins at `u64::MAX` instead of wrapping to
    /// a small number — a wrapped total would silently pass "counters look
    /// plausible" checks while being off by 2^64.
    pub fn merge(&mut self, other: &PerfCounters) {
        self.kernel_launches = self.kernel_launches.saturating_add(other.kernel_launches);
        self.flops = self.flops.saturating_add(other.flops);
        self.int_ops = self.int_ops.saturating_add(other.int_ops);
        self.dram_bytes = self.dram_bytes.saturating_add(other.dram_bytes);
        self.l2_bytes = self.l2_bytes.saturating_add(other.l2_bytes);
        self.scratch_bytes = self.scratch_bytes.saturating_add(other.scratch_bytes);
        self.heap_bytes = self.heap_bytes.saturating_add(other.heap_bytes);
        self.modeled_cycles += other.modeled_cycles;
        for (k, v) in &other.live_bytes {
            let live = self.live_bytes.entry(k.clone()).or_insert(0);
            *live = live.saturating_add(*v);
        }
        for (k, v) in &other.peak_bytes {
            let p = self.peak_bytes.entry(k.clone()).or_insert(0);
            *p = (*p).max(*v);
        }
    }

    /// The search objective of this run: quantized `modeled_cycles` first,
    /// `dram_bytes` as the tiebreak. See [`ScheduleScore`].
    pub fn score(&self) -> ScheduleScore {
        ScheduleScore::new(self.modeled_cycles, self.dram_bytes)
    }

    /// Whether two runs score equally *for schedule-search purposes*:
    /// `modeled_cycles` within relative epsilon (and `dram_bytes` exactly).
    ///
    /// `PerfCounters::eq` intentionally stays bit-exact — the VM-parity
    /// differential tests depend on that — but a search comparing candidate
    /// schedules must not let accumulated float drift (e.g. a different
    /// merge order of per-thread counters) make two identical schedules
    /// compare unequal and churn the population. Use this (or [`score`],
    /// whose quantization is coarser than the epsilon here) for ranking.
    ///
    /// [`score`]: PerfCounters::score
    pub fn score_eq(&self, other: &PerfCounters) -> bool {
        let a = self.modeled_cycles;
        let b = other.modeled_cycles;
        let cycles_close = if a == b {
            true // covers 0.0 == 0.0 and exact equality
        } else {
            (a - b).abs() <= SCORE_REL_EPS * a.abs().max(b.abs())
        };
        cycles_close && self.dram_bytes == other.dram_bytes
    }
}

/// Relative tolerance under which two `modeled_cycles` values are the same
/// schedule score (~2^-26, i.e. half the f64 mantissa): large enough to
/// absorb any realistic accumulation-order drift, far smaller than the
/// effect of a real schedule change.
pub const SCORE_REL_EPS: f64 = 1.5e-8;

/// A total-order key over `(modeled_cycles, dram_bytes)` for ranking
/// candidate schedules: lower is better, `Ord` is derived, and the cycle
/// component is *quantized* so values within float-drift distance of each
/// other collapse to the same key.
///
/// Quantization masks the low 26 mantissa bits of the `f64` bit pattern.
/// For non-negative finite doubles the bit pattern is monotone as a `u64`,
/// so masking preserves order while bucketing values whose relative
/// difference is below ~2^-26 — the same scale as [`SCORE_REL_EPS`]. Two
/// runs that `score_eq` therefore map to equal or adjacent keys, and the
/// derived lexicographic order falls through to deterministic `dram_bytes`
/// on ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ScheduleScore {
    /// Quantized `modeled_cycles` bit pattern (primary objective).
    pub cycles_q: u64,
    /// Exact `dram_bytes` (deterministic tiebreak).
    pub dram_bytes: u64,
}

impl ScheduleScore {
    /// Mask clearing the low 26 of the 52 f64 mantissa bits.
    const QUANT_MASK: u64 = !((1u64 << 26) - 1);

    /// Build the key from raw counter values. Negative or NaN cycle values
    /// cannot occur in real runs; they rank last so a corrupted candidate
    /// never wins the search.
    pub fn new(modeled_cycles: f64, dram_bytes: u64) -> ScheduleScore {
        let cycles_q = if modeled_cycles.is_finite() && modeled_cycles >= 0.0 {
            modeled_cycles.to_bits() & Self::QUANT_MASK
        } else {
            u64::MAX
        };
        ScheduleScore {
            cycles_q,
            dram_bytes,
        }
    }

    /// The representative `modeled_cycles` of this key's bucket (for
    /// display; `u64::MAX` decodes as infinity).
    pub fn cycles(&self) -> f64 {
        if self.cycles_q == u64::MAX {
            f64::INFINITY
        } else {
            f64::from_bits(self.cycles_q)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hits_on_reuse() {
        let mut c = CacheSim::new(1 << 16, 4);
        c.access(0, 4);
        c.access(4, 4); // same line
        c.access(64, 4); // next line
        assert_eq!(c.misses, 2);
        assert_eq!(c.hits, 1);
    }

    #[test]
    fn cache_evicts_lru() {
        // 2 sets * 2 ways * 64B = 256B cache; lines mapping to set 0:
        // 0, 128, 256, ... (line index even).
        let mut c = CacheSim::new(256, 2);
        c.access(0, 1); // set 0: [0]
        c.access(128, 1); // set 0: [0, 2]
        c.access(256, 1); // evicts line 0
        c.access(0, 1); // miss again
        assert_eq!(c.misses, 4);
        assert_eq!(c.hits, 0);
        // Re-touching 0 now hits (it was just brought back).
        c.access(0, 1);
        assert_eq!(c.hits, 1);
    }

    #[test]
    fn small_geometry_clamps_to_one_set() {
        // size < ways * LINE used to derive zero sets and panic; it now
        // clamps to a single fully-associative set.
        let mut c = CacheSim::new(64, 4);
        assert_eq!(c.n_sets(), 1);
        c.access(0, 4);
        c.access(0, 4);
        assert_eq!((c.misses, c.hits), (1, 1));
    }

    #[test]
    fn non_power_of_two_sets_round_down() {
        // 3 * 64B direct-mapped → 3 raw sets → clamped down to 2.
        let c = CacheSim::new(3 * 64, 1);
        assert_eq!(c.n_sets(), 2);
        // 5 raw sets → 4.
        assert_eq!(CacheSim::new(5 * 64, 1).n_sets(), 4);
    }

    #[test]
    fn degenerate_geometries_do_not_panic() {
        assert_eq!(CacheSim::new(0, 4).n_sets(), 1);
        assert_eq!(CacheSim::new(256, 0).n_sets(), 4); // ways clamped to 1
        let mut c = CacheSim::new(1, 1);
        c.access(1 << 40, 16); // high address in a 1-set cache, still fine
        assert!(c.misses > 0);
    }

    #[test]
    fn try_new_reports_the_defect() {
        assert_eq!(
            CacheSim::try_new(256, 0).unwrap_err(),
            CacheGeometryError::ZeroWays
        );
        assert_eq!(
            CacheSim::try_new(63, 1).unwrap_err(),
            CacheGeometryError::TooSmall
        );
        assert_eq!(
            CacheSim::try_new(3 * 64, 1).unwrap_err(),
            CacheGeometryError::NonPowerOfTwoSets(3)
        );
        assert!(CacheSim::try_new(1 << 16, 4).is_ok());
    }

    #[test]
    fn multi_line_access_touches_all_lines() {
        let mut c = CacheSim::new(1 << 16, 4);
        c.access(60, 8); // straddles the 0..64 and 64..128 lines
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn alloc_tracks_peak() {
        let mut p = PerfCounters::default();
        p.alloc("gpu", 100);
        p.alloc("gpu", 50);
        p.free("gpu", 120);
        p.alloc("gpu", 10);
        assert_eq!(p.peak_bytes["gpu"], 150);
        assert_eq!(p.live_bytes["gpu"], 40);
    }

    #[test]
    fn merge_and_alloc_saturate_instead_of_wrapping() {
        let mut a = PerfCounters {
            flops: u64::MAX - 1,
            heap_bytes: u64::MAX,
            ..Default::default()
        };
        a.alloc("cpu", u64::MAX - 8);
        let mut b = PerfCounters {
            flops: 5,
            heap_bytes: 1,
            ..Default::default()
        };
        b.alloc("cpu", 64);
        a.merge(&b);
        assert_eq!(a.flops, u64::MAX);
        assert_eq!(a.heap_bytes, u64::MAX);
        assert_eq!(a.live_bytes["cpu"], u64::MAX);
        // alloc near the top also pins rather than wrapping.
        let mut p = PerfCounters::default();
        p.alloc("gpu", u64::MAX - 1);
        assert_eq!(p.alloc("gpu", 100), u64::MAX);
        assert_eq!(p.peak_bytes["gpu"], u64::MAX);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PerfCounters {
            flops: 10,
            kernel_launches: 2,
            ..Default::default()
        };
        a.alloc("gpu", 100);
        let mut b = PerfCounters {
            flops: 5,
            dram_bytes: 64,
            kernel_launches: 3,
            ..Default::default()
        };
        b.alloc("gpu", 40);
        b.alloc("cpu", 8);
        a.merge(&b);
        assert_eq!(a.flops, 15);
        assert_eq!(a.dram_bytes, 64);
        assert_eq!(a.kernel_launches, 5);
        // live_bytes merges by summation (both sides still hold their
        // allocations); peak_bytes merges by max.
        assert_eq!(a.live_bytes["gpu"], 140);
        assert_eq!(a.live_bytes["cpu"], 8);
        assert_eq!(a.peak_bytes["gpu"], 100);
    }

    #[test]
    fn score_eq_absorbs_float_drift_but_not_real_changes() {
        let base = PerfCounters {
            modeled_cycles: 1.0e9,
            dram_bytes: 1 << 20,
            ..Default::default()
        };
        // A value one ulp-accumulation away (simulating a different merge
        // order of per-thread partial sums) must still compare equal for
        // search, even though exact PartialEq distinguishes it.
        let mut drifted = base.clone();
        drifted.modeled_cycles = 1.0e9 + 1.0; // rel diff 1e-9 < SCORE_REL_EPS
        assert_ne!(base, drifted);
        assert!(base.score_eq(&drifted));
        assert!(drifted.score_eq(&base));
        // A real schedule change (0.1% fewer cycles) is a different score.
        let mut better = base.clone();
        better.modeled_cycles = 0.999e9;
        assert!(!base.score_eq(&better));
        // dram_bytes is an exact, deterministic counter: any difference is a
        // different score even at identical cycles.
        let mut more_dram = base.clone();
        more_dram.dram_bytes += 64;
        assert!(!base.score_eq(&more_dram));
        // Zero-cycle runs compare equal to themselves.
        let zero = PerfCounters::default();
        assert!(zero.score_eq(&PerfCounters::default()));
    }

    #[test]
    fn schedule_score_orders_by_quantized_cycles_then_dram() {
        let a = ScheduleScore::new(1.0e9, 100);
        let drift = ScheduleScore::new(1.0e9 + 1.0, 100);
        // Drift-distance values collapse to the same key...
        assert_eq!(a, drift);
        // ...real differences order correctly...
        assert!(ScheduleScore::new(0.999e9, 100) < a);
        assert!(a < ScheduleScore::new(1.001e9, 100));
        // ...and dram_bytes breaks exact-cycle ties deterministically.
        assert!(a < ScheduleScore::new(1.0e9, 101));
        // Corrupted values rank last, never winning a search.
        assert!(ScheduleScore::new(f64::NAN, 0) > ScheduleScore::new(1.0e12, u64::MAX));
        assert_eq!(ScheduleScore::new(f64::NAN, 0).cycles(), f64::INFINITY);
        // score() is consistent with score_eq(): equal keys for drift pairs.
        let p1 = PerfCounters {
            modeled_cycles: 1.0e9,
            dram_bytes: 7,
            ..Default::default()
        };
        let mut p2 = p1.clone();
        p2.modeled_cycles = 1.0e9 + 1.0;
        assert!(p1.score_eq(&p2));
        assert_eq!(p1.score(), p2.score());
    }
}
