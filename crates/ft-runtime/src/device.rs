//! Modeled device configuration.

use ft_ir::{Device, ParallelScope};

/// Parameters of the modeled platform.
///
/// Defaults mirror the paper's testbed *shape* (dual 12-core Xeon, V100):
/// what matters for reproducing the evaluation is the ratio structure —
/// many-way GPU parallelism, bounded GPU memory, a sizable L2 — not the
/// absolute numbers.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Modeled CPU worker threads (`OpenMp` loops divide by this).
    pub cpu_threads: usize,
    /// Modeled number of streaming multiprocessors (`CudaBlock*` width).
    pub gpu_sms: usize,
    /// Modeled threads per block (`CudaThread*` width).
    pub gpu_threads_per_block: usize,
    /// GPU global-memory capacity in bytes (exceeding it is an OOM error).
    pub gpu_mem_capacity: usize,
    /// GPU shared-memory capacity per block in bytes.
    pub gpu_shared_capacity: usize,
    /// CPU memory capacity in bytes.
    pub cpu_mem_capacity: usize,
    /// L2 cache total size in bytes (simulated, 64-byte lines).
    pub l2_size: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Modeled cycle cost of one DRAM line fill.
    pub cost_dram: f64,
    /// Modeled cycle cost of one L2 hit.
    pub cost_l2: f64,
    /// Modeled cycle cost of one scratch (stack/shared/local) access.
    pub cost_scratch: f64,
    /// Modeled cycle cost of one arithmetic operation.
    pub cost_op: f64,
    /// Modeled fixed overhead of one kernel launch, in cycles.
    pub cost_kernel_launch: f64,
    /// Number of real worker threads used by [`crate::run_threaded`].
    pub real_threads: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            cpu_threads: 24,
            gpu_sms: 80,
            gpu_threads_per_block: 128,
            // Scaled-down capacities keep the OOM experiments (paper Figs.
            // 16(b)/18: Longformer exhausts the V100's 32 GB) reproducible
            // with small synthetic workloads.
            gpu_mem_capacity: 64 << 20,
            gpu_shared_capacity: 96 << 10,
            cpu_mem_capacity: 4 << 30,
            l2_size: 4 << 20,
            l2_ways: 16,
            cost_dram: 100.0,
            cost_l2: 10.0,
            cost_scratch: 1.0,
            cost_op: 1.0,
            cost_kernel_launch: 10_000.0,
            real_threads: 4,
        }
    }
}

impl DeviceConfig {
    /// Modeled parallel width of a loop mapped to `scope`.
    pub fn width(&self, scope: ParallelScope) -> usize {
        match scope {
            ParallelScope::Serial => 1,
            ParallelScope::OpenMp => self.cpu_threads,
            ParallelScope::CudaBlockX | ParallelScope::CudaBlockY => self.gpu_sms,
            ParallelScope::CudaThreadX | ParallelScope::CudaThreadY => {
                self.gpu_threads_per_block
            }
        }
    }

    /// Memory capacity of a device.
    pub fn capacity(&self, device: Device) -> usize {
        match device {
            Device::Cpu => self.cpu_mem_capacity,
            Device::Gpu => self.gpu_mem_capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_follow_scopes() {
        let c = DeviceConfig::default();
        assert_eq!(c.width(ParallelScope::Serial), 1);
        assert_eq!(c.width(ParallelScope::OpenMp), c.cpu_threads);
        assert_eq!(c.width(ParallelScope::CudaBlockX), c.gpu_sms);
        assert_eq!(c.width(ParallelScope::CudaThreadY), c.gpu_threads_per_block);
    }

    #[test]
    fn capacities_per_device() {
        let c = DeviceConfig::default();
        assert!(c.capacity(Device::Cpu) > c.capacity(Device::Gpu));
    }
}
