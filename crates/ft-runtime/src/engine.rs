//! A common interface over the execution engines.
//!
//! The interpreter, the threaded mode, the bytecode VM, and the native
//! compiled engine all answer the same question — "run this lowered `Func`
//! on these tensors" — but grew separate entry points, so every harness
//! (bench, conformance, examples) special-cased each backend. The
//! [`ExecutionEngine`] trait is the single seam: one `run` signature
//! returning the interpreter's [`RunResult`], plus trace-sink plumbing so
//! drivers can wire provenance uniformly.

use crate::arena::RunContext;
use crate::bytecode::VmRuntime;
use crate::counters::PerfCounters;
use crate::error::RuntimeError;
use crate::interp::{RunResult, Runtime};
use crate::pool::{PoolStatsSnapshot, WorkerPool};
use crate::threaded::{run_threaded_pooled, run_threaded_traced};
use crate::value::TensorVal;
use ft_ir::Func;
use ft_metrics::Metrics;
use ft_trace::TraceSink;
use std::collections::HashMap;

/// Publish the worker-pool statistics accumulated since `before` into `m`:
/// `pool.regions[.inline]`, `pool.chunks.{submitter,helper}` counters, the
/// monotone `pool.queue.peak_depth` gauge, and the last run's
/// `pool.claim.imbalance_pct` gauge. Shared by every engine that schedules
/// regions on [`WorkerPool::global`].
pub(crate) fn record_pool_delta(m: &Metrics, before: &PoolStatsSnapshot) {
    let d = WorkerPool::global().stats().delta_since(before);
    m.counter("pool.regions").add(d.regions);
    m.counter("pool.regions.inline").add(d.inline_regions);
    m.counter("pool.chunks.submitter").add(d.chunks_submitter);
    m.counter("pool.chunks.helper").add(d.chunks_helper);
    m.gauge("pool.queue.peak_depth")
        .fetch_max(d.queue_peak as i64);
    if let Some(p) = d.imbalance_pct() {
        m.gauge("pool.claim.imbalance_pct").set(p as i64);
    }
}

/// An execution backend for lowered functions.
///
/// Engines differ in *how* they execute (tree-walking, bytecode, real
/// threads, compiled native code) and in what instrumentation they can
/// report — counters are zero for engines that do not model the device —
/// but all satisfy the interpreter's parameter semantics: inputs are
/// read-only, `InOut` params are copied in and returned, `Output` params
/// are zero-initialized.
pub trait ExecutionEngine {
    /// Short stable identifier (`"interp"`, `"threaded"`, `"vm"`,
    /// `"compiled"`), used in reports and trace spans.
    fn name(&self) -> &'static str;

    /// Execute `func` with the given input tensors and size parameters.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] for missing/ill-shaped inputs plus whatever failure
    /// modes the backend adds (e.g. [`RuntimeError::Native`] for the
    /// compiled engine's toolchain errors).
    fn run(
        &self,
        func: &Func,
        inputs: &HashMap<String, TensorVal>,
        sizes: &HashMap<String, i64>,
    ) -> Result<RunResult, RuntimeError>;

    /// As [`run`](ExecutionEngine::run), with a reusable [`RunContext`]:
    /// the engine plans `VarDef` storage (`ft_analysis::MemPlan`), draws
    /// temporary buffers from the context's arena pools, and keeps staging
    /// buffers alive across calls — so a compile-once/run-many loop reaches
    /// zero tensor heap allocations in steady state (observable via the
    /// `mem.arena.*` metrics). Results are bit-identical to `run`. Feed
    /// each result back with [`RunContext::recycle`] to return output
    /// buffers to the context. The default ignores the context.
    fn run_with(
        &self,
        func: &Func,
        inputs: &HashMap<String, TensorVal>,
        sizes: &HashMap<String, i64>,
        ctx: &mut RunContext,
    ) -> Result<RunResult, RuntimeError> {
        let _ = ctx;
        self.run(func, inputs, sizes)
    }

    /// Install (or remove) a trace sink.
    fn set_sink(&mut self, sink: Option<TraceSink>);

    /// The installed trace sink, if any.
    fn sink(&self) -> Option<&TraceSink>;

    /// Install (or remove) a metrics registry. Engines record per-run wall
    /// histograms (`engine.<name>.run_us`), error counters, and whatever
    /// backend-specific telemetry they own (cache counters, kernel dispatch
    /// counts, pool claims). The default does nothing, for backends without
    /// instrumentation.
    fn set_metrics(&mut self, metrics: Option<Metrics>) {
        let _ = metrics;
    }

    /// The installed metrics registry, if any.
    fn metrics(&self) -> Option<&Metrics> {
        None
    }
}

impl ExecutionEngine for Runtime {
    fn name(&self) -> &'static str {
        "interp"
    }

    fn run(
        &self,
        func: &Func,
        inputs: &HashMap<String, TensorVal>,
        sizes: &HashMap<String, i64>,
    ) -> Result<RunResult, RuntimeError> {
        Runtime::run(self, func, inputs, sizes)
    }

    fn run_with(
        &self,
        func: &Func,
        inputs: &HashMap<String, TensorVal>,
        sizes: &HashMap<String, i64>,
        ctx: &mut RunContext,
    ) -> Result<RunResult, RuntimeError> {
        self.run_timed(func, inputs, sizes, Some(ctx))
    }

    fn set_sink(&mut self, sink: Option<TraceSink>) {
        Runtime::set_sink(self, sink)
    }

    fn sink(&self) -> Option<&TraceSink> {
        Runtime::sink(self)
    }

    fn set_metrics(&mut self, metrics: Option<Metrics>) {
        Runtime::set_metrics(self, metrics)
    }

    fn metrics(&self) -> Option<&Metrics> {
        Runtime::metrics(self)
    }
}

impl ExecutionEngine for VmRuntime {
    fn name(&self) -> &'static str {
        "vm"
    }

    fn run(
        &self,
        func: &Func,
        inputs: &HashMap<String, TensorVal>,
        sizes: &HashMap<String, i64>,
    ) -> Result<RunResult, RuntimeError> {
        VmRuntime::run(self, func, inputs, sizes)
    }

    fn run_with(
        &self,
        func: &Func,
        inputs: &HashMap<String, TensorVal>,
        sizes: &HashMap<String, i64>,
        ctx: &mut RunContext,
    ) -> Result<RunResult, RuntimeError> {
        self.run_inner(func, inputs, sizes, Some(ctx))
    }

    fn set_sink(&mut self, sink: Option<TraceSink>) {
        VmRuntime::set_sink(self, sink)
    }

    fn sink(&self) -> Option<&TraceSink> {
        VmRuntime::sink(self)
    }

    fn set_metrics(&mut self, metrics: Option<Metrics>) {
        VmRuntime::set_metrics(self, metrics)
    }

    fn metrics(&self) -> Option<&Metrics> {
        VmRuntime::metrics(self)
    }
}

/// The thread-parallel mode behind the common trait: `OpenMp` loops run on
/// real threads from the persistent worker pool. Counters are not modeled
/// (they come back zero), matching `run_threaded`'s contract.
#[derive(Debug, Clone)]
pub struct ThreadedEngine {
    /// Worker thread count for parallel loops.
    pub threads: usize,
    sink: Option<TraceSink>,
    metrics: Option<Metrics>,
}

impl ThreadedEngine {
    /// An engine running parallel loops on `threads` workers.
    pub fn new(threads: usize) -> ThreadedEngine {
        ThreadedEngine {
            threads: threads.max(1),
            sink: None,
            metrics: None,
        }
    }
}

impl ExecutionEngine for ThreadedEngine {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn run(
        &self,
        func: &Func,
        inputs: &HashMap<String, TensorVal>,
        sizes: &HashMap<String, i64>,
    ) -> Result<RunResult, RuntimeError> {
        let t0 = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let pool_before = self.metrics.as_ref().map(|_| WorkerPool::global().stats());
        let r = run_threaded_traced(func, inputs, sizes, self.threads, self.sink.as_ref());
        if let (Some(m), Some(t0)) = (&self.metrics, t0) {
            m.histogram("engine.threaded.run_us")
                .record_duration_us(t0.elapsed());
            if let Some(before) = &pool_before {
                record_pool_delta(m, before);
            }
            if r.is_err() {
                m.counter("engine.threaded.errors").inc();
            }
        }
        Ok(RunResult {
            outputs: r?,
            counters: PerfCounters::default(),
        })
    }

    fn run_with(
        &self,
        func: &Func,
        inputs: &HashMap<String, TensorVal>,
        sizes: &HashMap<String, i64>,
        ctx: &mut RunContext,
    ) -> Result<RunResult, RuntimeError> {
        let plan = ft_analysis::MemPlan::plan(func, sizes);
        ctx.ensure_bound(func, sizes, &plan)?;
        crate::arena::publish_plan(self.sink.as_ref(), self.metrics.as_ref(), &func.name, &plan);
        let pool = ctx.threaded_pool_for(&plan);
        let t0 = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let pool_before = self.metrics.as_ref().map(|_| WorkerPool::global().stats());
        let r = run_threaded_pooled(
            func,
            inputs,
            sizes,
            self.threads,
            self.sink.as_ref(),
            Some(pool.clone()),
        );
        if let (Some(m), Some(t0)) = (&self.metrics, t0) {
            m.histogram("engine.threaded.run_us")
                .record_duration_us(t0.elapsed());
            if let Some(before) = &pool_before {
                record_pool_delta(m, before);
            }
            crate::arena::flush_stats(m, &mut pool.lock().stats);
            if r.is_err() {
                m.counter("engine.threaded.errors").inc();
            }
        }
        if let Err(e) = &r {
            ctx.poison_on(e);
        }
        Ok(RunResult {
            outputs: r?,
            counters: PerfCounters::default(),
        })
    }

    fn set_sink(&mut self, sink: Option<TraceSink>) {
        self.sink = sink;
    }

    fn sink(&self) -> Option<&TraceSink> {
        self.sink.as_ref()
    }

    fn set_metrics(&mut self, metrics: Option<Metrics>) {
        self.metrics = metrics;
    }

    fn metrics(&self) -> Option<&Metrics> {
        self.metrics.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;
    use ft_ir::{AccessType, DataType};

    fn axpy() -> Func {
        Func::new("axpy")
            .param("x", [var("n")], DataType::F32, AccessType::Input)
            .param("y", [var("n")], DataType::F32, AccessType::InOut)
            .size_param("n")
            .body(for_(
                "i",
                0,
                var("n"),
                store(
                    "y",
                    [var("i")],
                    load("y", [var("i")]) + load("x", [var("i")]) * 2.0f32,
                ),
            ))
    }

    #[test]
    fn engines_agree_through_the_trait() {
        let f = axpy();
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), TensorVal::from_f32(&[4], vec![1.0; 4]));
        inputs.insert("y".to_string(), TensorVal::from_f32(&[4], vec![0.5; 4]));
        let sizes = HashMap::from([("n".to_string(), 4i64)]);
        let engines: Vec<Box<dyn ExecutionEngine>> = vec![
            Box::new(Runtime::new()),
            Box::new(VmRuntime::new()),
            Box::new(ThreadedEngine::new(2)),
        ];
        for e in &engines {
            let r = e.run(&f, &inputs, &sizes).expect("runs");
            assert_eq!(
                r.output("y").to_f64_vec(),
                vec![2.5; 4],
                "engine {}",
                e.name()
            );
        }
    }
}
