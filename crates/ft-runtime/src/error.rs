//! Runtime errors.

use ft_ir::Device;
use std::fmt;

/// Errors surfaced while executing a lowered function.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A tensor allocation exceeded a device's memory capacity (the paper's
    /// "OOM" outcomes in Figs. 16(b) and 18).
    OutOfMemory {
        /// Device that ran out of memory.
        device: Device,
        /// Bytes requested by the failing allocation.
        requested: u64,
        /// Live bytes at the time of the request.
        live: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// A required input tensor was not supplied.
    MissingInput(String),
    /// A supplied tensor's shape does not match the parameter declaration.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Declared shape (after size-parameter substitution).
        expected: Vec<usize>,
        /// Supplied shape.
        actual: Vec<usize>,
    },
    /// A size parameter was not supplied or a shape was not a constant.
    UnresolvedSize(String),
    /// The program referenced an unknown tensor or scalar.
    UndefinedName(String),
    /// An unknown library kernel name in a `LibCall`.
    UnknownKernel(String),
    /// An index evaluated out of the tensor's bounds.
    IndexOutOfBounds {
        /// Tensor name.
        name: String,
        /// The offending multi-index.
        index: Vec<i64>,
        /// The tensor's shape.
        shape: Vec<usize>,
    },
    /// Division (or remainder) by zero.
    DivisionByZero,
    /// The native compiled engine failed to emit, compile, load, or call
    /// the generated shared object (carries the toolchain/loader message).
    Native(String),
    /// A spawned child process (compiler or generated binary) exceeded its
    /// deadline and was killed.
    ChildTimeout {
        /// What was running (e.g. `"cc"` or the binary path).
        what: String,
        /// The deadline that was exceeded, in milliseconds.
        timeout_ms: u64,
    },
    /// A reusable `RunContext` bound to one (program, plan, shapes) was
    /// handed to `run_with` for a different one. Contexts carry buffer
    /// pools packed for a specific memory plan and staging buffers sized
    /// for specific shapes; silently rebuilding them hid real bugs in
    /// serving paths, so the mismatch is now an error. Call
    /// `RunContext::reset` to intentionally repurpose a context.
    ContextMismatch {
        /// Function the context is bound to.
        bound_func: String,
        /// Plan hash the context is bound to.
        bound_plan_hash: u64,
        /// Function of the rejected run.
        requested_func: String,
        /// Plan hash of the rejected run.
        requested_plan_hash: u64,
    },
    /// A finished run's outputs were recycled into a `RunContext` bound to
    /// a program with a different output signature (name/shape set), which
    /// would seed the staging pools with foreign buffers.
    RecycleMismatch {
        /// Function the context is bound to.
        bound_func: String,
        /// The offending output tensor.
        output: String,
        /// The bound program's shape for that output (`None` = the bound
        /// program has no such output).
        expected_shape: Option<Vec<usize>>,
        /// The recycled tensor's shape.
        actual_shape: Vec<usize>,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::OutOfMemory {
                device,
                requested,
                live,
                capacity,
            } => write!(
                f,
                "out of memory on {device}: requested {requested} bytes with {live} live of {capacity} capacity"
            ),
            RuntimeError::MissingInput(n) => write!(f, "missing input tensor `{n}`"),
            RuntimeError::ShapeMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch for `{name}`: expected {expected:?}, got {actual:?}"
            ),
            RuntimeError::UnresolvedSize(n) => write!(f, "unresolved size parameter `{n}`"),
            RuntimeError::UndefinedName(n) => write!(f, "undefined name `{n}`"),
            RuntimeError::UnknownKernel(n) => write!(f, "unknown library kernel `{n}`"),
            RuntimeError::IndexOutOfBounds { name, index, shape } => write!(
                f,
                "index {index:?} out of bounds for `{name}` of shape {shape:?}"
            ),
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::Native(msg) => write!(f, "native engine: {msg}"),
            RuntimeError::ChildTimeout { what, timeout_ms } => {
                write!(f, "child_timeout: `{what}` exceeded {timeout_ms} ms and was killed")
            }
            RuntimeError::ContextMismatch {
                bound_func,
                bound_plan_hash,
                requested_func,
                requested_plan_hash,
            } => write!(
                f,
                "context_mismatch: RunContext is bound to `{bound_func}` \
                 (plan {bound_plan_hash:016x}) but was asked to run \
                 `{requested_func}` (plan {requested_plan_hash:016x}); \
                 call RunContext::reset to repurpose it"
            ),
            RuntimeError::RecycleMismatch {
                bound_func,
                output,
                expected_shape,
                actual_shape,
            } => match expected_shape {
                Some(exp) => write!(
                    f,
                    "recycle_mismatch: output `{output}` of shape {actual_shape:?} does not \
                     match shape {exp:?} of the context's bound program `{bound_func}`"
                ),
                None => write!(
                    f,
                    "recycle_mismatch: the context's bound program `{bound_func}` has no \
                     output `{output}` (recycled tensor shape {actual_shape:?})"
                ),
            },
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RuntimeError::OutOfMemory {
            device: Device::Gpu,
            requested: 100,
            live: 50,
            capacity: 120,
        };
        let s = e.to_string();
        assert!(s.contains("out of memory on gpu"));
        assert!(s.contains("100"));
    }
}
