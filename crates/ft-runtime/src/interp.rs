//! The instrumented interpreter.

use crate::counters::{CacheSim, PerfCounters};
use crate::device::DeviceConfig;
use crate::error::RuntimeError;
use crate::value::{Scalar, TensorVal};
use ft_ir::{AccessType, BinaryOp, Func, ReduceOp, UnaryOp};
use ft_metrics::Metrics;
use ft_trace::{RunProfile, StmtCounters, TraceSink, TRACK_RUNTIME};
use std::collections::HashMap;

/// Result of executing a function.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Output and in-out tensors, by parameter name.
    pub outputs: HashMap<String, TensorVal>,
    /// Execution counters (traffic, FLOPs, kernels, footprint, model time).
    pub counters: PerfCounters,
}

impl RunResult {
    /// Take one output tensor by name.
    ///
    /// # Panics
    ///
    /// Panics if the function has no such output.
    pub fn output(&self, name: &str) -> &TensorVal {
        self.outputs
            .get(name)
            .unwrap_or_else(|| panic!("no output tensor `{name}`"))
    }
}

/// The interpreter with its device model.
#[derive(Debug, Clone, Default)]
pub struct Runtime {
    /// Modeled platform parameters.
    pub config: DeviceConfig,
    sink: Option<TraceSink>,
    metrics: Option<Metrics>,
}

impl Runtime {
    /// A runtime with the default device model.
    pub fn new() -> Runtime {
        Runtime::default()
    }

    /// A runtime with an explicit device model.
    pub fn with_config(config: DeviceConfig) -> Runtime {
        Runtime {
            config,
            ..Runtime::default()
        }
    }

    /// A runtime that reports spans and per-statement profiles into `sink`.
    pub fn with_sink(sink: TraceSink) -> Runtime {
        Runtime {
            sink: Some(sink),
            ..Runtime::default()
        }
    }

    /// Install (or remove) a trace sink. When a sink is present, every
    /// [`Runtime::run`] additionally records a runtime span and a
    /// [`RunProfile`] attributing counter deltas to loops and library calls.
    pub fn set_sink(&mut self, sink: Option<TraceSink>) {
        self.sink = sink;
    }

    /// The installed trace sink, if any.
    pub fn sink(&self) -> Option<&TraceSink> {
        self.sink.as_ref()
    }

    /// Install (or remove) a metrics registry. When present, every run
    /// records `engine.interp.run_us` and per-library-kernel
    /// `engine.interp.kernel_us` wall histograms plus an error counter.
    pub fn set_metrics(&mut self, metrics: Option<Metrics>) {
        self.metrics = metrics;
    }

    /// The installed metrics registry, if any.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.metrics.as_ref()
    }

    /// Execute `func` with the given input tensors and size parameters.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] for missing/ill-shaped inputs, out-of-bounds
    /// accesses, unknown kernels, or device out-of-memory conditions.
    pub fn run(
        &self,
        func: &Func,
        inputs: &HashMap<String, TensorVal>,
        sizes: &HashMap<String, i64>,
    ) -> Result<RunResult, RuntimeError> {
        self.run_timed(func, inputs, sizes, None)
    }

    pub(crate) fn run_timed(
        &self,
        func: &Func,
        inputs: &HashMap<String, TensorVal>,
        sizes: &HashMap<String, i64>,
        mut rctx: Option<&mut crate::arena::RunContext>,
    ) -> Result<RunResult, RuntimeError> {
        let t0 = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let r = self.run_inner(func, inputs, sizes, rctx.as_deref_mut());
        if let (Err(e), Some(c)) = (&r, rctx) {
            c.poison_on(e);
        }
        if let (Some(m), Some(t0)) = (&self.metrics, t0) {
            m.histogram("engine.interp.run_us").record_duration_us(t0.elapsed());
            if r.is_err() {
                m.counter("engine.interp.errors").inc();
            }
        }
        r
    }

    fn run_inner(
        &self,
        func: &Func,
        inputs: &HashMap<String, TensorVal>,
        sizes: &HashMap<String, i64>,
        mut rctx: Option<&mut crate::arena::RunContext>,
    ) -> Result<RunResult, RuntimeError> {
        let mut span = self
            .sink
            .as_ref()
            .map(|s| s.span_on(TRACK_RUNTIME, "runtime", &format!("interp {}", func.name)));
        let compiled = crate::compiled::compile(func)?;
        // Plan VarDef storage: loop-local defs reuse one buffer across
        // iterations within this run (skipping the re-zero where liveness
        // proves write-before-read), and a caller-provided RunContext keeps
        // the pool alive across runs.
        let plan = ft_analysis::MemPlan::plan(func, sizes);
        if let Some(c) = rctx.as_deref_mut() {
            c.ensure_bound(func, sizes, &plan)?;
        }
        crate::arena::publish_plan(
            self.sink.as_ref(),
            self.metrics.as_ref(),
            &func.name,
            &plan,
        );
        let pool = if crate::arena::plan_matches_names(&plan, &compiled.tensor_names) {
            match rctx.as_deref_mut() {
                Some(c) => {
                    c.tensor_pool_for(&plan);
                    c.tensor_pool.take()
                }
                None => Some(crate::arena::TensorPool::new(&plan)),
            }
        } else {
            None
        };
        let mut ctx = crate::compiled::ExecCtx {
            config: &self.config,
            tensors: (0..compiled.n_tensors).map(|_| None).collect(),
            names: &compiled.tensor_names,
            scalars: vec![0; compiled.n_scalars],
            counters: PerfCounters::default(),
            cache: CacheSim::new(self.config.l2_size, self.config.l2_ways),
            next_addr: 0x1000,
            gpu_depth: 0,
            prof: self
                .sink
                .is_some()
                .then(|| vec![StmtCounters::default(); compiled.prof_nodes.len()]),
            prof_cur: 0,
            kernel_us: self
                .metrics
                .as_ref()
                .map(|m| m.histogram("engine.interp.kernel_us")),
            arena: pool,
        };
        let r = bind_and_exec(&compiled, &mut ctx, inputs, sizes);
        // Recover the pool (even on error) so a cross-run context keeps its
        // buffers, and flush its allocation counters.
        if let Some(mut pool) = ctx.arena.take() {
            if let Some(m) = &self.metrics {
                crate::arena::flush_stats(m, &mut pool.stats);
            }
            if let Some(c) = rctx {
                c.tensor_pool = Some(pool);
            }
        }
        let outputs = r?;
        if let (Some(sink), Some(buckets)) = (&self.sink, ctx.prof.take()) {
            let mut nodes = compiled.prof_nodes.clone();
            for (n, c) in nodes.iter_mut().zip(buckets) {
                n.counters = c;
            }
            sink.profile(RunProfile {
                func: func.name.clone(),
                nodes,
            });
            if let Some(sp) = span.as_mut() {
                sp.arg("modeled_cycles", format!("{:.0}", ctx.counters.modeled_cycles));
                sp.arg("flops", ctx.counters.flops);
            }
        }
        Ok(RunResult {
            outputs,
            counters: ctx.counters,
        })
    }
}

/// Bind sizes and parameters, execute the body, and extract outputs — the
/// fallible core of [`Runtime::run`], separated so the caller can recover
/// the arena pool from the [`ExecCtx`](crate::compiled::ExecCtx) whether or
/// not execution succeeded.
fn bind_and_exec(
    compiled: &crate::compiled::Compiled,
    ctx: &mut crate::compiled::ExecCtx<'_>,
    inputs: &HashMap<String, TensorVal>,
    sizes: &HashMap<String, i64>,
) -> Result<HashMap<String, TensorVal>, RuntimeError> {
    for (name, slot) in &compiled.size_slots {
        let v = *sizes
            .get(name)
            .ok_or_else(|| RuntimeError::UnresolvedSize(name.clone()))?;
        ctx.scalars[*slot] = v;
    }
    // Bind parameters.
    for (slot, shape, dtype, mtype, atype) in &compiled.params {
        let shape: Vec<usize> = shape
            .iter()
            .map(|e| {
                let v = ctx.eval(e)?.as_i64();
                usize::try_from(v).map_err(|_| {
                    RuntimeError::UnresolvedSize(compiled.tensor_names[*slot].clone())
                })
            })
            .collect::<Result<_, _>>()?;
        let name = &compiled.tensor_names[*slot];
        let val = match atype {
            AccessType::Input | AccessType::InOut => {
                let t = inputs
                    .get(name)
                    .ok_or_else(|| RuntimeError::MissingInput(name.clone()))?;
                if t.shape() != shape.as_slice() {
                    return Err(RuntimeError::ShapeMismatch {
                        name: name.clone(),
                        expected: shape.clone(),
                        actual: t.shape().to_vec(),
                    });
                }
                t.clone()
            }
            _ => TensorVal::zeros(*dtype, &shape),
        };
        ctx.alloc(*slot, val, *mtype)?;
    }
    ctx.exec(&compiled.body)?;
    let mut outputs = HashMap::new();
    for (slot, _, _, _, atype) in &compiled.params {
        if matches!(atype, AccessType::Output | AccessType::InOut) {
            let name = compiled.tensor_names[*slot].clone();
            let entry = ctx.tensors[*slot].take().expect("params stay live");
            outputs.insert(name, entry.val);
        }
    }
    Ok(outputs)
}

/// Apply a reduction operator to `old` and `v`.
pub fn apply_reduce(op: ReduceOp, old: Scalar, v: Scalar) -> Scalar {
    let float = matches!(old, Scalar::Float(_)) || matches!(v, Scalar::Float(_));
    if float {
        let (a, b) = (old.as_f64(), v.as_f64());
        Scalar::Float(match op {
            ReduceOp::Add => a + b,
            ReduceOp::Mul => a * b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        })
    } else {
        let (a, b) = (old.as_i64(), v.as_i64());
        Scalar::Int(match op {
            ReduceOp::Add => a + b,
            ReduceOp::Mul => a * b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        })
    }
}

pub(crate) fn eval_unary(op: UnaryOp, v: Scalar) -> Result<Scalar, RuntimeError> {
    Ok(match (op, v) {
        (UnaryOp::Neg, Scalar::Int(x)) => Scalar::Int(-x),
        (UnaryOp::Neg, Scalar::Float(x)) => Scalar::Float(-x),
        (UnaryOp::Not, x) => Scalar::Bool(!x.as_bool()),
        (UnaryOp::Abs, Scalar::Int(x)) => Scalar::Int(x.abs()),
        (UnaryOp::Abs, Scalar::Float(x)) => Scalar::Float(x.abs()),
        (UnaryOp::Sign, Scalar::Int(x)) => Scalar::Int(x.signum()),
        (UnaryOp::Sign, Scalar::Float(x)) => Scalar::Float(if x > 0.0 {
            1.0
        } else if x < 0.0 {
            -1.0
        } else {
            0.0
        }),
        (UnaryOp::Sqrt, x) => Scalar::Float(x.as_f64().sqrt()),
        (UnaryOp::Exp, x) => Scalar::Float(x.as_f64().exp()),
        (UnaryOp::Ln, x) => Scalar::Float(x.as_f64().ln()),
        (UnaryOp::Sigmoid, x) => Scalar::Float(1.0 / (1.0 + (-x.as_f64()).exp())),
        (UnaryOp::Tanh, x) => Scalar::Float(x.as_f64().tanh()),
        (op, x) => {
            // Remaining combinations operate on the float value.
            let _ = op;
            x
        }
    })
}

pub(crate) fn eval_binary(op: BinaryOp, a: Scalar, b: Scalar) -> Result<Scalar, RuntimeError> {
    use BinaryOp::*;
    let float = matches!(a, Scalar::Float(_)) || matches!(b, Scalar::Float(_));
    Ok(match op {
        And => Scalar::Bool(a.as_bool() && b.as_bool()),
        Or => Scalar::Bool(a.as_bool() || b.as_bool()),
        Eq | Ne | Lt | Le | Gt | Ge => {
            let (x, y) = (a.as_f64(), b.as_f64());
            Scalar::Bool(match op {
                Eq => x == y,
                Ne => x != y,
                Lt => x < y,
                Le => x <= y,
                Gt => x > y,
                Ge => x >= y,
                _ => unreachable!(),
            })
        }
        _ if float => {
            let (x, y) = (a.as_f64(), b.as_f64());
            Scalar::Float(match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                Mod => x.rem_euclid(y),
                Min => x.min(y),
                Max => x.max(y),
                Pow => x.powf(y),
                _ => unreachable!(),
            })
        }
        _ => {
            let (x, y) = (a.as_i64(), b.as_i64());
            Scalar::Int(match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return Err(RuntimeError::DivisionByZero);
                    }
                    x.div_euclid(y)
                }
                Mod => {
                    if y == 0 {
                        return Err(RuntimeError::DivisionByZero);
                    }
                    x.rem_euclid(y)
                }
                Min => x.min(y),
                Max => x.max(y),
                Pow => x.pow(y.clamp(0, 62) as u32),
                _ => unreachable!(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;
    use ft_ir::idx;

    fn run(func: &Func, inputs: &[(&str, TensorVal)], sizes: &[(&str, i64)]) -> RunResult {
        let inputs: HashMap<String, TensorVal> = inputs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        let sizes: HashMap<String, i64> = sizes.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        Runtime::new().run(func, &inputs, &sizes).expect("run ok")
    }

    #[test]
    fn elementwise_scale() {
        let f = Func::new("scale")
            .param("x", [var("n")], DataType::F32, AccessType::Input)
            .param("y", [var("n")], DataType::F32, AccessType::Output)
            .size_param("n")
            .body(for_(
                "i",
                0,
                var("n"),
                store("y", [var("i")], load("x", [var("i")]) * 2.0f32 + 1.0f32),
            ));
        let x = TensorVal::from_f32(&[4], vec![0.0, 1.0, 2.0, 3.0]);
        let r = run(&f, &[("x", x)], &[("n", 4)]);
        assert_eq!(r.output("y").to_f64_vec(), vec![1.0, 3.0, 5.0, 7.0]);
        assert!(r.counters.flops >= 8);
    }

    #[test]
    fn reduction_and_guards() {
        // y[0] = sum of x[i] for even i
        let f = Func::new("sum_even")
            .param("x", [var("n")], DataType::F64, AccessType::Input)
            .param("y", [1], DataType::F64, AccessType::Output)
            .size_param("n")
            .body(for_(
                "i",
                0,
                var("n"),
                if_(
                    var("i").rem(2).eq(0),
                    reduce("y", [0], ReduceOp::Add, load("x", [var("i")])),
                ),
            ));
        let x = TensorVal::from_f64(&[5], vec![1.0, 10.0, 2.0, 10.0, 3.0]);
        let r = run(&f, &[("x", x)], &[("n", 5)]);
        assert_eq!(r.output("y").to_f64_vec(), vec![6.0]);
    }

    #[test]
    fn local_var_scoping_and_footprint() {
        // Allocates a 1KB local inside a loop; peak live must count it once.
        let f = Func::new("f")
            .param("y", [1], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                4,
                var_def(
                    "t",
                    [256],
                    DataType::F32,
                    MemType::CpuHeap,
                    block([
                        store("t", [0], 1.0f32),
                        reduce("y", [0], ReduceOp::Add, load("t", [0])),
                    ]),
                ),
            ));
        let r = run(&f, &[], &[]);
        assert_eq!(r.output("y").to_f64_vec(), vec![4.0]);
        // y (4B) + t (1024B) live at once.
        assert_eq!(r.counters.peak_bytes["cpu"], 4 + 1024);
    }

    #[test]
    fn gpu_kernel_launch_counting() {
        use ft_ir::ForProperty;
        // Two separate GPU-parallel loops = two kernels; nested gpu loops
        // inside the first count as the same kernel.
        let kernel1 = for_with(
            "b",
            0,
            4,
            ForProperty::parallel(ParallelScope::CudaBlockX),
            for_with(
                "t",
                0,
                8,
                ForProperty::parallel(ParallelScope::CudaThreadX),
                store("y", [var("b") * 8 + var("t")], 1.0f32),
            ),
        );
        let kernel2 = for_with(
            "b2",
            0,
            32,
            ForProperty::parallel(ParallelScope::CudaBlockX),
            store("y", [var("b2")], 2.0f32),
        );
        let f = Func::new("f")
            .param_on("y", [32], DataType::F32, MemType::GpuGlobal, AccessType::Output)
            .body(block([kernel1, kernel2]));
        let r = run(&f, &[], &[]);
        assert_eq!(r.counters.kernel_launches, 2);
        assert_eq!(r.output("y").to_f64_vec(), vec![2.0; 32]);
    }

    #[test]
    fn oom_is_reported() {
        let config = DeviceConfig {
            gpu_mem_capacity: 1024,
            ..Default::default()
        };
        let f = Func::new("f")
            .param_on("y", [1024], DataType::F32, MemType::GpuGlobal, AccessType::Output)
            .body(store("y", [0], 1.0f32));
        let err = Runtime::with_config(config)
            .run(&f, &HashMap::new(), &HashMap::new())
            .unwrap_err();
        assert!(matches!(err, RuntimeError::OutOfMemory { .. }));
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let f = Func::new("f")
            .param("y", [2], DataType::F32, AccessType::Output)
            .body(store("y", [5], 1.0f32));
        let err = Runtime::new()
            .run(&f, &HashMap::new(), &HashMap::new())
            .unwrap_err();
        assert!(matches!(err, RuntimeError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn parallel_loop_reduces_modeled_time() {
        let body = |para: bool| {
            let prop = if para {
                ft_ir::ForProperty::parallel(ParallelScope::OpenMp)
            } else {
                ft_ir::ForProperty::serial()
            };
            Func::new("f")
                .param("y", [1024], DataType::F32, AccessType::Output)
                .body(for_with(
                    "i",
                    0,
                    1024,
                    prop,
                    store("y", [var("i")], load("y", [var("i")]) + 1.0f32),
                ))
        };
        let serial = run(&body(false), &[], &[]);
        let parallel = run(&body(true), &[], &[]);
        assert!(
            parallel.counters.modeled_cycles < serial.counters.modeled_cycles / 4.0,
            "parallel {} vs serial {}",
            parallel.counters.modeled_cycles,
            serial.counters.modeled_cycles
        );
    }

    #[test]
    fn cache_model_separates_dram_and_l2() {
        // Streaming 64KB twice: second pass hits in the 4MB L2.
        let f = Func::new("f")
            .param("x", [16384], DataType::F32, AccessType::Input)
            .param("y", [1], DataType::F32, AccessType::Output)
            .body(block([
                for_("i", 0, 16384, reduce("y", [0], ReduceOp::Add, load("x", [var("i")]))),
                for_("i2", 0, 16384, reduce("y", [0], ReduceOp::Add, load("x", [var("i2")]))),
            ]));
        let x = TensorVal::from_f32(&[16384], vec![1.0; 16384]);
        let r = run(&f, &[("x", x)], &[]);
        assert_eq!(r.output("y").to_f64_vec(), vec![32768.0]);
        assert!(r.counters.l2_bytes > 0);
        assert!(r.counters.dram_bytes > 0);
        // The second pass should hit: L2 traffic exceeds DRAM traffic for x.
        assert!(r.counters.l2_bytes > r.counters.dram_bytes / 2);
    }

    #[test]
    fn missing_inputs_and_sizes_error() {
        let f = Func::new("f")
            .param("x", [var("n")], DataType::F32, AccessType::Input)
            .param("y", [var("n")], DataType::F32, AccessType::Output)
            .size_param("n")
            .body(empty());
        let err = Runtime::new().run(&f, &HashMap::new(), &HashMap::new());
        assert!(matches!(err, Err(RuntimeError::UnresolvedSize(_))));
        let sizes: HashMap<String, i64> = [("n".to_string(), 4i64)].into_iter().collect();
        let err = Runtime::new().run(&f, &HashMap::new(), &sizes);
        assert!(matches!(err, Err(RuntimeError::MissingInput(_))));
    }

    #[test]
    fn shadowed_names_resolve_lexically() {
        // Two sibling VarDefs named `t` and a shadowed loop iterator: the
        // slot-indexed lowering must bind each use to its nearest definition.
        let f = Func::new("f")
            .param("y", [4], DataType::F32, AccessType::Output)
            .body(block([
                var_def(
                    "t",
                    [1],
                    DataType::F32,
                    MemType::CpuStack,
                    block([
                        store("t", [0], 10.0f32),
                        var_def(
                            "t",
                            [1],
                            DataType::F32,
                            MemType::CpuStack,
                            block([
                                store("t", [0], 20.0f32),
                                store("y", [0], load("t", [0])), // inner t = 20
                            ]),
                        ),
                        store("y", [1], load("t", [0])), // outer t = 10
                    ]),
                ),
                for_(
                    "i",
                    0,
                    1,
                    for_("i", 2, 3, store("y", [2], Expr::cast(DataType::F32, var("i")))),
                ),
            ]));
        let r = run(&f, &[], &[]);
        assert_eq!(r.output("y").to_f64_vec()[..3], [20.0, 10.0, 2.0]);
    }

    #[test]
    fn vardef_reentry_gets_fresh_zeroed_tensor() {
        // A VarDef inside a loop is a fresh zeroed incarnation per iteration.
        let f = Func::new("f")
            .param("y", [3], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                3,
                var_def(
                    "t",
                    ft_ir::builder::scalar(),
                    DataType::F32,
                    MemType::CpuStack,
                    block([
                        reduce("t", scalar(), ReduceOp::Add, 1.0f32),
                        store("y", [var("i")], load("t", scalar())),
                    ]),
                ),
            ));
        let r = run(&f, &[], &[]);
        assert_eq!(r.output("y").to_f64_vec(), vec![1.0; 3]);
    }

    #[test]
    fn conditionally_written_vardef_is_still_zeroed_per_reentry() {
        // The zero-elision analysis may skip the per-iteration zero-fill
        // only when the def is provably written before read on *every*
        // path. Here the first write is conditional (`i == 0` only), so the
        // pooled buffer must be re-zeroed on each re-entry — otherwise
        // iterations 1 and 2 would read iteration 0's stale 5.0.
        let f = Func::new("f")
            .param("y", [3], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                3,
                var_def(
                    "t",
                    ft_ir::builder::scalar(),
                    DataType::F32,
                    MemType::CpuHeap,
                    block([
                        if_(var("i").eq(0), store("t", scalar(), 5.0f32)),
                        store("y", [var("i")], load("t", scalar())),
                    ]),
                ),
            ));
        let want = vec![5.0, 0.0, 0.0];
        let r = run(&f, &[], &[]);
        assert_eq!(r.output("y").to_f64_vec(), want);
        // And through a reused RunContext, where iteration-to-iteration AND
        // run-to-run reuse both hand back dirty buffers.
        let rt = Runtime::new();
        let mut ctx = crate::arena::RunContext::new();
        for _ in 0..2 {
            let r = rt
                .run_timed(&f, &HashMap::new(), &HashMap::new(), Some(&mut ctx))
                .unwrap();
            assert_eq!(r.output("y").to_f64_vec(), want);
            ctx.recycle(r).unwrap();
        }
    }

    #[test]
    fn profile_sums_match_whole_run_counters() {
        // Nested loops + straight-line code outside any loop: exclusive
        // per-node attribution must sum exactly to the run's aggregates.
        let f = Func::new("tiled")
            .param("x", [64, 64], DataType::F32, AccessType::Input)
            .param("y", [64], DataType::F32, AccessType::Output)
            .body(block([
                store("y", [0], 1.0f32),
                for_(
                    "i",
                    0,
                    64,
                    for_(
                        "j",
                        0,
                        64,
                        reduce("y", [var("i")], ReduceOp::Add, load("x", [var("i"), var("j")])),
                    ),
                ),
            ]));
        let x = TensorVal::from_f32(&[64, 64], vec![1.0; 64 * 64]);
        let inputs: HashMap<String, TensorVal> = [("x".to_string(), x)].into_iter().collect();
        let sink = ft_trace::TraceSink::new();
        let r = Runtime::with_sink(sink.clone())
            .run(&f, &inputs, &HashMap::new())
            .unwrap();

        let profiles = sink.profiles();
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        // Root + two loops, in preorder, with parents wired up.
        assert_eq!(p.nodes.len(), 3);
        assert!(p.nodes[0].stmt.is_none());
        assert_eq!(p.nodes[1].desc, "for i");
        assert_eq!(p.nodes[1].parent, Some(0));
        assert_eq!(p.nodes[2].desc, "for j");
        assert_eq!(p.nodes[2].parent, Some(1));
        assert_eq!(p.nodes[1].counters.trips, 64);
        assert_eq!(p.nodes[2].counters.trips, 64 * 64);

        // Exclusive sums == whole-run counters, exactly.
        let t = p.totals();
        assert_eq!(t.flops, r.counters.flops);
        assert_eq!(t.int_ops, r.counters.int_ops);
        assert_eq!(t.dram_bytes, r.counters.dram_bytes);
        assert_eq!(t.l2_bytes, r.counters.l2_bytes);
        assert_eq!(t.heap_bytes, r.counters.heap_bytes);
        assert_eq!(t.scratch_bytes, r.counters.scratch_bytes);
        // The store outside the loops lands on the root, not a loop node.
        assert!(p.nodes[0].counters.l2_bytes > 0);
        // The inner loop dominates the traffic.
        assert!(p.nodes[2].counters.l2_bytes > p.nodes[1].counters.l2_bytes);
        // A runtime span was recorded too.
        assert!(sink.events().iter().any(|e| e.name.starts_with("interp")));
    }

    #[test]
    fn no_sink_records_no_profile() {
        let f = Func::new("f")
            .param("y", [8], DataType::F32, AccessType::Output)
            .body(for_("i", 0, 8, store("y", [var("i")], 1.0f32)));
        let r = Runtime::new().run(&f, &HashMap::new(), &HashMap::new()).unwrap();
        assert_eq!(r.output("y").to_f64_vec(), vec![1.0; 8]);
    }

    #[test]
    fn shape_validation() {
        let f = Func::new("f")
            .param("x", [4], DataType::F32, AccessType::Input)
            .param("y", [4], DataType::F32, AccessType::Output)
            .body(store("y", [0], load("x", idx![0])));
        let x = TensorVal::from_f32(&[3], vec![1.0; 3]);
        let inputs: HashMap<String, TensorVal> = [("x".to_string(), x)].into_iter().collect();
        let err = Runtime::new().run(&f, &inputs, &HashMap::new());
        assert!(matches!(err, Err(RuntimeError::ShapeMismatch { .. })));
    }

    fn fill(name: &str, n: i64, v: f32) -> Func {
        Func::new(name)
            .param("y", [n], DataType::F32, AccessType::Output)
            .body(for_("i", 0, n, store("y", [var("i")], v)))
    }

    #[test]
    fn context_binds_to_first_program_and_rejects_others() {
        let a = fill("a", 8, 1.0);
        let b = fill("b", 16, 2.0);
        let rt = Runtime::new();
        let mut ctx = crate::arena::RunContext::new();
        let none: HashMap<String, TensorVal> = HashMap::new();
        let nosz: HashMap<String, i64> = HashMap::new();
        rt.run_timed(&a, &none, &nosz, Some(&mut ctx)).unwrap();
        assert_eq!(ctx.bound_func(), Some("a"));
        let err = rt
            .run_timed(&b, &none, &nosz, Some(&mut ctx))
            .unwrap_err();
        assert!(
            matches!(
                &err,
                RuntimeError::ContextMismatch { bound_func, requested_func, .. }
                    if bound_func == "a" && requested_func == "b"
            ),
            "want ContextMismatch(a, b), got {err}"
        );
        // The mismatch does not poison the context — its own program still runs.
        assert!(!ctx.is_poisoned());
        rt.run_timed(&a, &none, &nosz, Some(&mut ctx)).unwrap();
        // reset() repurposes it intentionally.
        ctx.reset();
        let r = rt.run_timed(&b, &none, &nosz, Some(&mut ctx)).unwrap();
        assert_eq!(r.output("y").to_f64_vec(), vec![2.0; 16]);
        assert_eq!(ctx.bound_func(), Some("b"));
    }

    #[test]
    fn same_program_different_sizes_is_a_mismatch() {
        let f = Func::new("scale")
            .param("y", [var("n")], DataType::F32, AccessType::Output)
            .size_param("n")
            .body(for_("i", 0, var("n"), store("y", [var("i")], 1.0f32)));
        let rt = Runtime::new();
        let mut ctx = crate::arena::RunContext::new();
        let none: HashMap<String, TensorVal> = HashMap::new();
        let s8: HashMap<String, i64> = [("n".to_string(), 8)].into_iter().collect();
        let s9: HashMap<String, i64> = [("n".to_string(), 9)].into_iter().collect();
        rt.run_timed(&f, &none, &s8, Some(&mut ctx)).unwrap();
        // Same plan hash is possible for size-independent plans, but the
        // shape signature still differs — staging buffers are sized for n=8.
        let err = rt.run_timed(&f, &none, &s9, Some(&mut ctx));
        assert!(matches!(err, Err(RuntimeError::ContextMismatch { .. })));
        rt.run_timed(&f, &none, &s8, Some(&mut ctx)).unwrap();
    }

    #[test]
    fn recycle_rejects_outputs_of_a_foreign_program() {
        let a = fill("a", 8, 1.0);
        let b = fill("b", 16, 2.0);
        let rt = Runtime::new();
        let mut ctx = crate::arena::RunContext::new();
        let none: HashMap<String, TensorVal> = HashMap::new();
        let nosz: HashMap<String, i64> = HashMap::new();
        let ra = rt.run_timed(&a, &none, &nosz, Some(&mut ctx)).unwrap();
        let rb = rt.run(&b, &none, &nosz).unwrap();
        // b's `y` is [16]; the context is bound to a's `y` of [8].
        let err = ctx.recycle(rb).unwrap_err();
        assert!(
            matches!(
                &err,
                RuntimeError::RecycleMismatch { bound_func, output, expected_shape, actual_shape }
                    if bound_func == "a"
                        && output == "y"
                        && *expected_shape == Some(vec![8])
                        && *actual_shape == vec![16]
            ),
            "want RecycleMismatch, got {err}"
        );
        // The bound program's own outputs recycle fine.
        ctx.recycle(ra).unwrap();
    }

    #[test]
    fn errored_run_poisons_the_context_and_the_next_run_resets_it() {
        // x / (i - 2) divides by zero at i == 2, killing the run mid-way.
        let bad = Func::new("bad")
            .param("x", [8], DataType::I64, AccessType::Input)
            .param("y", [8], DataType::I64, AccessType::Output)
            .body(for_(
                "i",
                0,
                8,
                store("y", [var("i")], load("x", [var("i")]) / (var("i") - 2)),
            ));
        let x = TensorVal::from_i64(&[8], (1..9).collect());
        let inputs: HashMap<String, TensorVal> = [("x".to_string(), x)].into_iter().collect();
        let rt = Runtime::new();
        let mut ctx = crate::arena::RunContext::new();
        let err = rt
            .run_timed(&bad, &inputs, &HashMap::new(), Some(&mut ctx))
            .unwrap_err();
        assert_eq!(err, RuntimeError::DivisionByZero);
        assert!(ctx.is_poisoned());
        // The next run — even of a *different* program — heals the context
        // with a counted full reset instead of reusing suspect storage.
        let good = fill("good", 4, 3.0);
        let none: HashMap<String, TensorVal> = HashMap::new();
        let nosz: HashMap<String, i64> = HashMap::new();
        let r = rt.run_timed(&good, &none, &nosz, Some(&mut ctx)).unwrap();
        assert_eq!(r.output("y").to_f64_vec(), vec![3.0; 4]);
        assert!(!ctx.is_poisoned());
        assert_eq!(ctx.bound_func(), Some("good"));
        assert_eq!(ctx.stats.poison_resets, 1);
        ctx.recycle(r).unwrap();
    }
}
