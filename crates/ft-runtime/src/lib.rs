//! # ft-runtime — the instrumented tensor runtime
//!
//! The FreeTensor paper evaluates generated OpenMP/CUDA code on a 24-core
//! Xeon and a V100. This repository substitutes that testbed (per the
//! substitution rule documented in `DESIGN.md`) with an *instrumented
//! interpreter* over the lowered IR that measures exactly the quantities the
//! paper's analysis (Fig. 17) attributes the speedups to:
//!
//! * **kernel launches** — entries into outermost GPU-parallel loop nests;
//! * **DRAM and L2 traffic** — every heap/global access is routed through a
//!   set-associative cache simulator ([`counters::CacheSim`]);
//! * **FLOPs** — floating-point operations actually evaluated;
//! * **memory footprint** — live bytes per device, with out-of-memory errors
//!   when a device's capacity is exceeded (reproducing the OOM entries of
//!   Figs. 16(b)/18);
//! * **modeled time** — an analytic cost in cycle units where parallel loop
//!   bodies are divided by the mapped hardware width, so CPU/GPU schedules
//!   can be compared on a single-core host.
//!
//! Four execution engines are provided behind the common
//! [`ExecutionEngine`] trait: the deterministic instrumented interpreter
//! ([`Runtime::run`]) — the *specification* all others are diffed against;
//! a flat bytecode VM ([`VmRuntime`], [`bytecode`]) whose uninstrumented
//! fast mode is a wall-clock execution path and whose instrumented mode
//! reproduces the interpreter's counters bit-for-bit; a genuinely
//! thread-parallel mode ([`run_threaded`], [`ThreadedEngine`]) that
//! executes `OpenMp` loops on real threads (the persistent [`pool`]
//! workers) with mutex-protected atomic reductions, demonstrating that
//! legality-checked parallel schedules are actually data-race free; and
//! the native compiled engine ([`CompiledEngine`], [`native`]) that emits
//! C with `ft-codegen`, compiles it with the host `cc` into a
//! content-addressed shared-object cache, and calls it in-process —
//! the paper's actual execution model (§4.3).

pub mod arena;
pub mod bytecode;
pub(crate) mod compiled;
pub mod counters;
pub mod device;
pub mod engine;
pub mod error;
pub mod interp;
pub mod libkernel;
pub mod native;
pub mod pool;
pub mod process;
pub mod threaded;
pub mod value;

pub use arena::{ArenaStats, RunContext};
pub use bytecode::{run_vm, VmMode, VmRuntime};
pub use counters::{CacheGeometryError, CacheSim, PerfCounters, ScheduleScore, SCORE_REL_EPS};
pub use device::DeviceConfig;
pub use engine::{ExecutionEngine, ThreadedEngine};
pub use error::RuntimeError;
pub use interp::{RunResult, Runtime};
pub use native::{cc_available, CompiledEngine};
pub use pool::{PoolStatsSnapshot, WorkerPool};
pub use process::{output_with_timeout, TimedOutput};
pub use threaded::{run_threaded, run_threaded_traced};
pub use value::{Scalar, TensorVal};
