//! Hand-optimized "vendor library" kernels backing the `as_lib`
//! transformation (paper Table 1, "Others").
//!
//! A `LibCall` bypasses the interpreter's per-element instrumentation: like a
//! cuBLAS/MKL call, it executes natively (a cache-blocked Rust matmul) and
//! charges the counters in bulk with the traffic an optimized kernel would
//! generate — one streaming pass over each operand — plus FLOPs at a modeled
//! vendor-library efficiency.

use crate::compiled::ExecCtx;
use crate::error::RuntimeError;
use crate::value::{Scalar, TensorVal};

/// Efficiency factor of a vendor kernel relative to naive per-element
/// interpretation (used by the time model).
pub const LIB_EFFICIENCY: f64 = 16.0;

pub(crate) fn dispatch_slots(
    ctx: &mut ExecCtx<'_>,
    kernel: &str,
    inputs: &[usize],
    outputs: &[usize],
    attrs: &[i64],
) -> Result<(), RuntimeError> {
    match kernel {
        "matmul" => matmul(ctx, inputs, outputs, attrs),
        other => Err(RuntimeError::UnknownKernel(other.to_string())),
    }
}

/// `C[m,n] += A[m,k] * B[k,n]` — blocked, f64 accumulate.
fn matmul(
    ctx: &mut ExecCtx<'_>,
    inputs: &[usize],
    outputs: &[usize],
    attrs: &[i64],
) -> Result<(), RuntimeError> {
    let [m, k, n] = attrs else {
        return Err(RuntimeError::UnknownKernel(
            "matmul expects attrs [m, k, n]".to_string(),
        ));
    };
    let (m, k, n) = (*m as usize, *k as usize, *n as usize);
    let a = ctx.tensor(inputs[0])?.clone();
    let b = ctx.tensor(inputs[1])?.clone();
    let mut c = ctx.tensor(outputs[0])?.clone();
    if a.numel() != m * k || b.numel() != k * n || c.numel() != m * n {
        return Err(RuntimeError::ShapeMismatch {
            name: ctx.names[outputs[0]].to_string(),
            expected: vec![m, n],
            actual: c.shape().to_vec(),
        });
    }
    matmul_blocked(&a, &b, &mut c, m, k, n);
    ctx.replace_tensor(outputs[0], c)?;
    // Bulk accounting: one streaming pass per operand, FLOPs at library
    // efficiency for the time model.
    let elem = 4u64; // f32-equivalent traffic
    let bytes = ((m * k + k * n + 2 * m * n) as u64) * elem;
    let flops = (2 * m * k * n) as u64;
    ctx.charge_bulk(bytes, flops, flops as f64 / LIB_EFFICIENCY);
    Ok(())
}

/// The blocked compute kernel itself, shared verbatim by the interpreter's
/// `LibCall` dispatch and the bytecode VM so both produce bit-identical
/// results (partial sums round through the output dtype on every update, so
/// the iteration order and the per-update `set_flat` are semantically
/// significant).
pub(crate) fn matmul_blocked(
    a: &TensorVal,
    b: &TensorVal,
    c: &mut TensorVal,
    m: usize,
    k: usize,
    n: usize,
) {
    const BLK: usize = 32;
    for i0 in (0..m).step_by(BLK) {
        for k0 in (0..k).step_by(BLK) {
            for j0 in (0..n).step_by(BLK) {
                for i in i0..(i0 + BLK).min(m) {
                    for kk in k0..(k0 + BLK).min(k) {
                        let av = a.get_flat(i * k + kk).as_f64();
                        for j in j0..(j0 + BLK).min(n) {
                            let cv = c.get_flat(i * n + j).as_f64();
                            c.set_flat(
                                i * n + j,
                                Scalar::Float(cv + av * b.get_flat(kk * n + j).as_f64()),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Reference (unblocked) matmul used by tests and the operator baseline.
pub fn matmul_reference(a: &TensorVal, b: &TensorVal, m: usize, k: usize, n: usize) -> TensorVal {
    let mut c = TensorVal::zeros(ft_ir::DataType::F32, &[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for kk in 0..k {
                acc += a.get_flat(i * k + kk).as_f64() * b.get_flat(kk * n + j).as_f64();
            }
            c.set_flat(i * n + j, Scalar::Float(acc));
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Runtime;
    use ft_ir::prelude::*;
    use ft_ir::{DataType, Stmt, StmtKind};
    use std::collections::HashMap;

    #[test]
    fn libcall_matmul_matches_reference() {
        let (m, k, n) = (5usize, 7usize, 3usize);
        let a = TensorVal::from_f32(&[m, k], (0..m * k).map(|x| x as f32 * 0.5).collect());
        let b = TensorVal::from_f32(&[k, n], (0..k * n).map(|x| (x as f32).sin()).collect());
        let f = Func::new("mm")
            .param("A", [m, k], DataType::F32, AccessType::Input)
            .param("B", [k, n], DataType::F32, AccessType::Input)
            .param("C", [m, n], DataType::F32, AccessType::Output)
            .body(Stmt::new(StmtKind::LibCall {
                kernel: "matmul".to_string(),
                inputs: vec!["A".to_string(), "B".to_string()],
                outputs: vec!["C".to_string()],
                attrs: vec![m as i64, k as i64, n as i64],
            }));
        let inputs: HashMap<String, TensorVal> = [
            ("A".to_string(), a.clone()),
            ("B".to_string(), b.clone()),
        ]
        .into_iter()
        .collect();
        let r = Runtime::new().run(&f, &inputs, &HashMap::new()).unwrap();
        let reference = matmul_reference(&a, &b, m, k, n);
        assert!(r.output("C").allclose(&reference, 1e-4));
        assert_eq!(r.counters.flops, (2 * m * k * n) as u64);
    }

    #[test]
    fn unknown_kernel_errors() {
        let f = Func::new("f").body(Stmt::new(StmtKind::LibCall {
            kernel: "fft".to_string(),
            inputs: vec![],
            outputs: vec![],
            attrs: vec![],
        }));
        let err = Runtime::new().run(&f, &HashMap::new(), &HashMap::new());
        assert!(matches!(
            err,
            Err(crate::RuntimeError::UnknownKernel(_))
        ));
    }
}
