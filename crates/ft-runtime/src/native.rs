//! The native compiled execution engine.
//!
//! This is the paper's actual execution model (§4.3): emit C for the
//! lowered function with `ft-codegen`, compile it with the host `cc` into a
//! shared object, `dlopen` it, and call it in-process on the caller's
//! tensor buffers — no interpreter dispatch, no child-process
//! stdout-parsing protocol. Compilation cost is paid once per distinct
//! (source, flags) pair: artifacts live in a content-addressed on-disk
//! cache (`target/ft-cache/<hash>.{c,so}`), and loaded objects are
//! additionally memoized in-process, so repeat traffic — autoschedule
//! search loops, conformance sweeps, warm benchmarks — spawns zero
//! compiler processes.
//!
//! Cache key: FNV-1a over the complete emitted translation unit (which
//! already embodies the program *and* its schedule — scheduling rewrites
//! the IR that `emit_c` prints), the compiler flag string, and an ABI
//! version bumped whenever the entry-point convention changes.
//!
//! Numerics: generated C computes `float` expressions in single precision,
//! while the interpreter widens to `f64` and rounds on store, so results
//! agree to rounding error, not bit-for-bit — the conformance harness
//! compares this backend under its usual tolerances. `-ffp-contract=off`
//! keeps the compiler from fusing multiply-adds so the difference stays
//! bounded by that rounding story.

use crate::counters::PerfCounters;
use crate::engine::ExecutionEngine;
use crate::error::RuntimeError;
use crate::interp::RunResult;
use crate::process::output_with_timeout;
use crate::value::TensorVal;
use crate::arena::RunContext;
use ft_analysis::MemPlan;
use ft_codegen::{c_symbols, emit_c_planned, ProfSite};
use ft_ir::{AccessType, BinaryOp, DataType, Expr, Func};
use ft_metrics::Metrics;
use ft_trace::{Decision, ProfileNode, RunProfile, StmtCounters, TraceSink, Verdict, TRACK_RUNTIME};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::ffi::c_void;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Bump when the generated entry-point convention changes, so stale cached
/// `.so` files from older layouts can never be loaded. v2: `ft_entry` gained
/// a trailing `uint64_t *prof` parameter (NULL when profiling is off).
/// v3: an `unsigned char *arena` parameter between `sizes` and `prof` — the
/// preallocated backing block for memory-planned `VarDef`s (NULL makes the
/// kernel malloc/free its own).
const ABI_VERSION: u32 = 3;

/// Entry-point signature of every generated shared object:
/// `void ft_entry(void **params, const int64_t *sizes, unsigned char *arena,
/// uint64_t *prof)` with tensor parameters in declaration order followed by
/// size parameters in declaration order. `arena` backs planned local defs
/// (NULL = kernel-owned). `prof` is only read by profiled builds (slot `k`
/// accumulates wall nanoseconds for outermost loop nest `k`); unprofiled
/// builds ignore it and callers pass NULL.
type EntryFn = unsafe extern "C" fn(*mut *mut c_void, *const i64, *mut c_void, *mut u64);

/// Whether a host C compiler is available (memoized per process).
pub fn cc_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        Command::new("cc")
            .arg("--version")
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false)
    })
}

/// A loaded kernel: the shared object plus its resolved entry point. The
/// library handle is held for as long as the function pointer may be
/// called.
struct LoadedKernel {
    entry: EntryFn,
    /// Profiling site table of a profiled build (slot `k` of the prof array
    /// maps to `sites[k]`); empty for unprofiled builds.
    sites: Vec<ProfSite>,
    _lib: libloading::Library,
}

/// Shared state behind [`CompiledEngine`] clones: the in-process memo of
/// loaded kernels.
#[derive(Default)]
struct EngineState {
    loaded: Mutex<HashMap<u64, Arc<LoadedKernel>>>,
}

/// The compiled execution engine. Cheap to clone (clones share the loaded
/// kernel memo); construction does not touch the filesystem — everything
/// is lazy until the first [`ExecutionEngine::run`].
#[derive(Clone)]
pub struct CompiledEngine {
    cache_dir: PathBuf,
    cc_timeout: Duration,
    sink: Option<TraceSink>,
    metrics: Option<Metrics>,
    /// Emit per-loop-nest timing hooks into generated C and publish a
    /// [`RunProfile`] per run. Defaults from the `FT_PROFILE` env var.
    profile: bool,
    state: Arc<EngineState>,
}

impl std::fmt::Debug for CompiledEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledEngine")
            .field("cache_dir", &self.cache_dir)
            .finish_non_exhaustive()
    }
}

impl Default for CompiledEngine {
    fn default() -> CompiledEngine {
        CompiledEngine::new()
    }
}

/// Resolve the artifact cache directory: `FT_CACHE_DIR` wins, otherwise
/// the nearest ancestor `target/` directory (so unit tests running from
/// crate subdirectories share the workspace cache), otherwise a temp-dir
/// fallback.
fn default_cache_dir() -> PathBuf {
    if let Ok(d) = std::env::var("FT_CACHE_DIR") {
        if !d.is_empty() {
            return PathBuf::from(d);
        }
    }
    if let Ok(mut dir) = std::env::current_dir() {
        loop {
            let t = dir.join("target");
            if t.is_dir() {
                return t.join("ft-cache");
            }
            if !dir.pop() {
                break;
            }
        }
    }
    std::env::temp_dir().join("ft-cache")
}

/// Whether the `FT_PROFILE` env var asks for per-loop-nest profiling
/// (set, non-empty, and not `"0"`).
fn profile_env_enabled() -> bool {
    std::env::var("FT_PROFILE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Total bytes of all regular files in the artifact cache directory.
fn cache_size_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.flatten()
                .filter_map(|e| e.metadata().ok())
                .filter(|m| m.is_file())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// 64-bit FNV-1a — stable across processes and Rust versions, unlike
/// `DefaultHasher`, so on-disk keys survive toolchain bumps.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One in-flight compilation of a cache key. The first requester (the
/// *leader*) compiles; everyone else parks on the condvar and re-checks the
/// on-disk artifact once the leader finishes.
#[derive(Default)]
struct Flight {
    done: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

/// Process-wide singleflight table: at most one thread per cache key is
/// compiling at any moment, regardless of how many `CompiledEngine` values
/// (each with its own in-memory memo) exist. Entries live only while a
/// compile is in flight.
fn flights() -> &'static Mutex<HashMap<u64, Arc<Flight>>> {
    static FLIGHTS: OnceLock<Mutex<HashMap<u64, Arc<Flight>>>> = OnceLock::new();
    FLIGHTS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Take an exclusive advisory lock on `file`, blocking until granted. The
/// lock is released when the file handle is dropped (and by the kernel if
/// the process dies — unlike a lock *file*, it cannot leak and wedge the
/// cache). This is the cross-process leg of compile deduplication; the
/// in-process leg is [`flights`].
#[cfg(unix)]
fn lock_exclusive(file: &std::fs::File) -> std::io::Result<()> {
    use std::os::unix::io::AsRawFd;
    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }
    const LOCK_EX: i32 = 2;
    loop {
        if unsafe { flock(file.as_raw_fd(), LOCK_EX) } == 0 {
            return Ok(());
        }
        let e = std::io::Error::last_os_error();
        if e.kind() != std::io::ErrorKind::Interrupted {
            return Err(e);
        }
    }
}

#[cfg(not(unix))]
fn lock_exclusive(_file: &std::fs::File) -> std::io::Result<()> {
    // No advisory locking: in-process singleflight still dedups, and the
    // tmp+rename publish keeps concurrent processes correct (they may
    // redundantly compile, never corrupt).
    Ok(())
}

fn ctype(dt: DataType) -> &'static str {
    match dt {
        DataType::F32 => "float",
        DataType::F64 => "double",
        DataType::I32 => "int32_t",
        DataType::I64 => "int64_t",
        DataType::Bool => "bool",
    }
}

/// Evaluate a parameter-shape extent over the supplied size parameters.
fn eval_extent(e: &Expr, sizes: &HashMap<String, i64>) -> Result<i64, RuntimeError> {
    match e {
        Expr::IntConst(v) => Ok(*v),
        Expr::Var(n) => sizes
            .get(n)
            .copied()
            .ok_or_else(|| RuntimeError::UnresolvedSize(n.clone())),
        Expr::Binary { op, a, b } => {
            let x = eval_extent(a, sizes)?;
            let y = eval_extent(b, sizes)?;
            match op {
                BinaryOp::Add => Ok(x + y),
                BinaryOp::Sub => Ok(x - y),
                BinaryOp::Mul => Ok(x * y),
                BinaryOp::Div => {
                    if y == 0 {
                        Err(RuntimeError::DivisionByZero)
                    } else {
                        Ok(x.div_euclid(y))
                    }
                }
                BinaryOp::Mod => {
                    if y == 0 {
                        Err(RuntimeError::DivisionByZero)
                    } else {
                        Ok(x.rem_euclid(y))
                    }
                }
                BinaryOp::Min => Ok(x.min(y)),
                BinaryOp::Max => Ok(x.max(y)),
                _ => Err(RuntimeError::Native(format!(
                    "unsupported extent operator {op:?}"
                ))),
            }
        }
        _ => Err(RuntimeError::Native(format!(
            "unsupported extent expression {e:?}"
        ))),
    }
}

/// Copy `t` into a tensor of `dtype` (element-wise converting).
fn convert(t: &TensorVal, dtype: DataType) -> TensorVal {
    let mut out = TensorVal::zeros(dtype, t.shape());
    for i in 0..t.numel() {
        out.set_flat(i, t.get_flat(i));
    }
    out
}

impl CompiledEngine {
    /// An engine using the default cache directory (see module docs) and a
    /// 60 s compiler deadline.
    pub fn new() -> CompiledEngine {
        CompiledEngine {
            cache_dir: default_cache_dir(),
            cc_timeout: Duration::from_secs(60),
            sink: None,
            metrics: None,
            profile: profile_env_enabled(),
            state: Arc::new(EngineState::default()),
        }
    }

    /// An engine with an explicit artifact cache directory.
    pub fn with_cache_dir(dir: impl Into<PathBuf>) -> CompiledEngine {
        CompiledEngine {
            cache_dir: dir.into(),
            ..CompiledEngine::new()
        }
    }

    /// Enable or disable per-loop-nest profiling (overrides `FT_PROFILE`).
    /// Profiled and unprofiled builds emit different sources, so they cache
    /// under different keys and never collide.
    pub fn with_profiling(mut self, on: bool) -> CompiledEngine {
        self.profile = on;
        self
    }

    /// Whether this engine emits profiled kernels.
    pub fn profiling(&self) -> bool {
        self.profile
    }

    /// The artifact cache directory this engine reads and writes.
    pub fn cache_dir(&self) -> &Path {
        &self.cache_dir
    }

    /// The complete translation unit handed to `cc`: the memory-planned
    /// emitted function plus the fixed-ABI `ft_entry` wrapper that unpacks
    /// the untyped parameter array and calls it. The plan is computed with
    /// the run's concrete sizes, so arena offsets are compile-time constants
    /// — distinct size bindings emit (and cache) distinct kernels. Profiled
    /// units thread the prof array through to the emitted function;
    /// unprofiled units discard it, so the entry signature is the same
    /// across both.
    fn source_for(&self, func: &Func, plan: &MemPlan) -> (String, Vec<ProfSite>) {
        let (mut src, sites) = emit_c_planned(func, plan, self.profile);
        let syms = c_symbols(func);
        src.push_str(
            "\nvoid ft_entry(void **params, const int64_t *sizes, \
             unsigned char *arena, uint64_t *prof) {\n",
        );
        let mut call_args: Vec<String> = Vec::new();
        for (i, p) in func.params.iter().enumerate() {
            let c = ctype(p.dtype);
            let qual = if p.atype == AccessType::Input { "const " } else { "" };
            call_args.push(format!("({qual}{c}*)params[{i}]"));
        }
        for i in 0..func.size_params.len() {
            call_args.push(format!("sizes[{i}]"));
        }
        call_args.push("arena".to_string());
        if self.profile {
            call_args.push("prof".to_string());
        } else {
            src.push_str("    (void)prof;\n");
        }
        src.push_str(&format!("    {}({});\n}}\n", syms.func, call_args.join(", ")));
        (src, sites)
    }

    fn note_cache(&self, hash: u64, hit: bool) {
        if let Some(m) = &self.metrics {
            m.counter(if hit {
                "compiled.cache.hit"
            } else {
                "compiled.cache.miss"
            })
            .inc();
        }
        if let Some(sink) = &self.sink {
            sink.decision(Decision {
                pass: None,
                primitive: "compiled.cache".to_string(),
                args: format!("({hash:016x})"),
                verdict: Verdict::Applied,
                reason: Some(if hit { "hit" } else { "miss" }.to_string()),
                deps: Vec::new(),
                ts_us: sink.now_us(),
            });
        }
    }

    /// Leader-side build: take the cross-process file lock for `hash`,
    /// re-check whether another process published the artifact while we
    /// waited, and compile only if not. Returns whether a compile actually
    /// ran (false = lost the cross-process race, which is a cache hit).
    fn build_locked(&self, src: &str, hash: u64, so_path: &Path) -> Result<bool, RuntimeError> {
        std::fs::create_dir_all(&self.cache_dir).map_err(|e| {
            RuntimeError::Native(format!("create {}: {e}", self.cache_dir.display()))
        })?;
        let lock_path = self.cache_dir.join(format!("{hash:016x}.lock"));
        let lock = std::fs::File::create(&lock_path)
            .map_err(|e| RuntimeError::Native(format!("create {}: {e}", lock_path.display())))?;
        lock_exclusive(&lock)
            .map_err(|e| RuntimeError::Native(format!("lock {}: {e}", lock_path.display())))?;
        if so_path.is_file() {
            return Ok(false);
        }
        self.compile(src, hash, so_path)?;
        Ok(true)
        // `lock` drops here, releasing the flock.
    }

    /// Compile `src` into `so_path`, writing the source next to it for
    /// inspection. Tries OpenMP first (the emitter's pragmas are only
    /// honored with `-fopenmp`); falls back to a serial build on
    /// toolchains without libgomp.
    fn compile(&self, src: &str, hash: u64, so_path: &Path) -> Result<(), RuntimeError> {
        let t0 = Instant::now();
        std::fs::create_dir_all(&self.cache_dir)
            .map_err(|e| RuntimeError::Native(format!("create {}: {e}", self.cache_dir.display())))?;
        let c_path = self.cache_dir.join(format!("{hash:016x}.c"));
        std::fs::write(&c_path, src)
            .map_err(|e| RuntimeError::Native(format!("write {}: {e}", c_path.display())))?;
        // Build into a process-unique temp name and rename into place so a
        // concurrent builder of the same key never observes a partial .so.
        let tmp = self
            .cache_dir
            .join(format!("{hash:016x}.so.tmp.{}", std::process::id()));
        let mut last_err = String::new();
        for flags in [CC_FLAGS, CC_FLAGS_SERIAL] {
            let mut cmd = Command::new("cc");
            cmd.args(flags.split_whitespace())
                .arg(&c_path)
                .arg("-o")
                .arg(&tmp)
                .arg("-lm");
            let mut span = self.sink.as_ref().map(|s| {
                let mut sp = s.span("compiled.cc", "compiled.cc");
                sp.arg("hash", format!("{hash:016x}"));
                sp.arg("flags", flags);
                sp
            });
            if let Some(m) = &self.metrics {
                m.counter("compiled.cc.spawned").inc();
            }
            let out = output_with_timeout(&mut cmd, self.cc_timeout)
                .map_err(|e| RuntimeError::Native(format!("spawn cc: {e}")))?;
            if let Some(sp) = span.as_mut() {
                sp.arg("ok", out.success());
            }
            if out.timed_out {
                let _ = std::fs::remove_file(&tmp);
                return Err(RuntimeError::ChildTimeout {
                    what: "cc".to_string(),
                    timeout_ms: self.cc_timeout.as_millis() as u64,
                });
            }
            if out.success() {
                std::fs::rename(&tmp, so_path)
                    .map_err(|e| RuntimeError::Native(format!("rename artifact: {e}")))?;
                if let Some(m) = &self.metrics {
                    m.histogram("compiled.compile_us")
                        .record_duration_us(t0.elapsed());
                    m.counter("compiled.cache.publish").inc();
                    m.gauge("compiled.cache.size_bytes")
                        .set(cache_size_bytes(&self.cache_dir) as i64);
                }
                return Ok(());
            }
            last_err = String::from_utf8_lossy(&out.stderr).into_owned();
        }
        let _ = std::fs::remove_file(&tmp);
        Err(RuntimeError::Native(format!("cc failed:\n{last_err}")))
    }

    /// Emit + (cache-aware) compile + load the kernel for `func` under
    /// `plan`. The plan hash participates in the cache key (belt and
    /// braces — planned offsets are already baked into the source).
    fn kernel_for(&self, func: &Func, plan: &MemPlan) -> Result<Arc<LoadedKernel>, RuntimeError> {
        let (src, sites) = self.source_for(func, plan);
        let mut key = src.clone().into_bytes();
        key.push(0);
        key.extend_from_slice(CC_FLAGS.as_bytes());
        key.push(0);
        key.extend_from_slice(&ABI_VERSION.to_le_bytes());
        key.extend_from_slice(&plan.plan_hash().to_le_bytes());
        let hash = fnv1a(&key);
        if let Some(k) = self.state.loaded.lock().get(&hash) {
            self.note_cache(hash, true);
            return Ok(Arc::clone(k));
        }
        let so_path = self.cache_dir.join(format!("{hash:016x}.so"));
        // Miss in the in-memory memo: settle who compiles. Any number of
        // engines/threads/processes may want this key at once; exactly one
        // `cc` must be spawned (the thundering-herd bug this replaces spawned
        // one per engine). Leaders compile under a per-key singleflight entry
        // plus a cross-process file lock; followers park, then re-check the
        // published artifact — and take over as leader if their leader failed.
        loop {
            if so_path.is_file() {
                self.note_cache(hash, true);
                break;
            }
            let (flight, leader) = {
                let mut map = flights().lock();
                match map.get(&hash) {
                    Some(f) => (Arc::clone(f), false),
                    None => {
                        let f = Arc::new(Flight::default());
                        map.insert(hash, Arc::clone(&f));
                        (f, true)
                    }
                }
            };
            if leader {
                let r = self.build_locked(&src, hash, &so_path);
                *flight.done.lock().unwrap() = true;
                flight.cv.notify_all();
                flights().lock().remove(&hash);
                match r {
                    Ok(compiled) => {
                        self.note_cache(hash, !compiled);
                        break;
                    }
                    Err(e) => return Err(e),
                }
            } else {
                if let Some(m) = &self.metrics {
                    m.counter("compiled.singleflight.wait").inc();
                }
                let mut done = flight.done.lock().unwrap();
                while !*done {
                    done = flight.cv.wait(done).unwrap();
                }
                // Loop: the artifact is normally on disk now; if the leader
                // errored instead, the next iteration elects a new leader
                // (each waiter leads at most once before erroring itself).
            }
        }
        // SAFETY: the object was produced by our own emitter + cc (or is a
        // cache entry keyed by the full source), and ft_entry's type is
        // fixed by ABI_VERSION which participates in the key.
        let lib = unsafe { libloading::Library::new(&so_path) }
            .map_err(|e| RuntimeError::Native(format!("load {}: {e}", so_path.display())))?;
        let entry = unsafe { lib.get::<EntryFn>(b"ft_entry\0") }
            .map_err(|e| RuntimeError::Native(format!("resolve ft_entry: {e}")))?;
        let kernel = Arc::new(LoadedKernel {
            entry: *entry,
            sites,
            _lib: lib,
        });
        self.state.loaded.lock().insert(hash, Arc::clone(&kernel));
        Ok(kernel)
    }
}

const CC_FLAGS: &str = "-O2 -fPIC -shared -ffp-contract=off -fopenmp";
const CC_FLAGS_SERIAL: &str = "-O2 -fPIC -shared -ffp-contract=off";

impl ExecutionEngine for CompiledEngine {
    fn name(&self) -> &'static str {
        "compiled"
    }

    fn run(
        &self,
        func: &Func,
        inputs: &HashMap<String, TensorVal>,
        sizes: &HashMap<String, i64>,
    ) -> Result<RunResult, RuntimeError> {
        let t0 = self.metrics.as_ref().map(|_| Instant::now());
        let r = self.run_inner(func, inputs, sizes, None);
        if let (Some(m), Some(t0)) = (&self.metrics, t0) {
            m.histogram("engine.compiled.run_us")
                .record_duration_us(t0.elapsed());
            if r.is_err() {
                m.counter("engine.compiled.errors").inc();
            }
        }
        r
    }

    fn run_with(
        &self,
        func: &Func,
        inputs: &HashMap<String, TensorVal>,
        sizes: &HashMap<String, i64>,
        ctx: &mut RunContext,
    ) -> Result<RunResult, RuntimeError> {
        let t0 = self.metrics.as_ref().map(|_| Instant::now());
        let r = self.run_inner(func, inputs, sizes, Some(&mut *ctx));
        if let Err(e) = &r {
            ctx.poison_on(e);
        }
        if let (Some(m), Some(t0)) = (&self.metrics, t0) {
            m.histogram("engine.compiled.run_us")
                .record_duration_us(t0.elapsed());
            if r.is_err() {
                m.counter("engine.compiled.errors").inc();
            }
        }
        r
    }

    fn set_sink(&mut self, sink: Option<TraceSink>) {
        self.sink = sink;
    }

    fn sink(&self) -> Option<&TraceSink> {
        self.sink.as_ref()
    }

    fn set_metrics(&mut self, metrics: Option<Metrics>) {
        self.metrics = metrics;
    }

    fn metrics(&self) -> Option<&Metrics> {
        self.metrics.as_ref()
    }
}

impl CompiledEngine {
    fn run_inner(
        &self,
        func: &Func,
        inputs: &HashMap<String, TensorVal>,
        sizes: &HashMap<String, i64>,
        mut rctx: Option<&mut RunContext>,
    ) -> Result<RunResult, RuntimeError> {
        let plan = MemPlan::plan(func, sizes);
        if let Some(c) = rctx.as_deref_mut() {
            c.ensure_bound(func, sizes, &plan)?;
        }
        crate::arena::publish_plan(self.sink.as_ref(), self.metrics.as_ref(), &func.name, &plan);
        let kernel = self.kernel_for(func, &plan)?;
        let mut span = self
            .sink
            .as_ref()
            .map(|s| s.span_on(TRACK_RUNTIME, "runtime", &format!("compiled {}", func.name)));
        let size_vals: Vec<i64> = func
            .size_params
            .iter()
            .map(|sp| {
                sizes
                    .get(sp)
                    .copied()
                    .ok_or_else(|| RuntimeError::UnresolvedSize(sp.clone()))
            })
            .collect::<Result<_, _>>()?;
        // Bind parameters with the interpreter's semantics: Input borrowed
        // read-only, InOut copied in (and returned), Output zeroed. The
        // kernel reads Input buffers through const pointers; owned InOut/
        // Output tensors keep their storage alive across the call.
        enum Bound<'a> {
            Borrowed(&'a TensorVal),
            Owned(TensorVal),
        }
        let mut bound: Vec<Bound<'_>> = Vec::with_capacity(func.params.len());
        for p in &func.params {
            let shape: Vec<usize> = p
                .shape
                .iter()
                .map(|e| {
                    let v = eval_extent(e, sizes)?;
                    usize::try_from(v).map_err(|_| RuntimeError::UnresolvedSize(p.name.clone()))
                })
                .collect::<Result<_, _>>()?;
            let b = match p.atype {
                AccessType::Input | AccessType::InOut => {
                    let t = inputs
                        .get(&p.name)
                        .ok_or_else(|| RuntimeError::MissingInput(p.name.clone()))?;
                    if t.shape() != shape.as_slice() {
                        return Err(RuntimeError::ShapeMismatch {
                            name: p.name.clone(),
                            expected: shape,
                            actual: t.shape().to_vec(),
                        });
                    }
                    if p.atype == AccessType::InOut || t.dtype() != p.dtype {
                        // Owned copy, converting when the caller's dtype
                        // differs from the declaration (the kernel indexes
                        // with the declared element size). A RunContext
                        // serves the copy from its staging buffers.
                        let owned = match rctx.as_deref_mut() {
                            Some(c) if t.dtype() == p.dtype => c.staged_copy(&p.name, t),
                            Some(c) => {
                                let mut out =
                                    c.staged_zeros(&p.name, p.dtype, t.shape(), false);
                                for i in 0..t.numel() {
                                    out.set_flat(i, t.get_flat(i));
                                }
                                out
                            }
                            None => convert(t, p.dtype),
                        };
                        Bound::Owned(owned)
                    } else {
                        Bound::Borrowed(t)
                    }
                }
                // Output and Cache params are zero-initialized scratch; only
                // Output (and InOut) are returned.
                AccessType::Output | AccessType::Cache => {
                    let owned = match rctx.as_deref_mut() {
                        Some(c) => c.staged_zeros(&p.name, p.dtype, &shape, true),
                        None => TensorVal::zeros(p.dtype, &shape),
                    };
                    Bound::Owned(owned)
                }
            };
            bound.push(b);
        }
        let mut ptrs: Vec<*mut c_void> = bound
            .iter_mut()
            .map(|b| match b {
                // The generated signature takes `const T*` for Input
                // params, so handing out a mut-cast of a shared borrow is
                // never written through.
                Bound::Borrowed(t) => t.as_ptr_untyped() as *mut c_void,
                Bound::Owned(t) => t.as_mut_ptr_untyped(),
            })
            .collect();
        let mut prof_buf: Vec<u64> = vec![0; kernel.sites.len()];
        let prof_ptr = if prof_buf.is_empty() {
            std::ptr::null_mut()
        } else {
            prof_buf.as_mut_ptr()
        };
        // A RunContext preallocates the plan's arena once and hands the
        // same block to every call; without one the kernel mallocs its own.
        let arena_ptr: *mut c_void = match rctx.as_deref_mut() {
            Some(c) => c.native_arena_for(&plan).ptr() as *mut c_void,
            None => std::ptr::null_mut(),
        };
        let call_t0 = Instant::now();
        // SAFETY: pointer array length and element types match the
        // generated ft_entry (same Func produced both); buffers outlive
        // the call; size values are passed by const pointer; arena_ptr is
        // NULL or points at planned_peak_bytes of storage for the plan the
        // kernel was emitted from; prof_ptr is NULL or points at
        // sites.len() slots, matching the profiled build.
        unsafe { (kernel.entry)(ptrs.as_mut_ptr(), size_vals.as_ptr(), arena_ptr, prof_ptr) };
        let call_ns = call_t0.elapsed().as_nanos() as u64;
        if let Some(m) = &self.metrics {
            m.histogram("engine.compiled.kernel_us").record(call_ns / 1000);
        }
        if !kernel.sites.is_empty() {
            self.publish_profile(func, &kernel.sites, &prof_buf, call_ns);
        }
        let mut outputs = HashMap::new();
        for (p, b) in func.params.iter().zip(bound) {
            if !matches!(p.atype, AccessType::Output | AccessType::InOut) {
                continue;
            }
            let t = match b {
                Bound::Owned(t) => t,
                Bound::Borrowed(_) => unreachable!("outputs are always owned"),
            };
            // The interpreter preserves the *caller's* dtype for InOut
            // tensors (it binds by clone); convert back when they differ.
            let t = match inputs.get(&p.name) {
                Some(orig) if p.atype == AccessType::InOut && orig.dtype() != t.dtype() => {
                    convert(&t, orig.dtype())
                }
                _ => t,
            };
            outputs.insert(p.name.clone(), t);
        }
        if let Some(sp) = span.as_mut() {
            sp.arg("params", func.params.len());
        }
        if let (Some(m), Some(c)) = (&self.metrics, rctx) {
            crate::arena::flush_stats(m, &mut c.stats);
        }
        Ok(RunResult {
            outputs,
            counters: PerfCounters::default(),
        })
    }

    /// Publish the per-loop-nest timings of a profiled run as a
    /// [`RunProfile`], mirroring the interpreter's attribution shape: node 0
    /// is the function root, one child per outermost loop nest, wall
    /// nanoseconds carried in the (exclusive) `cycles` field. The root gets
    /// the out-of-loop remainder, so `totals()` equals the entry-call wall
    /// time. Site times are also summed into the `compiled.prof.site_ns`
    /// counter for metrics-only consumers.
    fn publish_profile(&self, func: &Func, sites: &[ProfSite], times_ns: &[u64], call_ns: u64) {
        let in_loops: u64 = times_ns.iter().sum();
        if let Some(m) = &self.metrics {
            m.counter("compiled.prof.site_ns").add(in_loops);
            m.counter("compiled.prof.call_ns").add(call_ns);
        }
        let Some(sink) = &self.sink else { return };
        let mut nodes = vec![ProfileNode {
            stmt: None,
            desc: func.name.clone(),
            parent: None,
            counters: StmtCounters {
                cycles: call_ns.saturating_sub(in_loops) as f64,
                ..StmtCounters::default()
            },
        }];
        for (site, &ns) in sites.iter().zip(times_ns) {
            nodes.push(ProfileNode {
                stmt: Some(site.stmt),
                desc: site.desc.clone(),
                parent: Some(0),
                counters: StmtCounters {
                    trips: 1,
                    cycles: ns as f64,
                    ..StmtCounters::default()
                },
            });
        }
        sink.profile(RunProfile {
            func: func.name.clone(),
            nodes,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;

    fn tmp_cache(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "ft-native-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn axpy() -> Func {
        Func::new("axpy")
            .param("x", [var("n")], DataType::F32, AccessType::Input)
            .param("y", [var("n")], DataType::F32, AccessType::InOut)
            .size_param("n")
            .body(for_(
                "i",
                0,
                var("n"),
                store(
                    "y",
                    [var("i")],
                    load("y", [var("i")]) + load("x", [var("i")]) * 2.0f32,
                ),
            ))
    }

    #[test]
    fn compiles_and_runs_in_process() {
        if !cc_available() {
            eprintln!("cc unavailable; skipping");
            return;
        }
        let eng = CompiledEngine::with_cache_dir(tmp_cache("run"));
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), TensorVal::from_f32(&[5], vec![1.0; 5]));
        inputs.insert("y".to_string(), TensorVal::from_f32(&[5], vec![0.5; 5]));
        let sizes = HashMap::from([("n".to_string(), 5i64)]);
        let r = eng.run(&axpy(), &inputs, &sizes).expect("runs");
        assert_eq!(r.output("y").to_f64_vec(), vec![2.5; 5]);
        // Input buffer untouched.
        assert_eq!(inputs["x"].to_f64_vec(), vec![1.0; 5]);
    }

    #[test]
    fn second_run_hits_the_cache() {
        if !cc_available() {
            eprintln!("cc unavailable; skipping");
            return;
        }
        let dir = tmp_cache("hit");
        let sink = TraceSink::new();
        let mut eng = CompiledEngine::with_cache_dir(&dir);
        eng.set_sink(Some(sink.clone()));
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), TensorVal::from_f32(&[3], vec![1.0; 3]));
        inputs.insert("y".to_string(), TensorVal::from_f32(&[3], vec![0.0; 3]));
        let sizes = HashMap::from([("n".to_string(), 3i64)]);
        eng.run(&axpy(), &inputs, &sizes).expect("cold run");
        eng.run(&axpy(), &inputs, &sizes).expect("warm run");
        // A *fresh* engine (empty in-memory memo) against the same dir
        // must also hit via the on-disk artifact.
        let mut eng2 = CompiledEngine::with_cache_dir(&dir);
        eng2.set_sink(Some(sink.clone()));
        eng2.run(&axpy(), &inputs, &sizes).expect("disk-warm run");
        let reasons: Vec<String> = sink
            .decisions()
            .iter()
            .filter(|d| d.primitive == "compiled.cache")
            .map(|d| d.reason.clone().unwrap_or_default())
            .collect();
        assert_eq!(reasons, ["miss", "hit", "hit"], "{reasons:?}");
    }

    #[test]
    fn cache_traffic_is_counted_in_metrics() {
        if !cc_available() {
            eprintln!("cc unavailable; skipping");
            return;
        }
        let dir = tmp_cache("metrics");
        let m = Metrics::new();
        let mut eng = CompiledEngine::with_cache_dir(&dir);
        eng.set_metrics(Some(m.clone()));
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), TensorVal::from_f32(&[3], vec![1.0; 3]));
        inputs.insert("y".to_string(), TensorVal::from_f32(&[3], vec![0.0; 3]));
        let sizes = HashMap::from([("n".to_string(), 3i64)]);
        eng.run(&axpy(), &inputs, &sizes).expect("cold run");
        eng.run(&axpy(), &inputs, &sizes).expect("warm run");
        let s = m.snapshot();
        assert_eq!(s.counter("compiled.cache.miss"), 1, "{s:?}");
        assert_eq!(s.counter("compiled.cache.hit"), 1, "{s:?}");
        assert_eq!(s.counter("compiled.cache.publish"), 1, "{s:?}");
        // One cc invocation compiled the artifact (a serial-fallback retry
        // would make it 2; either way the warm run adds none).
        let spawned = s.counter("compiled.cc.spawned");
        assert!((1..=2).contains(&spawned), "{s:?}");
        assert!(s.gauge("compiled.cache.size_bytes") > 0, "{s:?}");
        assert_eq!(
            s.histograms.get("engine.compiled.run_us").map(|h| h.count),
            Some(2),
            "{s:?}"
        );
        // Warm runs through a fresh engine spawn no compiler.
        let mut eng2 = CompiledEngine::with_cache_dir(&dir);
        eng2.set_metrics(Some(m.clone()));
        eng2.run(&axpy(), &inputs, &sizes).expect("disk-warm run");
        let s2 = m.snapshot();
        assert_eq!(s2.counter("compiled.cc.spawned"), spawned, "{s2:?}");
        assert_eq!(s2.counter("compiled.cache.hit"), 2, "{s2:?}");
    }

    #[test]
    fn profiled_run_attributes_wall_time_to_loop_nests() {
        if !cc_available() {
            eprintln!("cc unavailable; skipping");
            return;
        }
        let sink = TraceSink::new();
        let m = Metrics::new();
        let mut eng =
            CompiledEngine::with_cache_dir(tmp_cache("prof")).with_profiling(true);
        eng.set_sink(Some(sink.clone()));
        eng.set_metrics(Some(m.clone()));
        let n = 1i64 << 16;
        let mut inputs = HashMap::new();
        inputs.insert(
            "x".to_string(),
            TensorVal::from_f32(&[n as usize], vec![1.0; n as usize]),
        );
        inputs.insert(
            "y".to_string(),
            TensorVal::from_f32(&[n as usize], vec![0.0; n as usize]),
        );
        let sizes = HashMap::from([("n".to_string(), n)]);
        let r = eng.run(&axpy(), &inputs, &sizes).expect("profiled run");
        assert_eq!(r.output("y").to_f64_vec()[0], 2.0);
        let profiles = sink.profiles();
        assert_eq!(profiles.len(), 1, "{profiles:?}");
        let p = &profiles[0];
        assert_eq!(p.func, "axpy");
        assert_eq!(p.nodes.len(), 2, "{:?}", p.nodes);
        assert_eq!(p.nodes[1].desc, "for i");
        assert_eq!(p.nodes[1].parent, Some(0));
        assert!(p.nodes[1].stmt.is_some());
        // The loop did real work, so its measured time is non-zero and the
        // attribution sums to the entry-call wall time recorded in metrics.
        assert!(p.nodes[1].counters.cycles > 0.0, "{:?}", p.nodes);
        let s = m.snapshot();
        assert!(s.counter("compiled.prof.site_ns") > 0, "{s:?}");
        assert!(
            s.counter("compiled.prof.site_ns") <= s.counter("compiled.prof.call_ns"),
            "{s:?}"
        );
        assert_eq!(
            p.totals().cycles as u64,
            s.counter("compiled.prof.call_ns"),
            "{s:?}"
        );
    }

    #[test]
    fn profiled_and_unprofiled_builds_cache_separately() {
        let plain = CompiledEngine::with_cache_dir(tmp_cache("keys"));
        let prof = plain.clone().with_profiling(true);
        let f = axpy();
        let plan = MemPlan::plan(&f, &HashMap::from([("n".to_string(), 8i64)]));
        let (src_plain, sites_plain) = plain.source_for(&f, &plan);
        let (src_prof, sites_prof) = prof.source_for(&f, &plan);
        assert_ne!(src_plain, src_prof);
        assert!(sites_plain.is_empty());
        assert_eq!(sites_prof.len(), 1);
        assert!(src_prof.contains("__ft_prof"), "{src_prof}");
        assert!(!src_plain.contains("__ft_prof"), "{src_plain}");
    }

    /// A compile-once/run-many loop with a [`RunContext`]: after the first
    /// iteration primes the arena and staging buffers, re-runs perform zero
    /// tensor heap allocations — the `mem.arena.alloc_calls` counter stays
    /// flat while `mem.arena.reuse_hits` climbs — and results stay correct.
    #[test]
    fn warm_run_context_reaches_zero_allocations() {
        if !cc_available() {
            eprintln!("cc unavailable; skipping");
            return;
        }
        let f = Func::new("smooth")
            .param("x", [var("n")], DataType::F32, AccessType::Input)
            .param("y", [var("n")], DataType::F32, AccessType::Output)
            .size_param("n")
            .body(var_def(
                "t",
                [var("n")],
                DataType::F32,
                MemType::CpuHeap,
                block([
                    for_(
                        "i",
                        0,
                        var("n"),
                        store("t", [var("i")], load("x", [var("i")]) * 2.0f32),
                    ),
                    for_(
                        "i",
                        0,
                        var("n"),
                        store("y", [var("i")], load("t", [var("i")]) + 1.0f32),
                    ),
                ]),
            ));
        let m = Metrics::new();
        let mut eng = CompiledEngine::with_cache_dir(tmp_cache("warm"));
        eng.set_metrics(Some(m.clone()));
        let n = 256usize;
        let inputs = HashMap::from([(
            "x".to_string(),
            TensorVal::from_f32(&[n], vec![1.0; n]),
        )]);
        let sizes = HashMap::from([("n".to_string(), n as i64)]);
        let mut ctx = crate::arena::RunContext::new();
        let r1 = eng.run_with(&f, &inputs, &sizes, &mut ctx).expect("cold");
        assert_eq!(r1.output("y").to_f64_vec(), vec![3.0; n]);
        ctx.recycle(r1).unwrap();
        let cold = m.snapshot();
        assert!(cold.counter("mem.arena.alloc_calls") > 0, "{cold:?}");
        for _ in 0..3 {
            let r = eng.run_with(&f, &inputs, &sizes, &mut ctx).expect("warm");
            assert_eq!(r.output("y").to_f64_vec(), vec![3.0; n]);
            ctx.recycle(r).unwrap();
        }
        let warm = m.snapshot();
        assert_eq!(
            warm.counter("mem.arena.alloc_calls"),
            cold.counter("mem.arena.alloc_calls"),
            "warm iterations must not allocate: {warm:?}"
        );
        assert!(
            warm.counter("mem.arena.reuse_hits") > cold.counter("mem.arena.reuse_hits"),
            "{warm:?}"
        );
    }

    #[test]
    fn zero_size_divisor_is_an_error_not_a_panic() {
        let e = eval_extent(
            &(var("n") / var("z")),
            &HashMap::from([("n".to_string(), 4i64), ("z".to_string(), 0i64)]),
        );
        assert_eq!(e, Err(RuntimeError::DivisionByZero));
    }

    #[test]
    fn output_params_are_zero_initialized() {
        if !cc_available() {
            eprintln!("cc unavailable; skipping");
            return;
        }
        let f = Func::new("fill_one")
            .param("o", [4], DataType::F64, AccessType::Output)
            .body(store("o", [1], 7.0f64));
        let eng = CompiledEngine::with_cache_dir(tmp_cache("zero"));
        let r = eng.run(&f, &HashMap::new(), &HashMap::new()).expect("runs");
        assert_eq!(r.output("o").to_f64_vec(), vec![0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn concurrent_identical_requests_compile_once() {
        // The thundering-herd regression: 8 engines (each with an empty
        // in-memory memo, as 8 serving threads would have) racing the same
        // kernel against a fresh cache dir must spawn `cc` for exactly one
        // build, not eight. First measure how many spawns *one* cold build
        // takes on this toolchain (1, or 2 when OpenMP is unavailable and
        // the serial fallback kicks in), then require the stampede to match.
        if !cc_available() {
            eprintln!("cc unavailable; skipping");
            return;
        }
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), TensorVal::from_f32(&[16], vec![1.0; 16]));
        inputs.insert("y".to_string(), TensorVal::from_f32(&[16], vec![0.0; 16]));
        let sizes = HashMap::from([("n".to_string(), 16i64)]);

        let m1 = Metrics::new();
        let mut solo = CompiledEngine::with_cache_dir(tmp_cache("herd-solo"));
        solo.set_metrics(Some(m1.clone()));
        solo.run(&axpy(), &inputs, &sizes).expect("solo cold run");
        let per_build = m1.snapshot().counter("compiled.cc.spawned");
        assert!((1..=2).contains(&per_build), "{per_build}");

        let dir = tmp_cache("herd");
        let m = Metrics::new();
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let mut eng = CompiledEngine::with_cache_dir(&dir);
                    eng.set_metrics(Some(m.clone()));
                    let (inputs, sizes, barrier) = (&inputs, &sizes, &barrier);
                    s.spawn(move || {
                        barrier.wait();
                        eng.run(&axpy(), inputs, sizes).expect("stampede run")
                    })
                })
                .collect();
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for r in &results {
                assert_eq!(r.output("y").to_f64_vec(), vec![2.0; 16]);
            }
        });
        let s = m.snapshot();
        assert_eq!(s.counter("compiled.cc.spawned"), per_build, "{s:?}");
        assert_eq!(s.counter("compiled.cache.publish"), 1, "{s:?}");
        assert_eq!(s.counter("compiled.cache.miss"), 1, "{s:?}");
        assert_eq!(s.counter("compiled.cache.hit"), 7, "{s:?}");
    }
}
