//! A persistent worker pool for parallel loop regions.
//!
//! The original [`crate::threaded`] implementation forked a fresh
//! `crossbeam::thread::scope` with static chunking at *every* parallel
//! region. For the irregular inner bounds of the SoftRas/GAT workloads the
//! static split leaves workers idle, and the per-region thread spawn/join
//! dominates small regions. This module keeps a process-global set of
//! long-lived workers and hands them regions as `[begin, end)` ranges with
//! work-queue dynamic chunking: each worker (including the submitting
//! thread) repeatedly claims the next `grain` iterations from an atomic
//! cursor until the range is drained.
//!
//! Guarantees:
//!
//! * **Panic propagation** — a panic inside any chunk is caught, the region
//!   is cancelled (the cursor is slammed to the end so no further chunks are
//!   claimed), and the first payload is re-raised on the submitting thread
//!   once every worker has left the region. Worker threads themselves
//!   survive: the pool stays usable for later regions.
//! * **No deadlock on nesting** — a region submitted from inside a worker
//!   (a nested parallel loop) runs inline on that worker; only top-level
//!   regions are distributed.
//! * **Zero-iteration regions** return immediately without touching the
//!   queue.
//!
//! The closure is shared by reference with its lifetime erased; soundness
//! comes from [`WorkerPool::try_run`] not returning until every worker has
//! finished with the region (`pending` reaches zero), so the reference never
//! outlives the caller's frame.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A chunk-range task: invoked as `task(lo, hi)` for each claimed chunk.
/// In a bare type alias the trait-object lifetime defaults to `'static`,
/// which is exactly what the erased [`Job::task`] field needs; the public
/// entry points take `&(dyn Fn(i64, i64) + Sync)` instead so callers can
/// pass closures borrowing their frame.
type Task = dyn Fn(i64, i64) + Sync;

/// One parallel region in flight.
struct Job {
    /// First iteration of the region (the chunk grid's origin).
    begin: i64,
    /// Unclaimed `[front, back)` range. Background helpers claim
    /// grid-aligned chunks ascending from the front; the submitting thread
    /// claims descending from the back. For a legal region chunk order is
    /// semantically free; for an *illegal* one (an unchecked parallelize of
    /// a loop-carried dependence) the two-ended order makes the divergence
    /// deterministic — it shows even when the OS never actually interleaves
    /// the workers, e.g. on a single-core host.
    range: Mutex<(i64, i64)>,
    /// Chunk size for dynamic scheduling.
    grain: i64,
    /// The region body, lifetime-erased (see module docs for why this is
    /// sound).
    task: &'static Task,
    /// Background workers still inside this region.
    pending: Mutex<usize>,
    /// Signalled when `pending` reaches zero.
    done: Condvar,
    /// First panic payload raised by any chunk.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// The owning pool's lifetime stats, bumped at each chunk claim.
    stats: Arc<PoolStats>,
}

/// Monotone lifetime statistics of a pool, kept as relaxed atomics so the
/// claim hot path costs one uncontended `fetch_add`. Engines sample
/// [`WorkerPool::stats`] before and after a run and publish the delta.
#[derive(Debug, Default)]
struct PoolStats {
    /// Regions distributed to the queue.
    regions: AtomicU64,
    /// Regions run inline (nested, single-worker, or single-chunk).
    inline_regions: AtomicU64,
    /// Chunks claimed by submitting threads (back end of the grid).
    chunks_submitter: AtomicU64,
    /// Chunks claimed by background helpers (front end of the grid).
    chunks_helper: AtomicU64,
    /// Peak queue depth ever observed at publish time.
    queue_peak: AtomicU64,
}

/// A point-in-time copy of a pool's lifetime statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStatsSnapshot {
    /// Regions distributed to the queue.
    pub regions: u64,
    /// Regions run inline without touching the queue.
    pub inline_regions: u64,
    /// Chunks claimed by submitting threads.
    pub chunks_submitter: u64,
    /// Chunks claimed by background helpers.
    pub chunks_helper: u64,
    /// Peak queue depth observed at publish time (monotone).
    pub queue_peak: u64,
}

impl PoolStatsSnapshot {
    /// Counters accumulated since `earlier` (the monotone peak is kept).
    pub fn delta_since(&self, earlier: &PoolStatsSnapshot) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            regions: self.regions.saturating_sub(earlier.regions),
            inline_regions: self.inline_regions.saturating_sub(earlier.inline_regions),
            chunks_submitter: self.chunks_submitter.saturating_sub(earlier.chunks_submitter),
            chunks_helper: self.chunks_helper.saturating_sub(earlier.chunks_helper),
            queue_peak: self.queue_peak,
        }
    }

    /// Submitter/helper claim imbalance in percent: `0` when both ends
    /// drained the same number of chunks, `100` when one end did all the
    /// work. `None` when no chunks were claimed.
    pub fn imbalance_pct(&self) -> Option<u64> {
        let total = self.chunks_submitter + self.chunks_helper;
        if total == 0 {
            return None;
        }
        let diff = self.chunks_submitter.abs_diff(self.chunks_helper);
        Some(diff * 100 / total)
    }
}

impl Job {
    /// Claim the next grid-aligned chunk from the chosen end, or `None`
    /// when the range is drained. Both ends stay on the same chunk grid
    /// (`begin + k * grain`), so chunk indices — and everything built on
    /// them, like [`WorkerPool::try_run_reduce`]'s merge order — are
    /// independent of who claimed what.
    fn claim(&self, from_back: bool) -> Option<(i64, i64)> {
        let mut r = self.range.lock().unwrap_or_else(|e| e.into_inner());
        let (front, back) = *r;
        if front >= back {
            return None;
        }
        if from_back {
            self.stats.chunks_submitter.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.chunks_helper.fetch_add(1, Ordering::Relaxed);
        }
        if from_back {
            // Grid-aligned start of the chunk containing `back - 1`.
            let lo = (self.begin + (back - 1 - self.begin) / self.grain * self.grain).max(front);
            *r = (front, lo);
            Some((lo, back))
        } else {
            let hi = (front + self.grain).min(back);
            *r = (hi, back);
            Some((front, hi))
        }
    }

    /// Claim and run one chunk from the chosen end. Returns `false` when
    /// the range is drained, or after recording a panic and cancelling the
    /// region.
    fn work_one(&self, from_back: bool) -> bool {
        let Some((lo, hi)) = self.claim(from_back) else {
            return false;
        };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.task)(lo, hi))) {
            // Cancel: no worker claims further chunks of this region.
            let mut r = self.range.lock().unwrap_or_else(|e| e.into_inner());
            r.0 = r.1;
            drop(r);
            let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(payload);
            }
            return false;
        }
        true
    }

    /// Claim and run chunks until the range is drained; record a panic and
    /// cancel the region if one occurs.
    fn work(&self, from_back: bool) {
        while self.work_one(from_back) {}
    }

    fn leave(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

struct PoolShared {
    /// Pending region handles; a region is pushed once per worker that
    /// should join it.
    queue: Mutex<Vec<Arc<Job>>>,
    available: Condvar,
    stats: Arc<PoolStats>,
}

thread_local! {
    /// Set while a pool worker (or a submitter) is executing region chunks;
    /// nested regions run inline instead of re-entering the queue.
    static IN_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A persistent pool of worker threads executing `[begin, end)` ranges with
/// dynamic chunking. See the module docs for the guarantees.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Number of background worker threads (the submitting thread always
    /// participates as one extra worker).
    background: usize,
}

impl WorkerPool {
    /// Build a pool with `background` long-lived worker threads.
    ///
    /// The submitting thread also executes chunks, so total parallelism of a
    /// region is `background + 1`.
    pub fn new(background: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(Vec::new()),
            available: Condvar::new(),
            stats: Arc::new(PoolStats::default()),
        });
        for i in 0..background {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("ft-worker-{i}"))
                .spawn(move || worker_loop(&sh))
                .expect("spawn pool worker");
        }
        WorkerPool {
            shared,
            background,
        }
    }

    /// The process-global pool, created on first use with one background
    /// worker per available core (minus the submitter), capped at 15.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4);
            WorkerPool::new(cores.saturating_sub(1).clamp(1, 15))
        })
    }

    /// Number of background worker threads.
    pub fn background_workers(&self) -> usize {
        self.background
    }

    /// A point-in-time copy of the pool's monotone lifetime statistics.
    /// Sample before and after a run and use
    /// [`PoolStatsSnapshot::delta_since`] to attribute claims to the run.
    pub fn stats(&self) -> PoolStatsSnapshot {
        let s = &self.shared.stats;
        PoolStatsSnapshot {
            regions: s.regions.load(Ordering::Relaxed),
            inline_regions: s.inline_regions.load(Ordering::Relaxed),
            chunks_submitter: s.chunks_submitter.load(Ordering::Relaxed),
            chunks_helper: s.chunks_helper.load(Ordering::Relaxed),
            queue_peak: s.queue_peak.load(Ordering::Relaxed),
        }
    }

    /// Run `task` over `[begin, end)` with dynamic chunks of `grain`
    /// iterations, using at most `max_workers` concurrent workers (the
    /// submitting thread counts as one). Returns the first panic payload
    /// raised by any chunk, after all workers have left the region.
    ///
    /// # Errors
    ///
    /// The payload of the first panicking chunk.
    pub fn try_run(
        &self,
        begin: i64,
        end: i64,
        grain: i64,
        max_workers: usize,
        task: &(dyn Fn(i64, i64) + Sync),
    ) -> Result<(), Box<dyn std::any::Any + Send>> {
        if begin >= end {
            return Ok(());
        }
        let grain = grain.max(1);
        let helpers = max_workers
            .saturating_sub(1)
            .min(self.background)
            .min(((end - begin + grain - 1) / grain).max(0) as usize);
        // Nested region (submitted from inside another region's chunk), or
        // no helpers: run inline on this thread.
        if helpers == 0 || IN_REGION.with(|f| f.get()) {
            self.shared
                .stats
                .inline_regions
                .fetch_add(1, Ordering::Relaxed);
            return catch_unwind(AssertUnwindSafe(|| task(begin, end)));
        }
        let job = Arc::new(Job {
            begin,
            range: Mutex::new((begin, end)),
            grain,
            // SAFETY: the reference is only used by workers that `leave()`
            // the job before `pending` reaches zero, and we block below
            // until it does — the erased borrow cannot outlive this frame.
            task: unsafe {
                std::mem::transmute::<&(dyn Fn(i64, i64) + Sync), &'static Task>(task)
            },
            pending: Mutex::new(helpers),
            done: Condvar::new(),
            panic: Mutex::new(None),
            stats: Arc::clone(&self.shared.stats),
        });
        // The submitting thread runs its *first* chunk — the one at the back
        // of the range (see [`Job::range`]) — before the job is published to
        // helpers at all. For a legal region this is semantically free; for
        // an illegal one it makes the out-of-order execution observable on
        // every run: a parked helper can otherwise win the wake-up race and
        // drain the whole range in ascending order, hiding the bug on hosts
        // where the OS never interleaves the threads.
        IN_REGION.with(|f| f.set(true));
        let published = job.work_one(true);
        if published {
            self.shared.stats.regions.fetch_add(1, Ordering::Relaxed);
            {
                let mut q = self.shared.queue.lock().expect("pool queue poisoned");
                for _ in 0..helpers {
                    q.push(Arc::clone(&job));
                }
                self.shared
                    .stats
                    .queue_peak
                    .fetch_max(q.len() as u64, Ordering::Relaxed);
            }
            self.shared.available.notify_all();
            job.work(true);
        }
        IN_REGION.with(|f| f.set(false));
        if published {
            // Block until every background worker has left the region; this
            // is what makes the lifetime erasure above sound.
            let mut pending = job.pending.lock().unwrap_or_else(|e| e.into_inner());
            while *pending > 0 {
                pending = job
                    .done
                    .wait(pending)
                    .unwrap_or_else(|e| e.into_inner());
            }
            drop(pending);
        }
        let payload = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        match payload {
            Some(payload) => Err(payload),
            None => Ok(()),
        }
    }

    /// A runtime `cache_reduce`: run `body` over `[begin, end)` in
    /// `grain`-sized chunks, giving every *chunk* its own private
    /// accumulator (`init(chunk_idx)`), then combine the accumulators on
    /// the calling thread in **ascending chunk order** via `merge`.
    ///
    /// Chunk index `(lo - begin) / grain` is a pure function of the range,
    /// not of which worker claimed the chunk, so for a fixed `grain` the
    /// sequence of `merge` calls — and therefore the result, even for
    /// non-associative combines — is independent of thread scheduling.
    /// This is what lets the fast VM and the threaded interpreter privatize
    /// reductions while staying bit-identical run to run.
    ///
    /// Chunks that were never claimed because an earlier chunk panicked (or
    /// that panicked themselves) contribute no accumulator; on panic the
    /// payload is returned and no `merge` calls are made.
    ///
    /// # Errors
    ///
    /// The payload of the first panicking chunk.
    #[allow(clippy::too_many_arguments)]
    pub fn try_run_reduce<T: Send>(
        &self,
        begin: i64,
        end: i64,
        grain: i64,
        max_workers: usize,
        init: &(dyn Fn(usize) -> T + Sync),
        body: &(dyn Fn(i64, i64, &mut T) + Sync),
        merge: &mut dyn FnMut(usize, T),
    ) -> Result<(), Box<dyn std::any::Any + Send>> {
        if begin >= end {
            return Ok(());
        }
        let grain = grain.max(1);
        let n_chunks = ((end - begin + grain - 1) / grain) as usize;
        let partials: Vec<Mutex<Option<T>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
        let result = self.try_run(begin, end, grain, max_workers, &|lo, hi| {
            let idx = ((lo - begin) / grain) as usize;
            let mut acc = init(idx);
            body(lo, hi, &mut acc);
            *partials[idx].lock().unwrap_or_else(|e| e.into_inner()) = Some(acc);
        });
        result?;
        for (idx, slot) in partials.into_iter().enumerate() {
            if let Some(acc) = slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
                merge(idx, acc);
            }
        }
        Ok(())
    }

    /// [`WorkerPool::try_run_reduce`] that re-raises a worker panic on the
    /// calling thread.
    #[allow(clippy::too_many_arguments)]
    pub fn run_reduce<T: Send>(
        &self,
        begin: i64,
        end: i64,
        grain: i64,
        max_workers: usize,
        init: &(dyn Fn(usize) -> T + Sync),
        body: &(dyn Fn(i64, i64, &mut T) + Sync),
        merge: &mut dyn FnMut(usize, T),
    ) {
        if let Err(payload) = self.try_run_reduce(begin, end, grain, max_workers, init, body, merge)
        {
            std::panic::resume_unwind(payload);
        }
    }

    /// [`WorkerPool::try_run`] that re-raises a worker panic on the calling
    /// thread.
    pub fn run(
        &self,
        begin: i64,
        end: i64,
        grain: i64,
        max_workers: usize,
        task: &(dyn Fn(i64, i64) + Sync),
    ) {
        if let Err(payload) = self.try_run(begin, end, grain, max_workers, task) {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Pick a dynamic-scheduling chunk size for a region of `trip` iterations
/// whose body costs roughly `body_cost` abstract units (e.g. bytecode
/// instructions) per iteration.
///
/// Two pressures: chunks must be *large* enough that the per-chunk claim
/// (one `fetch_add` plus, for reductions, one accumulator init + merge)
/// amortizes against `TARGET_CHUNK_COST` units of real work, and *small*
/// enough that `workers` threads each see several chunks for load balancing.
/// The result is a pure function of its arguments, so chunk boundaries —
/// and hence deterministic-merge-order reductions — are reproducible.
pub fn grain_for(trip: i64, workers: usize, body_cost: u64) -> i64 {
    const TARGET_CHUNK_COST: u64 = 16_384;
    if trip <= 0 {
        return 1;
    }
    let by_cost = (TARGET_CHUNK_COST / body_cost.max(1)).max(1) as i64;
    let workers = workers.max(1) as i64;
    // At least 4 chunks per worker when the range allows it.
    let by_balance = (trip / (workers * 4)).max(1);
    by_cost.min(by_balance).max(1)
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = q.pop() {
                    break job;
                }
                q = shared.available.wait(q).expect("pool queue poisoned");
            }
        };
        IN_REGION.with(|f| f.set(true));
        job.work(false);
        IN_REGION.with(|f| f.set(false));
        job.leave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

    fn sum_region(pool: &WorkerPool, n: i64, grain: i64, workers: usize) -> i64 {
        let acc = AtomicI64::new(0);
        pool.run(0, n, grain, workers, &|lo, hi| {
            let mut s = 0;
            for i in lo..hi {
                s += i;
            }
            acc.fetch_add(s, Ordering::Relaxed);
        });
        acc.load(Ordering::Relaxed)
    }

    #[test]
    fn covers_every_iteration_exactly_once() {
        let pool = WorkerPool::new(3);
        for n in [1i64, 7, 100, 10_000] {
            for grain in [1i64, 3, 64, 10_000] {
                assert_eq!(sum_region(&pool, n, grain, 4), n * (n - 1) / 2);
            }
        }
    }

    #[test]
    fn zero_and_negative_ranges_return_immediately() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.run(0, 0, 1, 4, &|_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        pool.run(5, 5, 1, 4, &|_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        pool.run(10, 3, 1, 4, &|_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        // And the pool still works afterwards.
        assert_eq!(sum_region(&pool, 10, 2, 3), 45);
    }

    #[test]
    fn panic_propagates_and_pool_stays_usable() {
        let pool = WorkerPool::new(3);
        for round in 0..3 {
            let err = pool
                .try_run(0, 1000, 8, 4, &|lo, hi| {
                    for i in lo..hi {
                        assert!(i != 500, "boom in round {round}");
                    }
                })
                .unwrap_err();
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(msg.contains("boom"), "unexpected payload: {msg}");
            // The same pool must keep scheduling work correctly.
            assert_eq!(sum_region(&pool, 1000, 8, 4), 1000 * 999 / 2);
        }
    }

    #[test]
    fn nested_regions_run_inline_without_deadlock() {
        let pool = WorkerPool::new(2);
        let acc = AtomicI64::new(0);
        pool.run(0, 8, 1, 3, &|lo, hi| {
            for _ in lo..hi {
                // A nested region from inside a worker: must not deadlock,
                // and must still cover its range.
                pool.run(0, 16, 4, 3, &|ilo, ihi| {
                    acc.fetch_add(ihi - ilo, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(acc.load(Ordering::Relaxed), 8 * 16);
    }

    #[test]
    fn grain_larger_than_range_uses_single_chunk() {
        let pool = WorkerPool::new(2);
        let chunks = AtomicUsize::new(0);
        pool.run(0, 10, 1_000_000, 4, &|lo, hi| {
            assert_eq!((lo, hi), (0, 10));
            chunks.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(chunks.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn max_workers_one_runs_inline() {
        let pool = WorkerPool::new(2);
        let main = std::thread::current().id();
        pool.run(0, 100, 1, 1, &|_, _| {
            assert_eq!(std::thread::current().id(), main);
        });
    }

    #[test]
    fn run_reduce_merges_in_ascending_chunk_order() {
        let pool = WorkerPool::new(3);
        for _ in 0..8 {
            // Non-associative combine: string concatenation of chunk sums.
            // Deterministic merge order means every run builds the same
            // string regardless of which worker ran which chunk.
            let mut log = String::new();
            let mut total = 0i64;
            pool.run_reduce(
                0,
                100,
                7,
                4,
                &|_| 0i64,
                &|lo, hi, acc| {
                    for i in lo..hi {
                        *acc += i;
                    }
                },
                &mut |idx, acc| {
                    log.push_str(&format!("{idx}:{acc};"));
                    total += acc;
                },
            );
            assert_eq!(total, 100 * 99 / 2);
            assert_eq!(
                log,
                "0:21;1:70;2:119;3:168;4:217;5:266;6:315;7:364;8:413;9:462;\
                 10:511;11:560;12:609;13:658;14:197;"
            );
        }
    }

    #[test]
    fn run_reduce_zero_range_and_panic() {
        let pool = WorkerPool::new(2);
        let mut merges = 0usize;
        pool.run_reduce(5, 5, 1, 4, &|_| 0i64, &|_, _, _| {}, &mut |_, _| {
            merges += 1;
        });
        assert_eq!(merges, 0);
        let err = pool
            .try_run_reduce(
                0,
                100,
                4,
                4,
                &|_| 0i64,
                &|lo, hi, acc| {
                    for i in lo..hi {
                        assert!(i != 50, "reduce boom");
                        *acc += i;
                    }
                },
                &mut |_, _| panic!("merge must not run after a chunk panic"),
            )
            .unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("reduce boom"), "unexpected payload: {msg}");
        // Pool still usable.
        assert_eq!(sum_region(&pool, 100, 8, 3), 100 * 99 / 2);
    }

    #[test]
    fn grain_heuristic_bounds() {
        // Cheap bodies get big chunks, capped by the cost target.
        assert_eq!(grain_for(1 << 20, 4, 1), 16_384);
        // Short ranges are capped by load balancing instead.
        assert_eq!(grain_for(64, 4, 1), 4);
        // Expensive bodies get small chunks, never below 1.
        assert_eq!(grain_for(1 << 20, 4, 1 << 30), 1);
        // Tiny trip counts stay valid.
        assert_eq!(grain_for(1, 8, 10), 1);
        assert_eq!(grain_for(0, 8, 10), 1);
        // Deterministic: same inputs, same grain.
        assert_eq!(grain_for(12345, 7, 99), grain_for(12345, 7, 99));
    }

    #[test]
    fn stats_attribute_chunks_and_regions() {
        let pool = WorkerPool::new(2);
        let before = pool.stats();
        // 100 iterations in grain-4 chunks: 25 chunks split between the
        // submitter (back end) and helpers (front end).
        assert_eq!(sum_region(&pool, 100, 4, 3), 100 * 99 / 2);
        let d = pool.stats().delta_since(&before);
        assert_eq!(d.regions + d.inline_regions, 1);
        assert_eq!(d.chunks_submitter + d.chunks_helper, 25);
        assert!(d.imbalance_pct().is_some());
        // An inline region (max_workers == 1) claims no chunks.
        let before = pool.stats();
        assert_eq!(sum_region(&pool, 10, 1, 1), 45);
        let d = pool.stats().delta_since(&before);
        assert_eq!((d.regions, d.inline_regions), (0, 1));
        assert_eq!(d.chunks_submitter + d.chunks_helper, 0);
    }

    #[test]
    fn imbalance_pct_edges() {
        let even = PoolStatsSnapshot {
            chunks_submitter: 8,
            chunks_helper: 8,
            ..PoolStatsSnapshot::default()
        };
        assert_eq!(even.imbalance_pct(), Some(0));
        let lopsided = PoolStatsSnapshot {
            chunks_submitter: 10,
            chunks_helper: 0,
            ..PoolStatsSnapshot::default()
        };
        assert_eq!(lopsided.imbalance_pct(), Some(100));
        assert_eq!(PoolStatsSnapshot::default().imbalance_pct(), None);
    }

    #[test]
    fn global_pool_is_shared_and_reusable() {
        let pool = WorkerPool::global();
        assert!(pool.background_workers() >= 1);
        assert_eq!(sum_region(pool, 5000, 16, 4), 5000i64 * 4999 / 2);
        assert_eq!(sum_region(pool, 5000, 16, 4), 5000i64 * 4999 / 2);
    }
}
