//! Child-process helpers: run a command to completion with a hard deadline.
//!
//! `std::process` has no built-in wait-with-timeout, so a miscompiled
//! infinite loop (or a wedged compiler) would hang any harness that shells
//! out. [`output_with_timeout`] is the shared guard: it drains the child's
//! pipes on reader threads (avoiding the pipe-full deadlock of polling
//! without reading) while polling `try_wait`, and kills the child when the
//! deadline passes.

use std::io::Read;
use std::process::{Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// What a deadline-guarded child produced.
#[derive(Debug)]
pub struct TimedOutput {
    /// Exit status. When `timed_out` is set this is the kill status, not a
    /// real exit code.
    pub status: ExitStatus,
    /// Everything the child wrote to stdout before exiting or being killed.
    pub stdout: Vec<u8>,
    /// Everything the child wrote to stderr before exiting or being killed.
    pub stderr: Vec<u8>,
    /// Whether the child exceeded the deadline and was killed.
    pub timed_out: bool,
}

impl TimedOutput {
    /// Whether the child exited on its own with success.
    pub fn success(&self) -> bool {
        !self.timed_out && self.status.success()
    }
}

fn drain(stream: Option<impl Read>) -> Vec<u8> {
    let mut buf = Vec::new();
    if let Some(mut s) = stream {
        let _ = s.read_to_end(&mut buf);
    }
    buf
}

/// Run `cmd` to completion, killing it if it runs past `timeout`.
///
/// stdout/stderr are captured (piped); stdin is whatever the caller
/// configured on `cmd`.
///
/// # Errors
///
/// Propagates spawn/wait I/O errors. A timeout is *not* an `Err` — it is
/// reported through [`TimedOutput::timed_out`] so callers can surface a
/// structured error with their own context.
pub fn output_with_timeout(
    cmd: &mut Command,
    timeout: Duration,
) -> std::io::Result<TimedOutput> {
    cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
    let mut child = cmd.spawn()?;
    let out_pipe = child.stdout.take();
    let err_pipe = child.stderr.take();
    // Reader threads keep both pipes drained; a child that fills a pipe
    // while we only poll try_wait would otherwise block forever.
    let t_out = std::thread::spawn(move || drain(out_pipe));
    let t_err = std::thread::spawn(move || drain(err_pipe));
    let deadline = Instant::now() + timeout;
    let (status, timed_out) = loop {
        match child.try_wait() {
            Ok(Some(status)) => break (status, false),
            Ok(None) => {}
            Err(e) => {
                // Never leak the child on an errored wait path: without the
                // kill+reap it would run on as an orphan and linger as a
                // zombie after exiting — under concurrent spawns those pile
                // up until the PID table fills.
                let _ = child.kill();
                let _ = child.wait();
                return Err(e);
            }
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            match child.wait() {
                Ok(status) => break (status, true),
                Err(e) => {
                    let _ = child.wait();
                    return Err(e);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    // On timeout the kill only reaps the direct child; grandchildren that
    // inherited the pipes can keep them open long after, so joining the
    // reader threads could block for their whole lifetime. Forfeit the
    // partial output instead — the threads finish (and free) on their own
    // once the last writer closes.
    let (stdout, stderr) = if timed_out {
        (Vec::new(), Vec::new())
    } else {
        (
            t_out.join().unwrap_or_default(),
            t_err.join().unwrap_or_default(),
        )
    };
    Ok(TimedOutput {
        status,
        stdout,
        stderr,
        timed_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_child_completes_with_output() {
        let out = output_with_timeout(
            Command::new("sh").args(["-c", "echo hi; echo oops >&2"]),
            Duration::from_secs(10),
        )
        .expect("spawns");
        assert!(out.success());
        assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "hi");
        assert_eq!(String::from_utf8_lossy(&out.stderr).trim(), "oops");
    }

    #[test]
    fn hung_child_is_killed() {
        let start = Instant::now();
        let out = output_with_timeout(
            Command::new("sh").args(["-c", "sleep 60"]),
            Duration::from_millis(200),
        )
        .expect("spawns");
        assert!(out.timed_out);
        assert!(!out.success());
        assert!(start.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn child_filling_pipe_does_not_deadlock() {
        // Write far more than a pipe buffer holds; without reader threads
        // this would wedge the poll loop.
        let out = output_with_timeout(
            Command::new("sh").args(["-c", "yes x | head -c 1000000"]),
            Duration::from_secs(30),
        )
        .expect("spawns");
        assert!(out.success());
        assert_eq!(out.stdout.len(), 1_000_000);
    }

    /// PIDs of our direct children currently in zombie (unreaped) state.
    #[cfg(target_os = "linux")]
    fn zombie_children() -> Vec<u32> {
        let me = std::process::id();
        let mut zs = Vec::new();
        let Ok(rd) = std::fs::read_dir("/proc") else { return zs };
        for e in rd.flatten() {
            let Some(pid) = e.file_name().to_str().and_then(|s| s.parse::<u32>().ok()) else {
                continue;
            };
            let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
                continue;
            };
            // stat: `pid (comm) state ppid ...` — comm may hold spaces, so
            // parse from the last ')'.
            let Some(rest) = stat.rsplit_once(')').map(|(_, r)| r) else { continue };
            let mut fields = rest.split_whitespace();
            let state = fields.next().unwrap_or("");
            let ppid: u32 = fields.next().and_then(|p| p.parse().ok()).unwrap_or(0);
            if state == "Z" && ppid == me {
                zs.push(pid);
            }
        }
        zs
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn overlapping_timeouts_leave_no_zombies() {
        // 8 children all blow their deadline at once; every kill path must
        // also reap. A leaked wait would leave `Z` entries under our PID
        // for the rest of the process lifetime.
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        let out = output_with_timeout(
                            Command::new("sleep").arg("60"),
                            Duration::from_millis(100),
                        )
                        .expect("spawns");
                        assert!(out.timed_out);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        // Tolerate transient zombies from concurrently-running tests (a
        // child is briefly `Z` between its exit and the harness's wait);
        // only a *persistent* zombie is a leak.
        let mut last = Vec::new();
        for _ in 0..50 {
            last = zombie_children();
            if last.is_empty() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("leaked zombie children: {last:?}");
    }
}
