//! Genuinely thread-parallel execution of legality-checked schedules.
//!
//! The instrumented interpreter ([`crate::Runtime::run`]) is deterministic
//! and sequential; this module provides the complementary proof that a
//! schedule marked parallel by the compiler really is data-race free: `OpenMp`
//! loops are executed on real threads (the persistent [`crate::pool`]
//! workers, with dynamic chunking), with `ReduceTo` statements marked
//! `atomic` serialized through a per-tensor mutex — the same lowering a CUDA
//! backend would do with `atomicAdd` (paper Fig. 13(e)).
//!
//! All storage is widened to `f64` (exact for the i32 index tensors the
//! workloads use). Safety relies on the scheduler's dependence analysis:
//! distinct iterations of a parallel loop touch disjoint elements except
//! through atomic reductions, which take the tensor's lock.
//!
//! Under `debug_assertions` that safety argument is *checked*, not assumed:
//! every non-atomic write inside a parallel region records its element
//! index, and a write to an element already written by a **different**
//! worker of the same region panics with the tensor name and offset — the
//! exact data race the `unsafe impl Sync` below relies on never happening.

use crate::error::RuntimeError;
use crate::interp::apply_reduce;
use crate::pool::WorkerPool;
use crate::value::{Scalar, TensorVal};
use ft_ir::{
    AccessType, DataType, Expr, Func, ParallelScope, ReduceOp, Stmt, StmtKind, UnaryOp,
};
use ft_trace::{TraceSink, TRACK_RUNTIME};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// A tensor shared across worker threads.
#[derive(Clone)]
struct Shared {
    data: Arc<SharedVec>,
    shape: Vec<usize>,
    dtype: DataType,
    lock: Arc<Mutex<()>>,
    /// Debug-only write log: element offset → (parallel region, worker)
    /// of its last non-atomic write. Conflicts within one region across
    /// workers are the races the dependence analysis must rule out.
    #[cfg(debug_assertions)]
    writes: Arc<Mutex<HashMap<usize, (u64, u64)>>>,
}

/// Identity of the executing worker: (parallel-region id, chunk id).
/// `(0, 0)` is the serial main thread; region ids are globally unique per
/// pool fork, so writes from *different* regions never conflict (regions on
/// one thread are sequenced; see the module docs). Within one region every
/// dynamically claimed chunk gets its own id, so overlapping writes from
/// distinct chunks are flagged even when one pool thread ran both.
type WorkerId = (u64, u64);

#[cfg(debug_assertions)]
fn next_ids() -> &'static std::sync::atomic::AtomicU64 {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    &NEXT
}

/// Best-effort text of a panic payload, for the re-raised message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct SharedVec(std::cell::UnsafeCell<Vec<f64>>);

// SAFETY: concurrent access is only performed on disjoint elements (validated
// by the compiler's dependence analysis) or under `Shared::lock`.
unsafe impl Sync for SharedVec {}
unsafe impl Send for SharedVec {}

impl Shared {
    fn new(dtype: DataType, shape: &[usize]) -> Shared {
        let n: usize = shape.iter().product();
        Shared {
            data: Arc::new(SharedVec(std::cell::UnsafeCell::new(vec![0.0; n]))),
            shape: shape.to_vec(),
            dtype,
            lock: Arc::new(Mutex::new(())),
            #[cfg(debug_assertions)]
            writes: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Debug-only overlap checker: record a non-atomic write at `off` by
    /// `who` and panic if another worker of the *same* parallel region
    /// already wrote this element — a write-write race the dependence
    /// analysis should have excluded. (Read-write races are out of scope:
    /// only writes are logged.)
    #[cfg(debug_assertions)]
    fn check_overlap(&self, off: usize, who: WorkerId, name: &str) {
        if who.0 == 0 {
            return; // serial execution cannot race
        }
        if let Some(prev) = self.writes.lock().insert(off, who) {
            assert!(
                !(prev.0 == who.0 && prev.1 != who.1),
                "data race: non-atomic overlapping writes to `{name}`[{off}] from \
                 workers {} and {} of parallel region {} — a dependence check was skipped",
                prev.1,
                who.1,
                who.0
            );
        }
    }

    #[cfg(not(debug_assertions))]
    #[inline(always)]
    fn check_overlap(&self, _off: usize, _who: WorkerId, _name: &str) {}

    /// Wrap a pooled backing vector (already sized to the shape's element
    /// count) instead of allocating fresh zeroed storage.
    fn from_vec(dtype: DataType, shape: &[usize], v: Vec<f64>) -> Shared {
        debug_assert_eq!(v.len(), shape.iter().product::<usize>());
        Shared {
            data: Arc::new(SharedVec(std::cell::UnsafeCell::new(v))),
            shape: shape.to_vec(),
            dtype,
            lock: Arc::new(Mutex::new(())),
            #[cfg(debug_assertions)]
            writes: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    fn from_tensor(t: &TensorVal) -> Shared {
        let s = Shared::new(t.dtype(), t.shape());
        let v = unsafe { &mut *s.data.0.get() };
        for (i, x) in t.to_f64_vec().into_iter().enumerate() {
            v[i] = x;
        }
        s
    }

    fn to_tensor(&self) -> TensorVal {
        let v = unsafe { &*self.data.0.get() };
        let mut t = TensorVal::zeros(self.dtype, &self.shape);
        for (i, &x) in v.iter().enumerate() {
            t.set_flat(
                i,
                if self.dtype.is_float() {
                    Scalar::Float(x)
                } else {
                    Scalar::Int(x as i64)
                },
            );
        }
        t
    }

    fn offset(&self, idx: &[i64], name: &str) -> Result<usize, RuntimeError> {
        if idx.len() != self.shape.len()
            || idx
                .iter()
                .zip(&self.shape)
                .any(|(&i, &e)| i < 0 || i as usize >= e)
        {
            return Err(RuntimeError::IndexOutOfBounds {
                name: name.to_string(),
                index: idx.to_vec(),
                shape: self.shape.clone(),
            });
        }
        let mut off = 0usize;
        for (&i, &e) in idx.iter().zip(&self.shape) {
            off = off * e + i as usize;
        }
        Ok(off)
    }

    /// A fresh tensor of the same shape/dtype filled with `fill` verbatim
    /// (no dtype rounding — used for reduction identities like `-inf`).
    fn with_fill(dtype: DataType, shape: &[usize], fill: f64) -> Shared {
        let s = Shared::new(dtype, shape);
        unsafe { (*s.data.0.get()).fill(fill) };
        s
    }

    fn numel(&self) -> usize {
        self.shape.iter().product()
    }

    fn get(&self, off: usize) -> f64 {
        unsafe { (&*self.data.0.get())[off] }
    }

    fn set(&self, off: usize, v: f64) {
        let stored = match self.dtype {
            DataType::F32 => v as f32 as f64,
            DataType::F64 => v,
            _ => v.trunc(),
        };
        unsafe {
            (&mut *self.data.0.get())[off] = stored;
        }
    }
}

/// Largest reduction target (elements) worth privatizing: above this the
/// per-chunk identity fill + merge sweep costs more than mutex contention
/// saves.
const PRIVATIZE_NUMEL_CAP: usize = 16_384;

/// Identity element of `op` over the threaded backend's f64 storage.
fn reduce_identity(op: ReduceOp, dtype: DataType) -> f64 {
    match (op, dtype.is_float()) {
        (ReduceOp::Add, _) => 0.0,
        (ReduceOp::Mul, _) => 1.0,
        (ReduceOp::Min, true) => f64::INFINITY,
        (ReduceOp::Min, false) => i64::MAX as f64,
        (ReduceOp::Max, true) => f64::NEG_INFINITY,
        (ReduceOp::Max, false) => i64::MIN as f64,
    }
}

/// Atomic-reduction targets of a parallel body that can take per-chunk
/// private accumulators: every atomic `ReduceTo` to the tensor uses a single
/// operator, and the body never reads or plain-stores the tensor — so
/// iterations only fold values in, and the deterministic ascending-chunk
/// merge restores serial semantics up to reassociation. Loop-local
/// `VarDef`s are excluded (each chunk clones those anyway), as is every
/// body containing an opaque `LibCall`.
fn privatizable_reductions(body: &Stmt) -> Vec<(String, ReduceOp)> {
    #[derive(Default)]
    struct Scan {
        locals: HashSet<String>,
        loaded: HashSet<String>,
        stored: HashSet<String>,
        reduced: BTreeMap<String, Option<ReduceOp>>,
        libcall: bool,
    }
    impl ft_ir::visit::Visitor for Scan {
        fn visit_stmt(&mut self, s: &Stmt) {
            match &s.kind {
                StmtKind::VarDef { name, .. } => {
                    self.locals.insert(name.clone());
                }
                StmtKind::Store { var, .. } => {
                    self.stored.insert(var.clone());
                }
                StmtKind::ReduceTo {
                    var, op, atomic, ..
                } => {
                    if *atomic {
                        let slot = self.reduced.entry(var.clone()).or_insert(Some(*op));
                        if *slot != Some(*op) {
                            *slot = None;
                        }
                    } else {
                        // Non-atomic reduces write provably disjoint
                        // elements; leave them on the direct path.
                        self.stored.insert(var.clone());
                    }
                }
                StmtKind::LibCall { .. } => self.libcall = true,
                _ => {}
            }
            ft_ir::visit::walk_stmt(self, s);
        }
        fn visit_expr(&mut self, e: &Expr) {
            if let Expr::Load { var, .. } = e {
                self.loaded.insert(var.clone());
            }
            ft_ir::visit::walk_expr(self, e);
        }
    }
    let mut sc = Scan::default();
    use ft_ir::visit::Visitor as _;
    sc.visit_stmt(body);
    if sc.libcall {
        return Vec::new();
    }
    let Scan {
        locals,
        loaded,
        stored,
        reduced,
        ..
    } = sc;
    reduced
        .into_iter()
        .filter(|(var, _)| {
            !locals.contains(var) && !loaded.contains(var) && !stored.contains(var)
        })
        .filter_map(|(var, op)| Some((var, op?)))
        .collect()
}

#[derive(Clone)]
struct TCtx {
    tensors: HashMap<String, Shared>,
    scalars: HashMap<String, i64>,
    threads: usize,
    /// (region, worker) identity for the overlap checker; `(0, 0)` outside
    /// any parallel region (and always in release builds).
    who: WorkerId,
    /// Wall-clock span reporting for fork-join regions; `None` = untraced.
    sink: Option<TraceSink>,
    /// Scope-exit buffer recycling for `VarDef` storage, keyed by statement
    /// id. Only the serial coordinator draws from it — worker clones clear
    /// it, so loop-local defs inside parallel bodies stay fresh-per-chunk.
    pool: Option<Arc<Mutex<crate::arena::ThreadedBufPool>>>,
}

impl TCtx {
    fn eval(&self, e: &Expr) -> Result<f64, RuntimeError> {
        Ok(match e {
            Expr::IntConst(v) => *v as f64,
            Expr::FloatConst(v) => *v,
            Expr::BoolConst(v) => *v as i64 as f64,
            Expr::Var(n) => *self
                .scalars
                .get(n)
                .ok_or_else(|| RuntimeError::UndefinedName(n.clone()))?
                as f64,
            Expr::Load { var, indices } => {
                let t = self
                    .tensors
                    .get(var)
                    .ok_or_else(|| RuntimeError::UndefinedName(var.clone()))?;
                let idx = self.eval_indices(indices)?;
                t.get(t.offset(&idx, var)?)
            }
            Expr::Unary { op, a } => {
                let x = self.eval(a)?;
                match op {
                    UnaryOp::Neg => -x,
                    UnaryOp::Not => (x == 0.0) as i64 as f64,
                    UnaryOp::Abs => x.abs(),
                    UnaryOp::Sqrt => x.sqrt(),
                    UnaryOp::Exp => x.exp(),
                    UnaryOp::Ln => x.ln(),
                    UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
                    UnaryOp::Tanh => x.tanh(),
                    UnaryOp::Sign => {
                        if x > 0.0 {
                            1.0
                        } else if x < 0.0 {
                            -1.0
                        } else {
                            0.0
                        }
                    }
                }
            }
            Expr::Binary { op, a, b } => {
                use ft_ir::BinaryOp::*;
                let x = self.eval(a)?;
                let y = self.eval(b)?;
                match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => {
                        // Integer-like operands use floor semantics.
                        if x.fract() == 0.0 && y.fract() == 0.0 {
                            if y == 0.0 {
                                return Err(RuntimeError::DivisionByZero);
                            }
                            (x as i64).div_euclid(y as i64) as f64
                        } else {
                            x / y
                        }
                    }
                    Mod => {
                        if y == 0.0 {
                            return Err(RuntimeError::DivisionByZero);
                        }
                        (x as i64).rem_euclid(y as i64) as f64
                    }
                    Min => x.min(y),
                    Max => x.max(y),
                    Pow => x.powf(y),
                    Eq => (x == y) as i64 as f64,
                    Ne => (x != y) as i64 as f64,
                    Lt => (x < y) as i64 as f64,
                    Le => (x <= y) as i64 as f64,
                    Gt => (x > y) as i64 as f64,
                    Ge => (x >= y) as i64 as f64,
                    And => ((x != 0.0) && (y != 0.0)) as i64 as f64,
                    Or => ((x != 0.0) || (y != 0.0)) as i64 as f64,
                }
            }
            Expr::Select {
                cond,
                then,
                otherwise,
            } => {
                if self.eval(cond)? != 0.0 {
                    self.eval(then)?
                } else {
                    self.eval(otherwise)?
                }
            }
            Expr::Cast { dtype, a } => {
                let x = self.eval(a)?;
                match dtype {
                    DataType::F32 => x as f32 as f64,
                    DataType::F64 => x,
                    _ => x.trunc(),
                }
            }
        })
    }

    fn eval_indices(&self, indices: &[Expr]) -> Result<Vec<i64>, RuntimeError> {
        indices.iter().map(|e| Ok(self.eval(e)? as i64)).collect()
    }

    fn exec(&mut self, s: &Stmt) -> Result<(), RuntimeError> {
        match &s.kind {
            StmtKind::Block(stmts) => {
                for st in stmts {
                    self.exec(st)?;
                }
                Ok(())
            }
            StmtKind::Empty | StmtKind::LibCall { .. } => Ok(()),
            StmtKind::VarDef {
                name,
                shape,
                dtype,
                body,
                ..
            } => {
                let sh: Vec<usize> = shape
                    .iter()
                    .map(|e| Ok(self.eval(e)? as usize))
                    .collect::<Result<_, RuntimeError>>()?;
                let shared = match &self.pool {
                    Some(pool) => {
                        let n: usize = sh.iter().product();
                        Shared::from_vec(*dtype, &sh, pool.lock().take(s.id, n))
                    }
                    None => Shared::new(*dtype, &sh),
                };
                let prev = self.tensors.insert(name.clone(), shared);
                let r = self.exec(body);
                let retired = match prev {
                    Some(p) => self.tensors.insert(name.clone(), p),
                    None => self.tensors.remove(name),
                };
                // Reclaim the def's storage for the next entry of this
                // scope; a surviving clone (worker still holding it) just
                // drops normally.
                if let (Some(pool), Some(sh)) = (&self.pool, retired) {
                    if let Ok(cell) = Arc::try_unwrap(sh.data) {
                        pool.lock().put(s.id, cell.0.into_inner());
                    }
                }
                r
            }
            StmtKind::For {
                iter,
                begin,
                end,
                property,
                body,
            } => {
                let b = self.eval(begin)? as i64;
                let e = self.eval(end)? as i64;
                if property.parallel == ParallelScope::Serial || e - b <= 1 || self.threads <= 1 {
                    let saved = self.scalars.get(iter).copied();
                    for i in b..e {
                        self.scalars.insert(iter.clone(), i);
                        self.exec(body)?;
                    }
                    match saved {
                        Some(v) => {
                            self.scalars.insert(iter.clone(), v);
                        }
                        None => {
                            self.scalars.remove(iter);
                        }
                    }
                    Ok(())
                } else {
                    // Real fork-join on the persistent pool: workers claim
                    // `grain`-sized chunks dynamically, so irregular inner
                    // bounds (SoftRas/GAT) stay balanced.
                    let n = e - b;
                    let workers = (self.threads as i64).min(n);
                    let grain = (n / (workers * 4)).max(1);
                    // A runtime `cache_reduce`: single-op atomic reduction
                    // targets never otherwise touched by the body fold into
                    // per-chunk private accumulators merged in ascending
                    // chunk order, instead of serializing every update
                    // through the tensor mutex.
                    let privatized: Vec<(String, ReduceOp, f64)> = privatizable_reductions(body)
                        .into_iter()
                        .filter(|(name, _)| {
                            self.tensors
                                .get(name)
                                .is_some_and(|t| t.numel() <= PRIVATIZE_NUMEL_CAP)
                        })
                        .map(|(name, op)| {
                            let id = reduce_identity(op, self.tensors[&name].dtype);
                            (name, op, id)
                        })
                        .collect();
                    let span = self.sink.as_ref().map(|s| {
                        let mut sp = s.span_on(
                            TRACK_RUNTIME,
                            "threaded",
                            &format!("parallel for {iter}"),
                        );
                        sp.arg("workers", workers);
                        sp.arg("iterations", n);
                        if !privatized.is_empty() {
                            let names: Vec<&str> =
                                privatized.iter().map(|(n, _, _)| n.as_str()).collect();
                            sp.arg("privatized", names.join(","));
                        }
                        sp
                    });
                    let result: Mutex<Result<(), RuntimeError>> = Mutex::new(Ok(()));
                    #[cfg(debug_assertions)]
                    let region = next_ids().fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    // Chunks get distinct worker ids: the overlap checker
                    // then flags overlapping writes from different chunks of
                    // one region deterministically, regardless of which pool
                    // thread happens to execute them.
                    #[cfg(debug_assertions)]
                    let chunk_ids = std::sync::atomic::AtomicU64::new(0);
                    let run_chunk = |mut local: TCtx, lo: i64, hi: i64| {
                        // Workers never share the recycling pool: loop-local
                        // defs in parallel bodies must be chunk-private, and
                        // contending on the pool mutex would serialize them.
                        local.pool = None;
                        #[cfg(debug_assertions)]
                        {
                            local.who = (
                                region,
                                chunk_ids.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                            );
                        }
                        for i in lo..hi {
                            local.scalars.insert(iter.clone(), i);
                            if let Err(err) = local.exec(body) {
                                let mut r = result.lock();
                                if r.is_ok() {
                                    *r = Err(err);
                                }
                                return;
                            }
                        }
                    };
                    let pool_result = if privatized.is_empty() {
                        let task = |lo: i64, hi: i64| run_chunk(self.clone(), lo, hi);
                        WorkerPool::global().try_run(b, e, grain, workers as usize, &task)
                    } else {
                        let init = |_idx: usize| -> Vec<Shared> {
                            privatized
                                .iter()
                                .map(|(name, _, id)| {
                                    let t = &self.tensors[name];
                                    Shared::with_fill(t.dtype, &t.shape, *id)
                                })
                                .collect()
                        };
                        let chunk_body = |lo: i64, hi: i64, acc: &mut Vec<Shared>| {
                            let mut local = self.clone();
                            for ((name, _, _), sh) in privatized.iter().zip(acc.iter()) {
                                local.tensors.insert(name.clone(), sh.clone());
                            }
                            run_chunk(local, lo, hi);
                        };
                        let mut merge = |_idx: usize, acc: Vec<Shared>| {
                            for ((name, op, _), part) in privatized.iter().zip(acc) {
                                let t = &self.tensors[name];
                                for off in 0..t.numel() {
                                    let new = apply_reduce(
                                        *op,
                                        Scalar::Float(t.get(off)),
                                        Scalar::Float(part.get(off)),
                                    )
                                    .as_f64();
                                    t.set(off, new);
                                }
                            }
                        };
                        WorkerPool::global().try_run_reduce(
                            b,
                            e,
                            grain,
                            workers as usize,
                            &init,
                            &chunk_body,
                            &mut merge,
                        )
                    };
                    if let Err(payload) = pool_result {
                        panic!("worker thread panicked: {}", panic_message(&*payload));
                    }
                    drop(span);
                    result.into_inner()
                }
            }
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => {
                if self.eval(cond)? != 0.0 {
                    self.exec(then)
                } else if let Some(o) = otherwise {
                    self.exec(o)
                } else {
                    Ok(())
                }
            }
            StmtKind::Store {
                var,
                indices,
                value,
            } => {
                let idx = self.eval_indices(indices)?;
                let v = self.eval(value)?;
                let t = self
                    .tensors
                    .get(var)
                    .ok_or_else(|| RuntimeError::UndefinedName(var.clone()))?;
                let off = t.offset(&idx, var)?;
                t.check_overlap(off, self.who, var);
                t.set(off, v);
                Ok(())
            }
            StmtKind::ReduceTo {
                var,
                indices,
                op,
                value,
                atomic,
            } => {
                let idx = self.eval_indices(indices)?;
                let v = self.eval(value)?;
                let t = self
                    .tensors
                    .get(var)
                    .ok_or_else(|| RuntimeError::UndefinedName(var.clone()))?;
                let off = t.offset(&idx, var)?;
                if !atomic {
                    t.check_overlap(off, self.who, var);
                }
                let guard = atomic.then(|| t.lock.lock());
                let old = t.get(off);
                let new = apply_reduce(*op, Scalar::Float(old), Scalar::Float(v)).as_f64();
                t.set(off, new);
                drop(guard);
                Ok(())
            }
        }
    }
}

/// Execute `func` with real threads for `OpenMp`-parallel loops.
///
/// Returns output tensors only (no counters — instrumentation belongs to the
/// sequential mode).
///
/// # Errors
///
/// Same error surface as [`crate::Runtime::run`], minus memory accounting.
pub fn run_threaded(
    func: &Func,
    inputs: &HashMap<String, TensorVal>,
    sizes: &HashMap<String, i64>,
    threads: usize,
) -> Result<HashMap<String, TensorVal>, RuntimeError> {
    run_threaded_traced(func, inputs, sizes, threads, None)
}

/// [`run_threaded`] with wall-clock span reporting: the whole run and every
/// fork-join region become spans on the runtime track of `sink`.
///
/// # Errors
///
/// Same error surface as [`run_threaded`].
pub fn run_threaded_traced(
    func: &Func,
    inputs: &HashMap<String, TensorVal>,
    sizes: &HashMap<String, i64>,
    threads: usize,
    sink: Option<&TraceSink>,
) -> Result<HashMap<String, TensorVal>, RuntimeError> {
    run_threaded_pooled(func, inputs, sizes, threads, sink, None)
}

/// [`run_threaded_traced`] with an optional `VarDef` buffer pool: the serial
/// coordinator draws loop-local storage from `pool` and returns it on scope
/// exit, so repeated runs (and repeated scope entries within one run) reuse
/// the same allocations. Workers inside parallel regions never touch the
/// pool. Results are bit-identical to the unpooled path.
pub(crate) fn run_threaded_pooled(
    func: &Func,
    inputs: &HashMap<String, TensorVal>,
    sizes: &HashMap<String, i64>,
    threads: usize,
    sink: Option<&TraceSink>,
    pool: Option<Arc<Mutex<crate::arena::ThreadedBufPool>>>,
) -> Result<HashMap<String, TensorVal>, RuntimeError> {
    let _span = sink.map(|s| {
        let mut sp = s.span_on(
            TRACK_RUNTIME,
            "runtime",
            &format!("threaded {}", func.name),
        );
        sp.arg("threads", threads.max(1));
        sp
    });
    let mut ctx = TCtx {
        tensors: HashMap::new(),
        scalars: sizes.clone(),
        threads: threads.max(1),
        who: (0, 0),
        sink: sink.cloned(),
        pool,
    };
    for sp in &func.size_params {
        if !ctx.scalars.contains_key(sp) {
            return Err(RuntimeError::UnresolvedSize(sp.clone()));
        }
    }
    for p in &func.params {
        let shape: Vec<usize> = p
            .shape
            .iter()
            .map(|e| Ok(ctx.eval(e)? as usize))
            .collect::<Result<_, RuntimeError>>()?;
        let shared = match p.atype {
            AccessType::Input | AccessType::InOut => {
                let t = inputs
                    .get(&p.name)
                    .ok_or_else(|| RuntimeError::MissingInput(p.name.clone()))?;
                if t.shape() != shape.as_slice() {
                    return Err(RuntimeError::ShapeMismatch {
                        name: p.name.clone(),
                        expected: shape,
                        actual: t.shape().to_vec(),
                    });
                }
                Shared::from_tensor(t)
            }
            _ => {
                let mut s = Shared::new(p.dtype, &shape);
                s.dtype = p.dtype;
                s
            }
        };
        ctx.tensors.insert(p.name.clone(), shared);
    }
    ctx.exec(&func.body)?;
    let mut outputs = HashMap::new();
    for p in &func.params {
        if matches!(p.atype, AccessType::Output | AccessType::InOut) {
            outputs.insert(p.name.clone(), ctx.tensors[&p.name].to_tensor());
        }
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;
    use ft_ir::ForProperty;

    fn omp() -> ForProperty {
        ForProperty::parallel(ParallelScope::OpenMp)
    }

    #[test]
    fn parallel_elementwise_matches_serial() {
        let f = Func::new("f")
            .param("x", [var("n")], DataType::F32, AccessType::Input)
            .param("y", [var("n")], DataType::F32, AccessType::Output)
            .size_param("n")
            .body(for_with(
                "i",
                0,
                var("n"),
                omp(),
                store("y", [var("i")], load("x", [var("i")]) * 3.0f32),
            ));
        let n = 1000usize;
        let x = TensorVal::from_f32(&[n], (0..n).map(|i| i as f32).collect());
        let inputs: HashMap<String, TensorVal> =
            [("x".to_string(), x.clone())].into_iter().collect();
        let sizes: HashMap<String, i64> = [("n".to_string(), n as i64)].into_iter().collect();
        let out = run_threaded(&f, &inputs, &sizes, 4).unwrap();
        let expect: Vec<f64> = (0..n).map(|i| i as f64 * 3.0).collect();
        assert_eq!(out["y"].to_f64_vec(), expect);
    }

    #[test]
    fn atomic_reduction_is_exact_for_integers() {
        // Random-access reduction (Fig. 13(e)) with atomic updates: summing
        // 1 into buckets; integer adds are associative so the result is
        // exact regardless of interleaving.
        let mut s = Stmt::new(StmtKind::ReduceTo {
            var: "hist".to_string(),
            indices: vec![Expr::cast(DataType::I64, load("idx", [var("i")]))],
            op: ReduceOp::Add,
            value: Expr::IntConst(1),
            atomic: true,
        });
        s = for_with("i", 0, var("n"), omp(), s);
        let f = Func::new("hist")
            .param("idx", [var("n")], DataType::I32, AccessType::Input)
            .param("hist", [4], DataType::I32, AccessType::Output)
            .size_param("n")
            .body(s);
        let n = 4000usize;
        let idx = TensorVal::from_i32(&[n], (0..n).map(|i| (i % 4) as i32).collect());
        let inputs: HashMap<String, TensorVal> = [("idx".to_string(), idx)].into_iter().collect();
        let sizes: HashMap<String, i64> = [("n".to_string(), n as i64)].into_iter().collect();
        let out = run_threaded(&f, &inputs, &sizes, 4).unwrap();
        assert_eq!(out["hist"].to_f64_vec(), vec![1000.0; 4]);
    }

    /// Every parallel iteration writes `y[0]` — the write-write race the
    /// overlap checker exists to catch. Worker panics surface through the
    /// scope join.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn overlap_checker_catches_parallel_write_write_race() {
        let f = Func::new("race")
            .param("x", [var("n")], DataType::F32, AccessType::Input)
            .param("y", [1], DataType::F32, AccessType::Output)
            .size_param("n")
            .body(for_with(
                "i",
                0,
                var("n"),
                omp(),
                store("y", [Expr::IntConst(0)], load("x", [var("i")])),
            ));
        let n = 1 << 14; // large enough that the 4 chunks really overlap
        let x = TensorVal::from_f32(&[n], vec![1.0; n]);
        let inputs: HashMap<String, TensorVal> = [("x".to_string(), x)].into_iter().collect();
        let sizes: HashMap<String, i64> = [("n".to_string(), n as i64)].into_iter().collect();
        let _ = run_threaded(&f, &inputs, &sizes, 4);
    }

    #[test]
    fn overlap_checker_accepts_disjoint_writes_and_atomics() {
        // Disjoint stores plus an atomic reduction to one element: legal,
        // must not trip the checker. Two parallel loops writing the same
        // elements back-to-back are distinct regions — also legal.
        let body = block([
            for_with(
                "i",
                0,
                var("n"),
                omp(),
                store("y", [var("i")], load("x", [var("i")])),
            ),
            for_with(
                "i",
                0,
                var("n"),
                omp(),
                store("y", [var("i")], load("y", [var("i")]) + 1.0f32),
            ),
            for_with(
                "i",
                0,
                var("n"),
                omp(),
                Stmt::new(StmtKind::ReduceTo {
                    var: "acc".to_string(),
                    indices: vec![],
                    op: ReduceOp::Add,
                    value: Expr::IntConst(1),
                    atomic: true,
                }),
            ),
        ]);
        let f = Func::new("legal")
            .param("x", [var("n")], DataType::F32, AccessType::Input)
            .param("y", [var("n")], DataType::F32, AccessType::Output)
            .param("acc", [] as [Expr; 0], DataType::F32, AccessType::Output)
            .size_param("n")
            .body(body);
        let n = 4096usize;
        let x = TensorVal::from_f32(&[n], (0..n).map(|i| i as f32).collect());
        let inputs: HashMap<String, TensorVal> = [("x".to_string(), x)].into_iter().collect();
        let sizes: HashMap<String, i64> = [("n".to_string(), n as i64)].into_iter().collect();
        let out = run_threaded(&f, &inputs, &sizes, 4).unwrap();
        assert_eq!(out["acc"].to_f64_vec(), vec![n as f64]);
        assert_eq!(out["y"].to_f64_vec()[10], 11.0);
    }

    #[test]
    fn errors_propagate_from_workers() {
        let f = Func::new("f")
            .param("y", [4], DataType::F32, AccessType::Output)
            .body(for_with("i", 0, 100, omp(), store("y", [var("i")], 1.0f32)));
        let err = run_threaded(&f, &HashMap::new(), &HashMap::new(), 4);
        assert!(matches!(err, Err(RuntimeError::IndexOutOfBounds { .. })));
    }
}
