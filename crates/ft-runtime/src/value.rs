//! Runtime tensor values.

use ft_ir::DataType;
use std::fmt;

/// A dense, row-major tensor value (a scalar is a 0-D tensor with one
/// element).
#[derive(Debug, Clone, PartialEq)]
pub struct TensorVal {
    dtype: DataType,
    shape: Vec<usize>,
    data: Data,
}

/// Typed backing storage.
#[derive(Debug, Clone, PartialEq)]
enum Data {
    F32(Vec<f32>),
    F64(Vec<f64>),
    I32(Vec<i32>),
    I64(Vec<i64>),
    Bool(Vec<bool>),
}

/// A scalar element, used at the interpreter boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// Integer value (covers I32/I64 storage).
    Int(i64),
    /// Floating value (covers F32/F64 storage).
    Float(f64),
    /// Boolean value.
    Bool(bool),
}

impl Scalar {
    /// Numeric value as f64 (booleans as 0/1).
    pub fn as_f64(self) -> f64 {
        match self {
            Scalar::Int(v) => v as f64,
            Scalar::Float(v) => v,
            Scalar::Bool(b) => b as i64 as f64,
        }
    }

    /// Numeric value as i64 (floats truncated toward zero).
    pub fn as_i64(self) -> i64 {
        match self {
            Scalar::Int(v) => v,
            Scalar::Float(v) => v as i64,
            Scalar::Bool(b) => b as i64,
        }
    }

    /// Truthiness.
    pub fn as_bool(self) -> bool {
        match self {
            Scalar::Int(v) => v != 0,
            Scalar::Float(v) => v != 0.0,
            Scalar::Bool(b) => b,
        }
    }
}

impl TensorVal {
    /// An all-zeros tensor.
    pub fn zeros(dtype: DataType, shape: &[usize]) -> TensorVal {
        let n: usize = shape.iter().product();
        let data = match dtype {
            DataType::F32 => Data::F32(vec![0.0; n]),
            DataType::F64 => Data::F64(vec![0.0; n]),
            DataType::I32 => Data::I32(vec![0; n]),
            DataType::I64 => Data::I64(vec![0; n]),
            DataType::Bool => Data::Bool(vec![false; n]),
        };
        TensorVal {
            dtype,
            shape: shape.to_vec(),
            data,
        }
    }

    /// Build an f32 tensor from values.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the product of `shape`.
    pub fn from_f32(shape: &[usize], data: Vec<f32>) -> TensorVal {
        assert_eq!(data.len(), shape.iter().product::<usize>());
        TensorVal {
            dtype: DataType::F32,
            shape: shape.to_vec(),
            data: Data::F32(data),
        }
    }

    /// Build an f64 tensor from values.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the product of `shape`.
    pub fn from_f64(shape: &[usize], data: Vec<f64>) -> TensorVal {
        assert_eq!(data.len(), shape.iter().product::<usize>());
        TensorVal {
            dtype: DataType::F64,
            shape: shape.to_vec(),
            data: Data::F64(data),
        }
    }

    /// Build an i32 tensor from values.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the product of `shape`.
    pub fn from_i32(shape: &[usize], data: Vec<i32>) -> TensorVal {
        assert_eq!(data.len(), shape.iter().product::<usize>());
        TensorVal {
            dtype: DataType::I32,
            shape: shape.to_vec(),
            data: Data::I32(data),
        }
    }

    /// Build an i64 tensor from values.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the product of `shape`.
    pub fn from_i64(shape: &[usize], data: Vec<i64>) -> TensorVal {
        assert_eq!(data.len(), shape.iter().product::<usize>());
        TensorVal {
            dtype: DataType::I64,
            shape: shape.to_vec(),
            data: Data::I64(data),
        }
    }

    /// Build a bool tensor from values.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the product of `shape`.
    pub fn from_bool(shape: &[usize], data: Vec<bool>) -> TensorVal {
        assert_eq!(data.len(), shape.iter().product::<usize>());
        TensorVal {
            dtype: DataType::Bool,
            shape: shape.to_vec(),
            data: Data::Bool(data),
        }
    }

    /// A 0-D f64 scalar tensor.
    pub fn scalar_f64(v: f64) -> TensorVal {
        TensorVal {
            dtype: DataType::F64,
            shape: vec![],
            data: Data::F64(vec![v]),
        }
    }

    /// Reset every element to zero in place (no reallocation).
    pub fn fill_zero(&mut self) {
        match &mut self.data {
            Data::F32(v) => v.fill(0.0),
            Data::F64(v) => v.fill(0.0),
            Data::I32(v) => v.fill(0),
            Data::I64(v) => v.fill(0),
            Data::Bool(v) => v.fill(false),
        }
    }

    /// Retarget this buffer at `(dtype, shape)` without zeroing, reusing the
    /// existing storage when possible. Returns `None` when the dtypes differ
    /// (the buffer cannot be reused), otherwise `Some(grew)` where `grew`
    /// reports whether the resize had to allocate beyond the old capacity.
    /// Shrinks keep capacity; stale elements are left as-is — callers must
    /// either [`fill_zero`](Self::fill_zero) or hold a write-before-read
    /// proof for every element.
    pub(crate) fn reuse_for(&mut self, dtype: DataType, shape: &[usize]) -> Option<bool> {
        if self.dtype != dtype {
            return None;
        }
        let n: usize = shape.iter().product();
        fn fit<T: Default + Clone>(v: &mut Vec<T>, n: usize) -> bool {
            let grew = n > v.capacity();
            v.resize(n, T::default());
            grew
        }
        let grew = match &mut self.data {
            Data::F32(v) => fit(v, n),
            Data::F64(v) => fit(v, n),
            Data::I32(v) => fit(v, n),
            Data::I64(v) => fit(v, n),
            Data::Bool(v) => fit(v, n),
        };
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        Some(grew)
    }

    /// Overwrite this buffer with a copy of `src` (dtype, shape and data),
    /// reusing the existing storage when the dtypes match. Returns `None`
    /// on a dtype mismatch, otherwise `Some(grew)` as in
    /// [`reuse_for`](Self::reuse_for).
    pub(crate) fn copy_from(&mut self, src: &TensorVal) -> Option<bool> {
        if self.dtype != src.dtype {
            return None;
        }
        fn refill<T: Clone>(dst: &mut Vec<T>, src: &[T]) -> bool {
            let grew = src.len() > dst.capacity();
            dst.clear();
            dst.extend_from_slice(src);
            grew
        }
        let grew = match (&mut self.data, &src.data) {
            (Data::F32(d), Data::F32(s)) => refill(d, s),
            (Data::F64(d), Data::F64(s)) => refill(d, s),
            (Data::I32(d), Data::I32(s)) => refill(d, s),
            (Data::I64(d), Data::I64(s)) => refill(d, s),
            (Data::Bool(d), Data::Bool(s)) => refill(d, s),
            _ => unreachable!("dtype checked above"),
        };
        self.shape.clear();
        self.shape.extend_from_slice(&src.shape);
        Some(grew)
    }

    /// Element type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Shape (empty for scalars).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.iter().product()
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.numel() * self.dtype.size_bytes()
    }

    /// The raw f32 storage, if this tensor is f32-typed.
    pub fn f32_data(&self) -> Option<&[f32]> {
        match &self.data {
            Data::F32(v) => Some(v),
            _ => None,
        }
    }

    /// The raw f64 storage, if this tensor is f64-typed.
    pub fn f64_data(&self) -> Option<&[f64]> {
        match &self.data {
            Data::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The raw i32 storage, if this tensor is i32-typed.
    pub fn i32_data(&self) -> Option<&[i32]> {
        match &self.data {
            Data::I32(v) => Some(v),
            _ => None,
        }
    }

    /// The raw i64 storage, if this tensor is i64-typed.
    pub fn i64_data(&self) -> Option<&[i64]> {
        match &self.data {
            Data::I64(v) => Some(v),
            _ => None,
        }
    }

    /// The raw bool storage, if this tensor is bool-typed.
    pub fn bool_data(&self) -> Option<&[bool]> {
        match &self.data {
            Data::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Untyped pointer to the backing storage (for handing buffers to
    /// native code). Row-major, densely packed; `bool` is one byte per
    /// element holding 0/1, matching C99 `_Bool`.
    pub(crate) fn as_ptr_untyped(&self) -> *const std::ffi::c_void {
        match &self.data {
            Data::F32(v) => v.as_ptr() as *const _,
            Data::F64(v) => v.as_ptr() as *const _,
            Data::I32(v) => v.as_ptr() as *const _,
            Data::I64(v) => v.as_ptr() as *const _,
            Data::Bool(v) => v.as_ptr() as *const _,
        }
    }

    /// Mutable untyped pointer to the backing storage.
    pub(crate) fn as_mut_ptr_untyped(&mut self) -> *mut std::ffi::c_void {
        match &mut self.data {
            Data::F32(v) => v.as_mut_ptr() as *mut _,
            Data::F64(v) => v.as_mut_ptr() as *mut _,
            Data::I32(v) => v.as_mut_ptr() as *mut _,
            Data::I64(v) => v.as_mut_ptr() as *mut _,
            Data::Bool(v) => v.as_mut_ptr() as *mut _,
        }
    }

    /// Row-major flat offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or any index is out of bounds.
    pub fn flat_index(&self, idx: &[i64]) -> usize {
        assert_eq!(
            idx.len(),
            self.shape.len(),
            "rank mismatch indexing tensor of shape {:?} with {:?}",
            self.shape,
            idx
        );
        let mut off = 0usize;
        for (d, (&i, &extent)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(
                i >= 0 && (i as usize) < extent,
                "index {i} out of bounds for dim {d} (extent {extent})"
            );
            off = off * extent + i as usize;
        }
        off
    }

    /// Read the element at a flat offset.
    pub fn get_flat(&self, off: usize) -> Scalar {
        match &self.data {
            Data::F32(v) => Scalar::Float(v[off] as f64),
            Data::F64(v) => Scalar::Float(v[off]),
            Data::I32(v) => Scalar::Int(v[off] as i64),
            Data::I64(v) => Scalar::Int(v[off]),
            Data::Bool(v) => Scalar::Bool(v[off]),
        }
    }

    /// Write the element at a flat offset, converting to the tensor's dtype.
    pub fn set_flat(&mut self, off: usize, v: Scalar) {
        match &mut self.data {
            Data::F32(d) => d[off] = v.as_f64() as f32,
            Data::F64(d) => d[off] = v.as_f64(),
            Data::I32(d) => d[off] = v.as_i64() as i32,
            Data::I64(d) => d[off] = v.as_i64(),
            Data::Bool(d) => d[off] = v.as_bool(),
        }
    }

    /// Read by multi-index.
    pub fn get(&self, idx: &[i64]) -> Scalar {
        self.get_flat(self.flat_index(idx))
    }

    /// Write by multi-index.
    pub fn set(&mut self, idx: &[i64], v: Scalar) {
        let off = self.flat_index(idx);
        self.set_flat(off, v);
    }

    /// All elements as f64 (for comparisons in tests and harnesses).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        (0..self.numel()).map(|i| self.get_flat(i).as_f64()).collect()
    }

    /// Maximum absolute elementwise difference to another tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &TensorVal) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch in comparison");
        self.to_f64_vec()
            .iter()
            .zip(other.to_f64_vec())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether all elements are within `tol` of `other`'s.
    pub fn allclose(&self, other: &TensorVal, tol: f64) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }
}

impl fmt::Display for TensorVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tensor<{:?}, {}>", self.shape, self.dtype)?;
        if self.numel() <= 8 {
            write!(f, " {:?}", self.to_f64_vec())?;
        }
        Ok(())
    }
}

/// Portable 4-lane inner-loop kernels for the vectorized bytecode
/// superinstructions (`std::simd` is unstable and external SIMD crates are
/// off the table, so these are manual 4-wide unrolls the optimizer can turn
/// into real vector code).
///
/// Bit-exactness contract: every kernel reproduces the scalar engines'
/// per-element semantics *exactly* — loads widen to `f64`, reductions round
/// back through the tensor's storage dtype after **every** combine, and
/// loop-carried accumulations keep their serial association (the 4-lane
/// unroll applies only to the independent loads/multiplies). This is what
/// lets the fast VM stay bit-identical to the interpreter while still
/// shedding per-element dispatch.
pub mod lanes {
    /// `y[i] = ((y[i] as f64) + a * (x[i] as f64)) as f32` for every `i` —
    /// the axpy shape. Elements are independent, so all four lanes of each
    /// unrolled chunk vectorize cleanly.
    pub fn axpy_f32(y: &mut [f32], a: f64, x: &[f32]) {
        debug_assert_eq!(y.len(), x.len());
        let (yc, yt) = y.split_at_mut(y.len() - y.len() % 4);
        let (xc, xt) = x.split_at(x.len() - x.len() % 4);
        for (yw, xw) in yc.chunks_exact_mut(4).zip(xc.chunks_exact(4)) {
            yw[0] = (yw[0] as f64 + a * xw[0] as f64) as f32;
            yw[1] = (yw[1] as f64 + a * xw[1] as f64) as f32;
            yw[2] = (yw[2] as f64 + a * xw[2] as f64) as f32;
            yw[3] = (yw[3] as f64 + a * xw[3] as f64) as f32;
        }
        for (yv, xv) in yt.iter_mut().zip(xt) {
            *yv = (*yv as f64 + a * *xv as f64) as f32;
        }
    }

    /// `f64` variant of [`axpy_f32`] (no narrowing round-trip).
    pub fn axpy_f64(y: &mut [f64], a: f64, x: &[f64]) {
        debug_assert_eq!(y.len(), x.len());
        for (yv, xv) in y.iter_mut().zip(x) {
            *yv += a * *xv;
        }
    }

    /// Fused load-mul-reduce for the dot-product shape: returns the final
    /// accumulator after `acc = ((acc as f64) + (x[i] as f64) * (y[i] as
    /// f64)) as f32` over every `i`, in serial order. The multiplies are
    /// unrolled 4 wide (independent); the adds stay serial because float
    /// addition is non-associative and the interpreter is the spec.
    pub fn dot_f32(acc0: f32, x: &[f32], y: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), y.len());
        let mut acc = acc0;
        let split = x.len() - x.len() % 4;
        for (xw, yw) in x[..split].chunks_exact(4).zip(y[..split].chunks_exact(4)) {
            let p = [
                xw[0] as f64 * yw[0] as f64,
                xw[1] as f64 * yw[1] as f64,
                xw[2] as f64 * yw[2] as f64,
                xw[3] as f64 * yw[3] as f64,
            ];
            acc = (acc as f64 + p[0]) as f32;
            acc = (acc as f64 + p[1]) as f32;
            acc = (acc as f64 + p[2]) as f32;
            acc = (acc as f64 + p[3]) as f32;
        }
        for (xv, yv) in x[split..].iter().zip(&y[split..]) {
            acc = (acc as f64 + *xv as f64 * *yv as f64) as f32;
        }
        acc
    }

    /// `f64` variant of [`dot_f32`]: serial-order adds, unrolled multiplies.
    pub fn dot_f64(acc0: f64, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), y.len());
        let mut acc = acc0;
        let split = x.len() - x.len() % 4;
        for (xw, yw) in x[..split].chunks_exact(4).zip(y[..split].chunks_exact(4)) {
            let p = [xw[0] * yw[0], xw[1] * yw[1], xw[2] * yw[2], xw[3] * yw[3]];
            acc += p[0];
            acc += p[1];
            acc += p[2];
            acc += p[3];
        }
        for (xv, yv) in x[split..].iter().zip(&y[split..]) {
            acc += xv * yv;
        }
        acc
    }

    /// Serial-order sum with the f32 storage round after every add
    /// (mirrors `ReduceTo Add` on an `f32` cell).
    pub fn sum_f32(acc0: f32, x: &[f32]) -> f32 {
        let mut acc = acc0;
        for v in x {
            acc = (acc as f64 + *v as f64) as f32;
        }
        acc
    }

    /// Serial-order sum over `f64` elements.
    pub fn sum_f64(acc0: f64, x: &[f64]) -> f64 {
        let mut acc = acc0;
        for v in x {
            acc += v;
        }
        acc
    }

    /// `max` fold through the same `f64::max` the interpreter's
    /// `apply_reduce` uses (NaN handling included).
    pub fn max_f32(acc0: f32, x: &[f32]) -> f32 {
        let mut acc = acc0;
        for v in x {
            acc = f64::max(acc as f64, *v as f64) as f32;
        }
        acc
    }

    /// `f64` variant of [`max_f32`].
    pub fn max_f64(acc0: f64, x: &[f64]) -> f64 {
        let mut acc = acc0;
        for v in x {
            acc = f64::max(acc, *v);
        }
        acc
    }

    /// `min` fold through `f64::min`, f32 storage round per step.
    pub fn min_f32(acc0: f32, x: &[f32]) -> f32 {
        let mut acc = acc0;
        for v in x {
            acc = f64::min(acc as f64, *v as f64) as f32;
        }
        acc
    }

    /// `f64` variant of [`min_f32`].
    pub fn min_f64(acc0: f64, x: &[f64]) -> f64 {
        let mut acc = acc0;
        for v in x {
            acc = f64::min(acc, *v);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_row_major() {
        let mut t = TensorVal::zeros(DataType::F32, &[2, 3]);
        t.set(&[1, 2], Scalar::Float(7.0));
        assert_eq!(t.flat_index(&[1, 2]), 5);
        assert_eq!(t.get(&[1, 2]).as_f64(), 7.0);
        assert_eq!(t.get(&[0, 0]).as_f64(), 0.0);
    }

    #[test]
    fn scalars_are_zero_dim() {
        let t = TensorVal::scalar_f64(3.5);
        assert_eq!(t.ndim(), 0);
        assert_eq!(t.numel(), 1);
        assert_eq!(t.get(&[]).as_f64(), 3.5);
    }

    #[test]
    fn dtype_conversion_on_set() {
        let mut t = TensorVal::zeros(DataType::I32, &[1]);
        t.set(&[0], Scalar::Float(3.9));
        assert_eq!(t.get(&[0]).as_i64(), 3);
        let mut b = TensorVal::zeros(DataType::Bool, &[1]);
        b.set(&[0], Scalar::Int(2));
        assert!(b.get(&[0]).as_bool());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let t = TensorVal::zeros(DataType::F32, &[2]);
        t.get(&[2]);
    }

    #[test]
    fn comparison_helpers() {
        let a = TensorVal::from_f32(&[3], vec![1.0, 2.0, 3.0]);
        let b = TensorVal::from_f32(&[3], vec![1.0, 2.5, 3.0]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-9);
        assert!(a.allclose(&b, 0.6));
        assert!(!a.allclose(&b, 0.4));
    }

    #[test]
    fn size_accounting() {
        let t = TensorVal::zeros(DataType::F64, &[4, 4]);
        assert_eq!(t.size_bytes(), 128);
    }
}
