//! Memory-layout transformations: `var_split`, `var_reorder`, `var_merge`
//! (paper Table 1, "Memory Layout Trans.").
//!
//! Layout changes are always legal — they re-index every access consistently
//! with the new shape — but are only applied to *locally defined* tensors
//! (a parameter's layout is part of the caller-visible ABI).

use crate::util::replace_by_id;
use crate::{Schedule, ScheduleError};
use ft_ir::mutate::{mutate_expr_walk, mutate_stmt_walk};
use ft_ir::{Expr, Mutator, Stmt, StmtId, StmtKind};
use ft_passes::const_fold_expr;

struct RewriteIdx<'a> {
    var: &'a str,
    f: &'a dyn Fn(Vec<Expr>) -> Vec<Expr>,
}

impl Mutator for RewriteIdx<'_> {
    fn mutate_expr(&mut self, e: Expr) -> Expr {
        match e {
            Expr::Load { var, indices } if var == self.var => {
                let indices = indices
                    .into_iter()
                    .map(|i| self.mutate_expr(i))
                    .collect();
                Expr::Load {
                    var,
                    indices: (self.f)(indices),
                }
            }
            other => mutate_expr_walk(self, other),
        }
    }

    fn mutate_stmt(&mut self, s: Stmt) -> Stmt {
        let s = mutate_stmt_walk(self, s);
        let Stmt { id, label, kind } = s;
        let kind = match kind {
            StmtKind::Store {
                var,
                indices,
                value,
            } if var == self.var => StmtKind::Store {
                var,
                indices: (self.f)(indices),
                value,
            },
            StmtKind::ReduceTo {
                var,
                indices,
                op,
                value,
                atomic,
            } if var == self.var => StmtKind::ReduceTo {
                var,
                indices: (self.f)(indices),
                op,
                value,
                atomic,
            },
            k => k,
        };
        Stmt { id, label, kind }
    }
}

impl Schedule {
    fn find_local_def(&self, var: &str) -> Result<(StmtId, Vec<Expr>), ScheduleError> {
        let mut found = None;
        self.func().body.walk(&mut |s| {
            if let StmtKind::VarDef { name, shape, .. } = &s.kind {
                if name == var && found.is_none() {
                    found = Some((s.id, shape.clone()));
                }
            }
        });
        found.ok_or_else(|| {
            ScheduleError::NotFound(format!(
                "local tensor `{var}` (layout of parameters is caller-owned)"
            ))
        })
    }

    fn rewrite_layout(
        &mut self,
        var: &str,
        def_id: StmtId,
        new_shape: Vec<Expr>,
        f: &dyn Fn(Vec<Expr>) -> Vec<Expr>,
    ) -> Result<(), ScheduleError> {
        let body = replace_by_id(self.func().body.clone(), def_id, &mut |s| {
            let StmtKind::VarDef {
                name,
                dtype,
                mtype,
                atype,
                body,
                ..
            } = s.kind
            else {
                unreachable!()
            };
            let new_body = RewriteIdx { var, f }.mutate_stmt(*body);
            Stmt {
                id: s.id,
                label: s.label,
                kind: StmtKind::VarDef {
                    name,
                    shape: new_shape.clone(),
                    dtype,
                    mtype,
                    atype,
                    body: Box::new(new_body),
                },
            }
        })
        .ok_or_else(|| ScheduleError::NotFound(format!("{def_id:?}")))?;
        self.func_mut().body = body;
        Ok(())
    }

    /// Split dimension `dim` of a tensor into two of extents
    /// `(ceil(n / factor), factor)`; accesses `e` become `(e / factor,
    /// e % factor)`.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::NotFound`] for parameters/unknown tensors;
    /// [`ScheduleError::Unsupported`] for a bad dimension or factor.
    pub fn var_split(
        &mut self,
        var: &str,
        dim: usize,
        factor: i64,
    ) -> Result<(), ScheduleError> {
        let args = self
            .tracing()
            .then(|| format!("(\"{var}\", {dim}, {factor})"));
        let r = self.var_split_impl(var, dim, factor);
        self.record("var_split", args, &r);
        r
    }

    fn var_split_impl(&mut self, var: &str, dim: usize, factor: i64) -> Result<(), ScheduleError> {
        if factor <= 0 {
            return Err(ScheduleError::Unsupported(
                "var_split factor must be positive".to_string(),
            ));
        }
        let (def_id, shape) = self.find_local_def(var)?;
        if dim >= shape.len() {
            return Err(ScheduleError::Unsupported(format!(
                "var_split: dimension {dim} out of range for rank {}",
                shape.len()
            )));
        }
        let mut new_shape = shape.clone();
        let n = shape[dim].clone();
        new_shape[dim] = const_fold_expr((n + (factor - 1)) / factor);
        new_shape.insert(dim + 1, Expr::IntConst(factor));
        let f = move |mut idx: Vec<Expr>| {
            let e = idx.remove(dim);
            idx.insert(dim, const_fold_expr(e.clone() / factor));
            idx.insert(dim + 1, const_fold_expr(e.rem(factor)));
            idx
        };
        self.rewrite_layout(var, def_id, new_shape, &f)
    }

    /// Permute the dimensions of a tensor (`perm[k]` = old dimension placed
    /// at new position `k`); e.g. `[1, 0]` transposes a matrix.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Unsupported`] when `perm` is not a permutation of
    /// the tensor's dimensions.
    pub fn var_reorder(&mut self, var: &str, perm: &[usize]) -> Result<(), ScheduleError> {
        let args = self.tracing().then(|| format!("(\"{var}\", {perm:?})"));
        let r = self.var_reorder_impl(var, perm);
        self.record("var_reorder", args, &r);
        r
    }

    fn var_reorder_impl(&mut self, var: &str, perm: &[usize]) -> Result<(), ScheduleError> {
        let (def_id, shape) = self.find_local_def(var)?;
        let mut check: Vec<usize> = perm.to_vec();
        check.sort_unstable();
        if check != (0..shape.len()).collect::<Vec<_>>() {
            return Err(ScheduleError::Unsupported(format!(
                "var_reorder: {perm:?} is not a permutation of 0..{}",
                shape.len()
            )));
        }
        let new_shape: Vec<Expr> = perm.iter().map(|&d| shape[d].clone()).collect();
        let perm_owned: Vec<usize> = perm.to_vec();
        let f = move |idx: Vec<Expr>| -> Vec<Expr> {
            perm_owned.iter().map(|&d| idx[d].clone()).collect()
        };
        self.rewrite_layout(var, def_id, new_shape, &f)
    }

    /// Merge dimensions `dim` and `dim + 1`; accesses `(i, j)` become
    /// `i * extent(dim + 1) + j`.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Unsupported`] when `dim + 1` is out of range.
    pub fn var_merge(&mut self, var: &str, dim: usize) -> Result<(), ScheduleError> {
        let args = self.tracing().then(|| format!("(\"{var}\", {dim})"));
        let r = self.var_merge_impl(var, dim);
        self.record("var_merge", args, &r);
        r
    }

    fn var_merge_impl(&mut self, var: &str, dim: usize) -> Result<(), ScheduleError> {
        let (def_id, shape) = self.find_local_def(var)?;
        if dim + 1 >= shape.len() {
            return Err(ScheduleError::Unsupported(format!(
                "var_merge: needs dimensions {dim} and {} in rank {}",
                dim + 1,
                shape.len()
            )));
        }
        let inner = shape[dim + 1].clone();
        let mut new_shape = shape.clone();
        let merged = const_fold_expr(shape[dim].clone() * inner.clone());
        new_shape[dim] = merged;
        new_shape.remove(dim + 1);
        let f = move |mut idx: Vec<Expr>| {
            let i = idx.remove(dim);
            let j = idx.remove(dim);
            idx.insert(dim, const_fold_expr(i * inner.clone() + j));
            idx
        };
        self.rewrite_layout(var, def_id, new_shape, &f)
    }
}
