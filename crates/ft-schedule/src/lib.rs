//! # ft-schedule — dependence-aware schedule transformations
//!
//! The complete transformation set of the FreeTensor paper's Table 1,
//! exposed as methods on [`Schedule`]:
//!
//! | group | primitives |
//! |---|---|
//! | loop | `split`, `merge`, `reorder`, `fission`, `fuse`, `swap` |
//! | parallelizing | `parallelize`, `unroll`, `blend`, `vectorize` |
//! | memory hierarchy | `cache`, `cache_reduce`, `set_mtype` |
//! | memory layout | `var_split`, `var_reorder`, `var_merge` |
//! | others | `as_lib`, `separate_tail` |
//!
//! Every transformation that can change execution order first consults the
//! dependence engine (`ft-analysis`), so — exactly as the paper argues —
//! callers (including the auto-scheduler) can *aggressively try*
//! transformations without risking miscompilation: an illegal request fails
//! with a [`ScheduleError`] instead of silently producing wrong code.
//!
//! ```
//! use ft_ir::prelude::*;
//! use ft_schedule::Schedule;
//!
//! let f = Func::new("axpy")
//!     .param("x", [1024], DataType::F32, AccessType::Input)
//!     .param("y", [1024], DataType::F32, AccessType::InOut)
//!     .body(for_(
//!         "i",
//!         0,
//!         1024,
//!         store("y", [var("i")], load("y", [var("i")]) + load("x", [var("i")])),
//!     ));
//! let mut s = Schedule::new(f);
//! let (outer, _inner) = s.split("i", 128)?;
//! s.parallelize(outer, ParallelScope::OpenMp)?;
//! # Ok::<(), ft_schedule::ScheduleError>(())
//! ```

pub mod layout;
pub mod loops;
pub mod mem;
pub mod others;
pub mod parallel;
pub mod trace;
pub mod util;

use ft_analysis::FoundDep;
use ft_ir::find::Selector;
use ft_ir::{Func, Stmt, StmtId};
use ft_trace::{Decision, TraceSink, Verdict};
use std::fmt;

/// Errors raised by schedule primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The selector did not resolve to a statement.
    NotFound(String),
    /// The transformation would violate a dependence.
    Illegal(String),
    /// The program shape is outside what the primitive supports.
    Unsupported(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NotFound(s) => write!(f, "statement not found: {s}"),
            ScheduleError::Illegal(s) => write!(f, "illegal transformation: {s}"),
            ScheduleError::Unsupported(s) => write!(f, "unsupported transformation: {s}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A function under transformation.
///
/// Methods mutate the wrapped [`Func`] in place (each is all-or-nothing:
/// on error the function is unchanged).
///
/// When a [`TraceSink`] is installed ([`Schedule::set_sink`]), every
/// primitive attempt — applied or rejected — is appended to the sink's
/// decision log, including the structured dependences
/// ([`ft_analysis::FoundDep`]) that caused a rejection. Without a sink the
/// bookkeeping reduces to a branch on a `None` field.
#[derive(Debug, Clone)]
pub struct Schedule {
    func: Func,
    sink: Option<TraceSink>,
    phase: Option<String>,
    /// Dependences captured by the legality check of the primitive currently
    /// executing; drained into its decision-log entry.
    pending_deps: Vec<FoundDep>,
}

impl Schedule {
    /// Start scheduling a function.
    pub fn new(func: Func) -> Schedule {
        Schedule {
            func,
            sink: None,
            phase: None,
            pending_deps: Vec::new(),
        }
    }

    /// Start scheduling a function, reporting every decision into `sink`.
    pub fn with_sink(func: Func, sink: TraceSink) -> Schedule {
        let mut s = Schedule::new(func);
        s.sink = Some(sink);
        s
    }

    /// Install (or remove) the decision-log sink.
    pub fn set_sink(&mut self, sink: Option<TraceSink>) {
        self.sink = sink;
    }

    /// The installed sink, if any.
    pub fn sink(&self) -> Option<&TraceSink> {
        self.sink.as_ref()
    }

    /// Label subsequent decisions as belonging to a named pass (used by the
    /// auto-scheduler so each entry records which `auto_*` pass tried it).
    pub fn set_phase(&mut self, phase: Option<String>) {
        self.phase = phase;
    }

    /// The current (transformed) function.
    pub fn func(&self) -> &Func {
        &self.func
    }

    /// Consume the schedule, returning the transformed function.
    pub fn into_func(self) -> Func {
        self.func
    }

    /// Whether a decision sink is installed (callers can skip building
    /// argument strings when it is not).
    pub(crate) fn tracing(&self) -> bool {
        self.sink.is_some()
    }

    /// Stash the dependences a legality check just reported, to be attached
    /// to the current primitive's decision-log entry.
    pub(crate) fn note_deps(&mut self, deps: &[FoundDep]) {
        if self.sink.is_some() {
            self.pending_deps.extend_from_slice(deps);
        }
    }

    /// Append a decision-log entry for a finished primitive attempt. `args`
    /// is `None` when no sink was installed at call time.
    pub(crate) fn record<T>(
        &mut self,
        primitive: &str,
        args: Option<String>,
        result: &Result<T, ScheduleError>,
    ) {
        let deps = std::mem::take(&mut self.pending_deps);
        let Some(sink) = &self.sink else { return };
        let (verdict, reason) = match result {
            Ok(_) => (Verdict::Applied, None),
            Err(e) => (Verdict::Rejected, Some(e.to_string())),
        };
        sink.decision(Decision {
            pass: self.phase.clone(),
            primitive: primitive.to_string(),
            args: args.unwrap_or_default(),
            verdict,
            reason,
            deps,
            ts_us: sink.now_us(),
        });
    }

    pub(crate) fn func_mut(&mut self) -> &mut Func {
        &mut self.func
    }

    /// Resolve a selector to a statement id.
    pub(crate) fn resolve(&self, sel: impl Into<Selector>) -> Result<StmtId, ScheduleError> {
        let sel = sel.into();
        sel.resolve(&self.func)
            .map(|s| s.id)
            .ok_or_else(|| ScheduleError::NotFound(format!("{sel:?}")))
    }

    /// Resolve a selector to a cloned statement.
    pub(crate) fn resolve_stmt(&self, sel: impl Into<Selector>) -> Result<Stmt, ScheduleError> {
        let sel = sel.into();
        sel.resolve(&self.func)
            .cloned()
            .ok_or_else(|| ScheduleError::NotFound(format!("{sel:?}")))
    }
}
