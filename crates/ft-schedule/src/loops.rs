//! Loop transformations: `split`, `merge`, `reorder`, `fission`, `fuse`,
//! `swap` (paper Table 1, "Loop").

use crate::util::{as_for, extent, peel, replace_by_id};
use crate::{Schedule, ScheduleError};
use ft_analysis::deps::{fission_illegal, fuse_illegal, reorder_illegal, swap_illegal, subtree_ids};
use ft_ir::find::Selector;
use ft_ir::mutate::subst_var_stmt;
use ft_ir::{Expr, Stmt, StmtId, StmtKind};
use ft_passes::const_fold_expr;

impl Schedule {
    /// Split a loop into two nested loops: `i -> (i.0, i.1)` with
    /// `i = begin + i.0 * factor + i.1`. Returns `(outer_id, inner_id)`.
    ///
    /// Always legal (pure re-indexing). A guard is inserted unless the
    /// extent is a constant multiple of `factor`.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::NotFound`] when the selector does not resolve, or
    /// [`ScheduleError::Unsupported`] for a non-positive factor.
    pub fn split(
        &mut self,
        loop_sel: impl Into<Selector>,
        factor: i64,
    ) -> Result<(StmtId, StmtId), ScheduleError> {
        let sel = loop_sel.into();
        let args = self.tracing().then(|| format!("({sel:?}, {factor})"));
        let r = self.split_impl(sel, factor);
        self.record("split", args, &r);
        r
    }

    fn split_impl(
        &mut self,
        loop_sel: Selector,
        factor: i64,
    ) -> Result<(StmtId, StmtId), ScheduleError> {
        if factor <= 0 {
            return Err(ScheduleError::Unsupported(
                "split factor must be positive".to_string(),
            ));
        }
        let target = self.resolve_stmt(loop_sel)?;
        let p = as_for(&target)?;
        let ext = extent(&p);
        let n_outer = const_fold_expr((ext.clone() + (factor - 1)) / factor);
        let exact = matches!(&ext, Expr::IntConst(n) if n % factor == 0);
        let outer_name = format!("{}.0", p.iter);
        let inner_name = format!("{}.1", p.iter);
        // i := begin + i.0 * factor + i.1
        let recon = const_fold_expr(
            p.begin.clone() + ft_ir::builder::var(&outer_name) * factor
                + ft_ir::builder::var(&inner_name),
        );
        let new_body = subst_var_stmt(p.body.clone(), &p.iter, &recon);
        let guarded = if exact {
            new_body
        } else {
            ft_ir::builder::if_(recon.lt(p.end.clone()), new_body)
        };
        let inner = ft_ir::builder::for_(&inner_name, 0, factor, guarded);
        let inner_id = inner.id;
        let mut property = p.property.clone();
        let outer = Stmt {
            id: p.id,
            label: target.label.clone(),
            kind: StmtKind::For {
                iter: outer_name,
                begin: Expr::IntConst(0),
                end: n_outer,
                property: std::mem::take(&mut property),
                body: Box::new(inner),
            },
        };
        let body = replace_by_id(self.func().body.clone(), p.id, &mut |_| outer.clone())
            .ok_or_else(|| ScheduleError::NotFound(format!("{:?}", p.id)))?;
        self.func_mut().body = body;
        Ok((p.id, inner_id))
    }

    /// Merge two perfectly nested loops into one: `(i, j) -> i.j` with
    /// `i = begin_i + m / ext_j`, `j = begin_j + m % ext_j`.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Unsupported`] unless `inner` is the only statement of
    /// `outer`'s body and its bounds do not depend on `outer`'s iterator.
    pub fn merge(
        &mut self,
        outer_sel: impl Into<Selector>,
        inner_sel: impl Into<Selector>,
    ) -> Result<StmtId, ScheduleError> {
        let (outer_sel, inner_sel) = (outer_sel.into(), inner_sel.into());
        let args = self
            .tracing()
            .then(|| format!("({outer_sel:?}, {inner_sel:?})"));
        let r = self.merge_impl(outer_sel, inner_sel);
        self.record("merge", args, &r);
        r
    }

    fn merge_impl(
        &mut self,
        outer_sel: Selector,
        inner_sel: Selector,
    ) -> Result<StmtId, ScheduleError> {
        let outer = self.resolve_stmt(outer_sel)?;
        let po = as_for(&outer)?;
        let inner_peeled = peel(&po.body).clone();
        let pi = as_for(&inner_peeled)?;
        let inner_id = self.resolve(inner_sel)?;
        if pi.id != inner_id {
            return Err(ScheduleError::Unsupported(
                "merge requires the inner loop to be the outer loop's only statement".to_string(),
            ));
        }
        for e in [&pi.begin, &pi.end] {
            if e.free_vars().contains(&po.iter) {
                return Err(ScheduleError::Unsupported(
                    "inner loop bounds depend on the outer iterator".to_string(),
                ));
            }
        }
        let ext_o = extent(&po);
        let ext_i = extent(&pi);
        let merged_name = format!("{}.{}", po.iter, pi.iter);
        let m = ft_ir::builder::var(&merged_name);
        let i_val = const_fold_expr(po.begin.clone() + m.clone() / ext_i.clone());
        let j_val = const_fold_expr(pi.begin.clone() + m.rem(ext_i.clone()));
        let body = subst_var_stmt(
            subst_var_stmt(pi.body.clone(), &pi.iter, &j_val),
            &po.iter,
            &i_val,
        );
        let merged = Stmt {
            id: po.id,
            label: outer.label.clone(),
            kind: StmtKind::For {
                iter: merged_name,
                begin: Expr::IntConst(0),
                end: const_fold_expr(ext_o * ext_i),
                property: po.property.clone(),
                body: Box::new(body),
            },
        };
        let body = replace_by_id(self.func().body.clone(), po.id, &mut |_| merged.clone())
            .ok_or_else(|| ScheduleError::NotFound(format!("{:?}", po.id)))?;
        self.func_mut().body = body;
        Ok(po.id)
    }

    /// Permute a perfect loop nest into the given order (outermost first).
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Illegal`] when a dependence would be reversed
    /// (paper Fig. 12); [`ScheduleError::Unsupported`] when the loops do not
    /// form a perfect nest.
    pub fn reorder(&mut self, order: &[&str]) -> Result<(), ScheduleError> {
        let args = self.tracing().then(|| format!("({order:?})"));
        let r = self.reorder_impl(order);
        self.record("reorder", args, &r);
        r
    }

    fn reorder_impl(&mut self, order: &[&str]) -> Result<(), ScheduleError> {
        if order.len() < 2 {
            return Ok(());
        }
        // Resolve each named loop.
        let ids: Vec<StmtId> = order
            .iter()
            .map(|n| self.resolve(*n))
            .collect::<Result<_, _>>()?;
        // Find the nest as written: the outermost of the requested loops must
        // contain the others as a perfect chain.
        let mut nest: Vec<(StmtId, String, Expr, Expr, ft_ir::ForProperty)> = Vec::new();
        let mut cur = self
            .func()
            .body
            .clone();
        // Locate the shallowest requested loop.
        let top_id = *ids
            .iter()
            .find(|id| {
                let sub = ft_ir::find::find_by_id(&self.func().body, **id).unwrap();
                ids.iter()
                    .all(|other| subtree_ids(sub).contains(other))
            })
            .ok_or_else(|| {
                ScheduleError::Unsupported("loops do not form a single nest".to_string())
            })?;
        cur = ft_ir::find::find_by_id(&cur, top_id).unwrap().clone();
        let innermost_body: Stmt;
        loop {
            let p = as_for(&cur)?;
            nest.push((p.id, p.iter.clone(), p.begin.clone(), p.end.clone(), p.property.clone()));
            let peeled = peel(&p.body).clone();
            if nest.len() == order.len() {
                innermost_body = peeled;
                break;
            }
            if !matches!(peeled.kind, StmtKind::For { .. }) {
                return Err(ScheduleError::Unsupported(
                    "loops do not form a perfect nest".to_string(),
                ));
            }
            cur = peeled;
        }
        let nest_ids: Vec<StmtId> = nest.iter().map(|(id, ..)| *id).collect();
        for id in &ids {
            if !nest_ids.contains(id) {
                return Err(ScheduleError::Unsupported(
                    "requested loops are not a perfect nest chain".to_string(),
                ));
            }
        }
        // Legality.
        if let Some(v) = reorder_illegal(self.func(), &nest_ids, &ids) {
            self.note_deps(&v.deps);
            return Err(ScheduleError::Illegal(v.to_string()));
        }
        // Rebuild the nest in the new order.
        let mut body = innermost_body;
        for id in ids.iter().rev() {
            let (lid, iter, begin, end, property) = nest
                .iter()
                .find(|(nid, ..)| nid == id)
                .cloned()
                .expect("checked membership");
            body = Stmt {
                id: lid,
                label: None,
                kind: StmtKind::For {
                    iter,
                    begin,
                    end,
                    property,
                    body: Box::new(body),
                },
            };
        }
        let new_body = replace_by_id(self.func().body.clone(), top_id, &mut |_| body.clone())
            .ok_or_else(|| ScheduleError::NotFound(format!("{top_id:?}")))?;
        self.func_mut().body = new_body;
        Ok(())
    }

    /// Fission a loop into two consecutive loops at the boundary *after* the
    /// statement `after_sel` (which must be a direct child of the loop body).
    /// Returns the two loop ids.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Illegal`] when separating the parts would reverse a
    /// dependence.
    pub fn fission(
        &mut self,
        loop_sel: impl Into<Selector>,
        after_sel: impl Into<Selector>,
    ) -> Result<(StmtId, StmtId), ScheduleError> {
        let (loop_sel, after_sel) = (loop_sel.into(), after_sel.into());
        let args = self
            .tracing()
            .then(|| format!("({loop_sel:?}, {after_sel:?})"));
        let r = self.fission_impl(loop_sel, after_sel);
        self.record("fission", args, &r);
        r
    }

    fn fission_impl(
        &mut self,
        loop_sel: Selector,
        after_sel: Selector,
    ) -> Result<(StmtId, StmtId), ScheduleError> {
        let target = self.resolve_stmt(loop_sel)?;
        let p = as_for(&target)?;
        let after_id = self.resolve(after_sel)?;
        let StmtKind::Block(items) = &peel(&p.body).kind else {
            return Err(ScheduleError::Unsupported(
                "fission needs a multi-statement loop body".to_string(),
            ));
        };
        let cut = items
            .iter()
            .position(|s| s.id == after_id)
            .ok_or_else(|| {
                ScheduleError::Unsupported(
                    "fission boundary must be a direct child of the loop body".to_string(),
                )
            })?
            + 1;
        if cut == items.len() {
            return Err(ScheduleError::Unsupported(
                "fission boundary is already the end of the body".to_string(),
            ));
        }
        let first_ids: std::collections::HashSet<StmtId> = items[..cut]
            .iter()
            .flat_map(subtree_ids)
            .collect();
        if let Some(v) = fission_illegal(self.func(), p.id, &|id| first_ids.contains(&id)) {
            self.note_deps(&v.deps);
            return Err(ScheduleError::Illegal(v.to_string()));
        }
        // Tensors defined before the cut but used after it would be severed;
        // reject (hoisting them is a separate concern).
        let first = Stmt::new(StmtKind::Block(items[..cut].to_vec()));
        let second_iter = format!("{}.b", p.iter);
        let second_body = subst_var_stmt(
            Stmt::new(StmtKind::Block(items[cut..].to_vec())),
            &p.iter,
            &ft_ir::builder::var(&second_iter),
        );
        let loop1 = Stmt {
            id: p.id,
            label: target.label.clone(),
            kind: StmtKind::For {
                iter: p.iter.clone(),
                begin: p.begin.clone(),
                end: p.end.clone(),
                property: p.property.clone(),
                body: Box::new(first),
            },
        };
        let loop2 = ft_ir::builder::for_(
            &second_iter,
            p.begin.clone(),
            p.end.clone(),
            second_body,
        );
        let id2 = loop2.id;
        let pair = Stmt::new(StmtKind::Block(vec![loop1, loop2]));
        let body = replace_by_id(self.func().body.clone(), p.id, &mut |_| pair.clone())
            .ok_or_else(|| ScheduleError::NotFound(format!("{:?}", p.id)))?;
        self.func_mut().body = body;
        Ok((p.id, id2))
    }

    /// Fuse two consecutive loops with equal extents into one.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Illegal`] when fusing would reverse a dependence
    /// (the paper's `dot_max` example); [`ScheduleError::Unsupported`] when
    /// the loops are not adjacent siblings with equal extents.
    pub fn fuse(
        &mut self,
        first_sel: impl Into<Selector>,
        second_sel: impl Into<Selector>,
    ) -> Result<StmtId, ScheduleError> {
        let (first_sel, second_sel) = (first_sel.into(), second_sel.into());
        let args = self
            .tracing()
            .then(|| format!("({first_sel:?}, {second_sel:?})"));
        let r = self.fuse_impl(first_sel, second_sel);
        self.record("fuse", args, &r);
        r
    }

    fn fuse_impl(
        &mut self,
        first_sel: Selector,
        second_sel: Selector,
    ) -> Result<StmtId, ScheduleError> {
        let l1 = self.resolve_stmt(first_sel)?;
        let l2 = self.resolve_stmt(second_sel)?;
        let p1 = as_for(&l1)?;
        let p2 = as_for(&l2)?;
        // Must be adjacent siblings of some block.
        let parent = ft_ir::find::find_stmt(&self.func().body, &|s| {
            matches!(&s.kind, StmtKind::Block(v)
                if v.iter().any(|x| x.id == p1.id) && v.iter().any(|x| x.id == p2.id))
        })
        .ok_or_else(|| {
            ScheduleError::Unsupported("loops to fuse must be siblings".to_string())
        })?;
        let StmtKind::Block(items) = &parent.kind else {
            unreachable!()
        };
        let pos1 = items.iter().position(|s| s.id == p1.id).unwrap();
        let pos2 = items.iter().position(|s| s.id == p2.id).unwrap();
        if pos2 != pos1 + 1 {
            return Err(ScheduleError::Unsupported(
                "loops to fuse must be adjacent".to_string(),
            ));
        }
        let e1 = extent(&p1);
        let e2 = extent(&p2);
        if const_fold_expr(e1.clone() - e2.clone()) != Expr::IntConst(0) {
            return Err(ScheduleError::Unsupported(format!(
                "loop extents differ: {e1:?} vs {e2:?}"
            )));
        }
        if let Some(v) = fuse_illegal(self.func(), p1.id, p2.id) {
            self.note_deps(&v.deps);
            return Err(ScheduleError::Illegal(v.to_string()));
        }
        // Second body re-indexed onto the first iterator (paper's "+w" shift).
        let shifted = const_fold_expr(
            ft_ir::builder::var(&p1.iter) - p1.begin.clone() + p2.begin.clone(),
        );
        let body2 = subst_var_stmt(p2.body.clone(), &p2.iter, &shifted);
        let fused_body = Stmt::new(StmtKind::Block(vec![p1.body.clone(), body2]));
        let fused = Stmt {
            id: p1.id,
            label: l1.label.clone(),
            kind: StmtKind::For {
                iter: p1.iter.clone(),
                begin: p1.begin.clone(),
                end: p1.end.clone(),
                property: p1.property.clone(),
                body: Box::new(fused_body),
            },
        };
        let parent_id = parent.id;
        let body = replace_by_id(self.func().body.clone(), parent_id, &mut |s| {
            let StmtKind::Block(items) = s.kind else {
                unreachable!()
            };
            let mut out = Vec::new();
            for st in items {
                if st.id == p1.id {
                    out.push(fused.clone());
                } else if st.id == p2.id {
                    // dropped: fused into loop 1
                } else {
                    out.push(st);
                }
            }
            Stmt {
                id: s.id,
                label: s.label,
                kind: StmtKind::Block(out),
            }
        })
        .ok_or_else(|| ScheduleError::NotFound(format!("{parent_id:?}")))?;
        self.func_mut().body = body;
        Ok(p1.id)
    }

    /// Swap two consecutive statements (including whole loops).
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Illegal`] when the statements conflict within one
    /// iteration of their common loops.
    pub fn swap(
        &mut self,
        first_sel: impl Into<Selector>,
        second_sel: impl Into<Selector>,
    ) -> Result<(), ScheduleError> {
        let (first_sel, second_sel) = (first_sel.into(), second_sel.into());
        let args = self
            .tracing()
            .then(|| format!("({first_sel:?}, {second_sel:?})"));
        let r = self.swap_impl(first_sel, second_sel);
        self.record("swap", args, &r);
        r
    }

    fn swap_impl(
        &mut self,
        first_sel: Selector,
        second_sel: Selector,
    ) -> Result<(), ScheduleError> {
        let id1 = self.resolve(first_sel)?;
        let id2 = self.resolve(second_sel)?;
        let parent = ft_ir::find::find_stmt(&self.func().body, &|s| {
            matches!(&s.kind, StmtKind::Block(v)
                if v.iter().any(|x| x.id == id1) && v.iter().any(|x| x.id == id2))
        })
        .ok_or_else(|| ScheduleError::Unsupported("statements must be siblings".to_string()))?;
        let StmtKind::Block(items) = &parent.kind else {
            unreachable!()
        };
        let pos1 = items.iter().position(|s| s.id == id1).unwrap();
        let pos2 = items.iter().position(|s| s.id == id2).unwrap();
        if pos1.abs_diff(pos2) != 1 {
            return Err(ScheduleError::Unsupported(
                "statements to swap must be adjacent".to_string(),
            ));
        }
        if let Some(v) = swap_illegal(self.func(), id1.min(id2), id1.max(id2)) {
            self.note_deps(&v.deps);
            return Err(ScheduleError::Illegal(v.to_string()));
        }
        let parent_id = parent.id;
        let body = replace_by_id(self.func().body.clone(), parent_id, &mut |s| {
            let StmtKind::Block(mut items) = s.kind else {
                unreachable!()
            };
            items.swap(pos1, pos2);
            Stmt {
                id: s.id,
                label: s.label,
                kind: StmtKind::Block(items),
            }
        })
        .ok_or_else(|| ScheduleError::NotFound(format!("{parent_id:?}")))?;
        self.func_mut().body = body;
        Ok(())
    }
}
