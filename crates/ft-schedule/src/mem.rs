//! Memory-hierarchy transformations: `cache`, `cache_reduce`, `set_mtype`
//! (paper Table 1, "Memory Hierarchy Trans."; bound inference per Fig. 14).

use crate::util::{bound_names, fresh_name, replace_by_id};
use crate::{Schedule, ScheduleError};
use ft_analysis::bounds::{symbolic_bounds, BoundsCtx, SymBounds};
use ft_analysis::to_linexpr;
use ft_ir::find::Selector;
use ft_ir::mutate::{mutate_expr_walk, mutate_stmt_walk};
use ft_ir::{DataType, Expr, MemType, Mutator, ReduceOp, Stmt, StmtId, StmtKind};
use ft_poly::LinExpr;
use ft_passes::const_fold_expr;

pub use ft_analysis::linexpr_to_expr;

/// All indexings of tensor `var` inside a sub-tree, with whether any access
/// reads / writes / reduces.
struct TensorUse {
    index_sets: Vec<Vec<Expr>>,
    reads: bool,
    writes: bool,
    reduce_ops: Vec<ReduceOp>,
}

fn collect_use(scope: &Stmt, var: &str) -> TensorUse {
    let mut u = TensorUse {
        index_sets: Vec::new(),
        reads: false,
        writes: false,
        reduce_ops: Vec::new(),
    };
    fn expr_scan(e: &Expr, var: &str, u: &mut TensorUse) {
        match e {
            Expr::Load { var: v, indices } => {
                if v == var {
                    u.reads = true;
                    u.index_sets.push(indices.clone());
                }
                for i in indices {
                    expr_scan(i, var, u);
                }
            }
            Expr::Unary { a, .. } | Expr::Cast { a, .. } => expr_scan(a, var, u),
            Expr::Binary { a, b, .. } => {
                expr_scan(a, var, u);
                expr_scan(b, var, u);
            }
            Expr::Select {
                cond,
                then,
                otherwise,
            } => {
                expr_scan(cond, var, u);
                expr_scan(then, var, u);
                expr_scan(otherwise, var, u);
            }
            _ => {}
        }
    }
    scope.walk(&mut |s| match &s.kind {
        StmtKind::Store {
            var: v,
            indices,
            value,
        } => {
            if v == var {
                u.writes = true;
                u.index_sets.push(indices.clone());
            }
            for i in indices {
                expr_scan(i, var, &mut u);
            }
            expr_scan(value, var, &mut u);
        }
        StmtKind::ReduceTo {
            var: v,
            indices,
            op,
            value,
            ..
        } => {
            if v == var {
                u.writes = true;
                u.reduce_ops.push(*op);
                u.index_sets.push(indices.clone());
            }
            for i in indices {
                expr_scan(i, var, &mut u);
            }
            expr_scan(value, var, &mut u);
        }
        StmtKind::For { begin, end, .. } => {
            expr_scan(begin, var, &mut u);
            expr_scan(end, var, &mut u);
        }
        StmtKind::If { cond, .. } => expr_scan(cond, var, &mut u),
        _ => {}
    });
    u
}

/// Rewrites accesses to `from[idx]` into `to[map(idx)]`.
struct RemapAccess<'a> {
    from: &'a str,
    to: &'a str,
    offsets: &'a [Expr], // subtracted per dimension
}

impl RemapAccess<'_> {
    fn remap(&self, indices: Vec<Expr>) -> Vec<Expr> {
        indices
            .into_iter()
            .zip(self.offsets)
            .map(|(i, off)| const_fold_expr(i - off.clone()))
            .collect()
    }
}

impl Mutator for RemapAccess<'_> {
    fn mutate_expr(&mut self, e: Expr) -> Expr {
        match e {
            Expr::Load { var, indices } if var == self.from => {
                let mapped: Vec<Expr> = indices
                    .into_iter()
                    .map(|i| self.mutate_expr(i))
                    .collect();
                Expr::Load {
                    var: self.to.to_string(),
                    indices: self.remap(mapped),
                }
            }
            other => mutate_expr_walk(self, other),
        }
    }

    fn mutate_stmt(&mut self, s: Stmt) -> Stmt {
        let s = mutate_stmt_walk(self, s);
        let Stmt { id, label, kind } = s;
        let kind = match kind {
            StmtKind::Store {
                var,
                indices,
                value,
            } if var == self.from => StmtKind::Store {
                var: self.to.to_string(),
                indices: self.remap(indices),
                value,
            },
            StmtKind::ReduceTo {
                var,
                indices,
                op,
                value,
                atomic,
            } if var == self.from => StmtKind::ReduceTo {
                var: self.to.to_string(),
                indices: self.remap(indices),
                op,
                value,
                atomic,
            },
            k => k,
        };
        Stmt { id, label, kind }
    }
}

impl Schedule {
    /// Find the element type of a tensor (parameter or local definition).
    pub(crate) fn tensor_dtype(&self, var: &str) -> Option<DataType> {
        if let Some(p) = self.func().find_param(var) {
            return Some(p.dtype);
        }
        let mut found = None;
        self.func().body.walk(&mut |s| {
            if let StmtKind::VarDef { name, dtype, .. } = &s.kind {
                if name == var {
                    found = Some(*dtype);
                }
            }
        });
        found
    }

    /// Find the declared shape of a tensor (parameter or local definition).
    pub(crate) fn tensor_shape(&self, var: &str) -> Option<Vec<Expr>> {
        if let Some(p) = self.func().find_param(var) {
            return Some(p.shape.clone());
        }
        let mut found = None;
        self.func().body.walk(&mut |s| {
            if let StmtKind::VarDef { name, shape, .. } = &s.kind {
                if name == var {
                    found = Some(shape.clone());
                }
            }
        });
        found
    }

    /// Compute, for each dimension of `var`'s accesses inside `scope`, the
    /// inclusive bounds in terms of variables defined *outside* `scope`.
    fn cache_region(
        &self,
        scope: &Stmt,
        var: &str,
        uses: &TensorUse,
    ) -> Result<Vec<SymBounds>, ScheduleError> {
        if uses.index_sets.is_empty() {
            return Err(ScheduleError::Unsupported(format!(
                "tensor `{var}` is not accessed in the cache scope"
            )));
        }
        let ndim = uses.index_sets[0].len();
        if uses.index_sets.iter().any(|s| s.len() != ndim) {
            return Err(ScheduleError::Unsupported(
                "mixed-rank accesses cannot be cached".to_string(),
            ));
        }
        // Bounds context: every loop from the root to (and inside) the scope.
        let nest = ft_ir::find::loop_nest_of(&self.func().body, scope.id)
            .ok_or_else(|| ScheduleError::NotFound(format!("{:?}", scope.id)))?;
        let mut ctx = BoundsCtx::new();
        for l in &nest.loops {
            let (Some(lo), Some(hi)) = (to_linexpr(&l.begin), to_linexpr(&l.end)) else {
                return Err(ScheduleError::Unsupported(
                    "non-affine loop bounds around the cache scope".to_string(),
                ));
            };
            ctx.push(l.iter.clone(), lo, hi - 1);
        }
        // Loops inside (and including) the scope are eliminated.
        let mut eliminate: Vec<String> = Vec::new();
        scope.walk(&mut |s| {
            if let StmtKind::For { iter, begin, end, .. } = &s.kind {
                eliminate.push(iter.clone());
                if let (Some(lo), Some(hi)) = (to_linexpr(begin), to_linexpr(end)) {
                    if !ctx.contains(iter) {
                        ctx.push(iter.clone(), lo, hi - 1);
                    }
                }
            }
        });
        let mut dims: Vec<SymBounds> = Vec::with_capacity(ndim);
        for d in 0..ndim {
            let mut bounds: Option<SymBounds> = None;
            for set in &uses.index_sets {
                let b = symbolic_bounds(&set[d], &ctx, &eliminate).ok_or_else(|| {
                    ScheduleError::Unsupported(format!(
                        "cannot infer bounds of index {:?} for caching",
                        set[d]
                    ))
                })?;
                bounds = Some(match bounds {
                    None => b,
                    Some(prev) if prev == b => prev,
                    Some(prev) => {
                        // Different access patterns: fall back to constants.
                        let all = [&prev.lower, &b.lower, &prev.upper, &b.upper];
                        if all.iter().all(|l| l.is_constant()) {
                            SymBounds {
                                lower: LinExpr::constant(
                                    prev.lower
                                        .constant_term()
                                        .min(b.lower.constant_term()),
                                ),
                                upper: LinExpr::constant(
                                    prev.upper
                                        .constant_term()
                                        .max(b.upper.constant_term()),
                                ),
                            }
                        } else {
                            return Err(ScheduleError::Unsupported(
                                "accesses with different symbolic regions cannot be cached"
                                    .to_string(),
                            ));
                        }
                    }
                });
            }
            dims.push(bounds.expect("index_sets is non-empty"));
        }
        Ok(dims)
    }


    /// Offsets and extents of the cached region, clamped to the tensor's
    /// declared bounds — guarded accesses may have rectangular hulls that
    /// poke outside the tensor (e.g. `x[i + k]` under an `i + k >= 0` guard),
    /// and the cache fill/write-back loops run unguarded.
    fn clamped_region(
        &self,
        scope: &Stmt,
        var: &str,
        dims: &[SymBounds],
    ) -> Result<(Vec<Expr>, Vec<Expr>), ScheduleError> {
        let shape = self
            .tensor_shape(var)
            .ok_or_else(|| ScheduleError::NotFound(format!("tensor `{var}`")))?;
        // Domain of the variables the bounds may reference: the loops
        // enclosing the caching point.
        let mut domain = ft_poly::System::new();
        if let Some(nest) = ft_ir::find::loop_nest_of(&self.func().body, scope.id) {
            for l in &nest.loops {
                if let (Some(lo), Some(hi)) = (to_linexpr(&l.begin), to_linexpr(&l.end)) {
                    domain.push(ft_poly::Constraint::ge(
                        LinExpr::var(l.iter.clone()),
                        lo,
                    ));
                    domain.push(ft_poly::Constraint::lt(
                        LinExpr::var(l.iter.clone()),
                        hi,
                    ));
                }
            }
        }
        let provably = |sys: ft_poly::System| sys.satisfiable() == ft_poly::Sat::Empty;
        let mut offsets = Vec::with_capacity(dims.len());
        let mut extents = Vec::with_capacity(dims.len());
        for (b, size) in dims.iter().zip(&shape) {
            // Clamp only what the polyhedral check cannot prove in-bounds:
            // guarded accesses may have rectangular hulls poking outside the
            // tensor, and the fill/write-back loops run unguarded.
            let mut lower_safe = {
                let mut sys = domain.clone();
                sys.push(ft_poly::Constraint::lt(b.lower.clone(), LinExpr::constant(0)));
                provably(sys)
            };
            let mut upper_safe = false;
            if let Some(size_lin) = to_linexpr(size) {
                let mut sys = domain.clone();
                sys.push(ft_poly::Constraint::ge(b.upper.clone(), size_lin));
                upper_safe = provably(sys);
            }
            if dims.len() != shape.len() {
                lower_safe = false;
                upper_safe = false;
            }
            let lo_raw = linexpr_to_expr(&b.lower);
            let hi_raw = linexpr_to_expr(&b.upper);
            let lo = if lower_safe {
                lo_raw.clone()
            } else {
                const_fold_expr(lo_raw.clone().max(0))
            };
            let hi = if upper_safe {
                hi_raw
            } else {
                const_fold_expr(hi_raw.min(const_fold_expr(size.clone() - 1)))
            };
            let ext = if lower_safe && upper_safe {
                // Affine difference folds symbolically: (i+m-1) - i + 1 = m.
                const_fold_expr(
                    linexpr_to_expr(&(b.upper.clone() - b.lower.clone())) + 1,
                )
            } else {
                const_fold_expr((hi - lo.clone() + 1).max(0))
            };
            offsets.push(lo);
            extents.push(ext);
        }
        Ok((offsets, extents))
    }

    /// Fetch the region of `var` touched inside `scope_sel` into a new, closer
    /// tensor before the scope, and store it back after (paper Fig. 14).
    /// Returns the cache tensor's name.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Unsupported`] when the touched region's bounds cannot
    /// be inferred (non-affine subscripts).
    pub fn cache(
        &mut self,
        scope_sel: impl Into<Selector>,
        var: &str,
        mtype: MemType,
    ) -> Result<String, ScheduleError> {
        let sel = scope_sel.into();
        let args = self
            .tracing()
            .then(|| format!("({sel:?}, \"{var}\", {mtype:?})"));
        let r = self.cache_impl(sel, var, mtype);
        self.record("cache", args, &r);
        r
    }

    fn cache_impl(
        &mut self,
        scope_sel: Selector,
        var: &str,
        mtype: MemType,
    ) -> Result<String, ScheduleError> {
        let scope = self.resolve_stmt(scope_sel)?;
        let uses = collect_use(&scope, var);
        let dims = self.cache_region(&scope, var, &uses)?;
        let dtype = self
            .tensor_dtype(var)
            .ok_or_else(|| ScheduleError::NotFound(format!("tensor `{var}`")))?;
        // Fresh names: caching `var` twice with overlapping scopes would
        // otherwise shadow the first `{var}.cache` def and capture its fill
        // iterators, silently corrupting the copy (found by the gradient
        // conformance sweep: double-`cache` of longformer's `Q`).
        let mut used = bound_names(self.func());
        let cache_name = fresh_name(&format!("{var}.cache"), &mut used);
        let (offsets, extents) = self.clamped_region(&scope, var, &dims)?;
        let iters: Vec<String> = (0..dims.len())
            .map(|d| fresh_name(&format!("{var}.c{d}"), &mut used))
            .collect();

        let fill = uses.reads.then(|| {
            build_copy_nest(&iters, &extents, |ivs| {
                let src: Vec<Expr> = offsets
                    .iter()
                    .zip(ivs)
                    .map(|(off, iv)| const_fold_expr(off.clone() + iv.clone()))
                    .collect();
                ft_ir::builder::store(
                    cache_name.clone(),
                    ivs.to_vec(),
                    Expr::Load {
                        var: var.to_string(),
                        indices: src,
                    },
                )
            })
        });
        let writeback = uses.writes.then(|| {
            build_copy_nest(&iters, &extents, |ivs| {
                let dst: Vec<Expr> = offsets
                    .iter()
                    .zip(ivs)
                    .map(|(off, iv)| const_fold_expr(off.clone() + iv.clone()))
                    .collect();
                ft_ir::builder::store(
                    var.to_string(),
                    dst,
                    Expr::Load {
                        var: cache_name.clone(),
                        indices: ivs.to_vec(),
                    },
                )
            })
        });
        let rewritten = RemapAccess {
            from: var,
            to: &cache_name,
            offsets: &offsets,
        }
        .mutate_stmt(scope.clone());
        let mut seq: Vec<Stmt> = Vec::new();
        if let Some(f) = fill {
            seq.push(f);
        }
        seq.push(rewritten);
        if let Some(w) = writeback {
            seq.push(w);
        }
        let def = ft_ir::builder::var_def(
            &cache_name,
            extents,
            dtype,
            mtype,
            Stmt::new(StmtKind::Block(seq)),
        );
        let scope_id = scope.id;
        let body = replace_by_id(self.func().body.clone(), scope_id, &mut |_| def.clone())
            .ok_or_else(|| ScheduleError::NotFound(format!("{scope_id:?}")))?;
        self.func_mut().body = body;
        Ok(cache_name)
    }

    /// Accumulate reductions into a new, closer tensor inside `scope_sel`,
    /// then reduce it back into `var` afterwards (paper `cache_reduce`).
    /// Returns the cache tensor's name.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Unsupported`] unless every access to `var` in the
    /// scope is a `ReduceTo` with one common operator.
    pub fn cache_reduce(
        &mut self,
        scope_sel: impl Into<Selector>,
        var: &str,
        mtype: MemType,
    ) -> Result<String, ScheduleError> {
        let sel = scope_sel.into();
        let args = self
            .tracing()
            .then(|| format!("({sel:?}, \"{var}\", {mtype:?})"));
        let r = self.cache_reduce_impl(sel, var, mtype);
        self.record("cache_reduce", args, &r);
        r
    }

    fn cache_reduce_impl(
        &mut self,
        scope_sel: Selector,
        var: &str,
        mtype: MemType,
    ) -> Result<String, ScheduleError> {
        let scope = self.resolve_stmt(scope_sel)?;
        let uses = collect_use(&scope, var);
        if uses.reads || uses.reduce_ops.is_empty() {
            return Err(ScheduleError::Unsupported(
                "cache_reduce requires reduce-only accesses".to_string(),
            ));
        }
        let op = uses.reduce_ops[0];
        if uses.reduce_ops.iter().any(|o| *o != op) {
            return Err(ScheduleError::Unsupported(
                "cache_reduce requires a single reduction operator".to_string(),
            ));
        }
        let dims = self.cache_region(&scope, var, &uses)?;
        let dtype = self
            .tensor_dtype(var)
            .ok_or_else(|| ScheduleError::NotFound(format!("tensor `{var}`")))?;
        // Fresh names, for the same reason as in `cache_impl`.
        let mut used = bound_names(self.func());
        let cache_name = fresh_name(&format!("{var}.cache_red"), &mut used);
        let (offsets, extents) = self.clamped_region(&scope, var, &dims)?;
        let iters: Vec<String> = (0..dims.len())
            .map(|d| fresh_name(&format!("{var}.r{d}"), &mut used))
            .collect();
        let init = build_copy_nest(&iters, &extents, |ivs| {
            ft_ir::builder::store(cache_name.clone(), ivs.to_vec(), op.identity(dtype))
        });
        let writeback = build_copy_nest(&iters, &extents, |ivs| {
            let dst: Vec<Expr> = offsets
                .iter()
                .zip(ivs)
                .map(|(off, iv)| const_fold_expr(off.clone() + iv.clone()))
                .collect();
            ft_ir::builder::reduce(
                var.to_string(),
                dst,
                op,
                Expr::Load {
                    var: cache_name.clone(),
                    indices: ivs.to_vec(),
                },
            )
        });
        let rewritten = RemapAccess {
            from: var,
            to: &cache_name,
            offsets: &offsets,
        }
        .mutate_stmt(scope.clone());
        let def = ft_ir::builder::var_def(
            &cache_name,
            extents,
            dtype,
            mtype,
            Stmt::new(StmtKind::Block(vec![init, rewritten, writeback])),
        );
        let scope_id = scope.id;
        let body = replace_by_id(self.func().body.clone(), scope_id, &mut |_| def.clone())
            .ok_or_else(|| ScheduleError::NotFound(format!("{scope_id:?}")))?;
        self.func_mut().body = body;
        Ok(cache_name)
    }

    /// Change where a locally defined tensor is stored.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::NotFound`] when no local definition of `var` exists
    /// (parameter placements belong to the caller).
    pub fn set_mtype(&mut self, var: &str, new_mtype: MemType) -> Result<(), ScheduleError> {
        let args = self
            .tracing()
            .then(|| format!("(\"{var}\", {new_mtype:?})"));
        let r = self.set_mtype_impl(var, new_mtype);
        self.record("set_mtype", args, &r);
        r
    }

    fn set_mtype_impl(&mut self, var: &str, new_mtype: MemType) -> Result<(), ScheduleError> {
        let mut def_id: Option<StmtId> = None;
        self.func().body.walk(&mut |s| {
            if let StmtKind::VarDef { name, .. } = &s.kind {
                if name == var && def_id.is_none() {
                    def_id = Some(s.id);
                }
            }
        });
        let def_id =
            def_id.ok_or_else(|| ScheduleError::NotFound(format!("local tensor `{var}`")))?;
        let body = replace_by_id(self.func().body.clone(), def_id, &mut |s| {
            let StmtKind::VarDef {
                name,
                shape,
                dtype,
                atype,
                body,
                ..
            } = s.kind
            else {
                unreachable!()
            };
            Stmt {
                id: s.id,
                label: s.label,
                kind: StmtKind::VarDef {
                    name,
                    shape,
                    dtype,
                    mtype: new_mtype,
                    atype,
                    body,
                },
            }
        })
        .ok_or_else(|| ScheduleError::NotFound(format!("{def_id:?}")))?;
        self.func_mut().body = body;
        Ok(())
    }
}

/// `for c0 in 0..e0: ... for ck: body([c0..ck])`, or just `body([])` for
/// scalars.
fn build_copy_nest(
    iters: &[String],
    extents: &[Expr],
    body: impl FnOnce(&[Expr]) -> Stmt,
) -> Stmt {
    let ivs: Vec<Expr> = iters.iter().map(ft_ir::builder::var).collect();
    let mut s = body(&ivs);
    for (it, ext) in iters.iter().zip(extents).rev() {
        s = ft_ir::builder::for_(it, 0, ext.clone(), s);
    }
    s
}
