//! Remaining transformations: `as_lib` and `separate_tail`
//! (paper Table 1, "Others").

use crate::util::{as_for, peel, refresh_ids, replace_by_id};
use crate::{Schedule, ScheduleError};
use ft_analysis::to_linexpr;
use ft_ir::find::Selector;
use ft_ir::{BinaryOp, Expr, ReduceOp, Stmt, StmtId, StmtKind};
use ft_passes::const_fold_expr;

impl Schedule {
    /// Replace a matrix-multiplication loop nest with a call to the vendor
    /// library kernel (`as_lib`). The nest must have the canonical shape
    ///
    /// ```text
    /// for i in 0..M:
    ///   for j in 0..N:
    ///     [C[i, j] = 0]            # optional zero-init
    ///     for k in 0..K:
    ///       C[i, j] += A[i, k] * B[k, j]
    /// ```
    ///
    /// with constant `M`, `K`, `N`.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Unsupported`] when the nest does not match.
    pub fn as_lib(&mut self, loop_sel: impl Into<Selector>) -> Result<(), ScheduleError> {
        let sel = loop_sel.into();
        let args = self.tracing().then(|| format!("({sel:?})"));
        let r = self.as_lib_impl(sel);
        self.record("as_lib", args, &r);
        r
    }

    fn as_lib_impl(&mut self, loop_sel: Selector) -> Result<(), ScheduleError> {
        let target = self.resolve_stmt(loop_sel)?;
        let pi = as_for(&target)?;
        let pj = as_for(peel(&pi.body))?;
        let unsup = |m: &str| ScheduleError::Unsupported(format!("as_lib: {m}"));
        // The j-body: optional init store, then the k loop.
        let jbody = peel(&pj.body).clone();
        let (init, kloop) = match &jbody.kind {
            StmtKind::Block(v) => {
                let items: Vec<&Stmt> = v.iter().filter(|s| !s.is_empty()).collect();
                match items.as_slice() {
                    [a, b] => (Some((*a).clone()), (*b).clone()),
                    [a] => (None, (*a).clone()),
                    _ => return Err(unsup("j-loop body is not (init?, k-loop)")),
                }
            }
            StmtKind::For { .. } => (None, jbody.clone()),
            _ => return Err(unsup("j-loop body is not a loop")),
        };
        let pk = as_for(&kloop)?;
        // Check constant extents, zero-based.
        let dims: Vec<i64> = [&pi, &pj, &pk]
            .iter()
            .map(|p| {
                if p.begin.as_int() != Some(0) {
                    return Err(unsup("loops must start at 0"));
                }
                const_fold_expr(p.end.clone())
                    .as_int()
                    .ok_or_else(|| unsup("loop extents must be constants"))
            })
            .collect::<Result<_, _>>()?;
        let (m, n, k) = (dims[0], dims[1], dims[2]);
        // Innermost statement: C[i, j] += A[i, k] * B[k, j].
        let StmtKind::ReduceTo {
            var: c,
            indices,
            op: ReduceOp::Add,
            value,
            ..
        } = &peel(&pk.body).kind
        else {
            return Err(unsup("innermost statement is not `+=`"));
        };
        let is = |e: &Expr, n: &str| matches!(e, Expr::Var(v) if v == n);
        if indices.len() != 2 || !is(&indices[0], &pi.iter) || !is(&indices[1], &pj.iter) {
            return Err(unsup("accumulator must be C[i, j]"));
        }
        let Expr::Binary {
            op: BinaryOp::Mul,
            a,
            b,
        } = value
        else {
            return Err(unsup("innermost value is not a product"));
        };
        let (Expr::Load { var: av, indices: ai }, Expr::Load { var: bv, indices: bi }) =
            (a.as_ref(), b.as_ref())
        else {
            return Err(unsup("product operands must be loads"));
        };
        if ai.len() != 2
            || bi.len() != 2
            || !is(&ai[0], &pi.iter)
            || !is(&ai[1], &pk.iter)
            || !is(&bi[0], &pk.iter)
            || !is(&bi[1], &pj.iter)
        {
            return Err(unsup("operands must be A[i, k] and B[k, j]"));
        }
        // Validate the optional init: C[i, j] = 0.
        if let Some(init) = &init {
            let ok = matches!(&init.kind, StmtKind::Store { var, indices, value }
                if var == c && indices.len() == 2
                    && is(&indices[0], &pi.iter) && is(&indices[1], &pj.iter)
                    && matches!(const_fold_expr(value.clone()),
                        Expr::IntConst(0) | Expr::FloatConst(_)));
            if !ok {
                return Err(unsup("init statement is not `C[i, j] = 0`"));
            }
        }
        // Build the replacement: (init nest if present) + LibCall.
        let mut seq: Vec<Stmt> = Vec::new();
        if init.is_some() {
            seq.push(ft_ir::builder::for_(
                format!("{}.z0", pi.iter),
                0,
                m,
                ft_ir::builder::for_(
                    format!("{}.z1", pj.iter),
                    0,
                    n,
                    ft_ir::builder::store(
                        c.clone(),
                        [
                            ft_ir::builder::var(format!("{}.z0", pi.iter)),
                            ft_ir::builder::var(format!("{}.z1", pj.iter)),
                        ],
                        Expr::FloatConst(0.0),
                    ),
                ),
            ));
        }
        seq.push(Stmt::new(StmtKind::LibCall {
            kernel: "matmul".to_string(),
            inputs: vec![av.clone(), bv.clone()],
            outputs: vec![c.clone()],
            attrs: vec![m, k, n],
        }));
        let replacement = Stmt {
            id: target.id,
            label: target.label.clone(),
            kind: StmtKind::Block(seq),
        };
        let body = replace_by_id(self.func().body.clone(), target.id, &mut |_| {
            replacement.clone()
        })
        .ok_or_else(|| ScheduleError::NotFound(format!("{:?}", target.id)))?;
        self.func_mut().body = body;
        Ok(())
    }

    /// Separate a guarded loop into a guard-free main region and a guarded
    /// tail, removing per-iteration branching (paper `separate_tail`).
    ///
    /// Supports the pattern produced by [`Schedule::split`]: a body of the
    /// form `if g < E: S` where `g` is affine with a positive coefficient on
    /// the loop iterator. Returns the ids of the (main, tail) loops.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Unsupported`] when the guard does not match the
    /// pattern.
    pub fn separate_tail(
        &mut self,
        loop_sel: impl Into<Selector>,
    ) -> Result<(StmtId, StmtId), ScheduleError> {
        let sel = loop_sel.into();
        let args = self.tracing().then(|| format!("({sel:?})"));
        let r = self.separate_tail_impl(sel);
        self.record("separate_tail", args, &r);
        r
    }

    fn separate_tail_impl(
        &mut self,
        loop_sel: Selector,
    ) -> Result<(StmtId, StmtId), ScheduleError> {
        let target = self.resolve_stmt(loop_sel)?;
        let p = as_for(&target)?;
        let unsup = |m: &str| ScheduleError::Unsupported(format!("separate_tail: {m}"));
        // Descend through inner loops to locate the guard, collecting the
        // inner iterator maxima on the way.
        let mut inner: Vec<(String, Expr)> = Vec::new(); // (iter, max_value)
        let mut cur = peel(&p.body).clone();
        let guard = loop {
            match cur.kind.clone() {
                StmtKind::For {
                    iter, begin, end, body, ..
                } => {
                    inner.push((iter, const_fold_expr(end - 1)));
                    let _ = begin;
                    cur = peel(&body).clone();
                }
                StmtKind::If {
                    cond,
                    then,
                    otherwise: None,
                } => break (cond, then),
                _ => return Err(unsup("no guard of the form `if g < E` found")),
            }
        };
        let (cond, _) = &guard;
        let Expr::Binary {
            op: BinaryOp::Lt,
            a: g,
            b: e_bound,
        } = cond
        else {
            return Err(unsup("guard is not `g < E`"));
        };
        let Some(gl) = to_linexpr(g) else {
            return Err(unsup("guard expression is not affine"));
        };
        let a = gl.coeff(&p.iter);
        if a <= 0 {
            return Err(unsup("guard must increase with the loop iterator"));
        }
        // g at the maximal inner iterators, with the iterator's own term
        // removed — all in affine arithmetic so terms cancel symbolically.
        let mut g_hi = gl.clone();
        for (it, max) in &inner {
            let maxl = to_linexpr(max)
                .ok_or_else(|| unsup("inner loop bounds are not affine"))?;
            g_hi = g_hi.subst(it, &maxl);
        }
        let g_hi_wo_i = g_hi - ft_poly::LinExpr::term(p.iter.clone(), a);
        let e_lin =
            to_linexpr(e_bound).ok_or_else(|| unsup("guard bound is not affine"))?;
        // main_end = floor((E - 1 - g_hi_wo_i) / a) + 1: the first iteration
        // where even the largest inner index violates the guard.
        let main_end = const_fold_expr(
            crate::mem::linexpr_to_expr(&(e_lin - 1 - g_hi_wo_i)) / a + 1,
        );
        let main_end_clamped = const_fold_expr(main_end.clone().min(p.end.clone()));
        // Main loop: original body with the guard dropped.
        use ft_ir::Mutator as _;
        let mut stripper = StripGuard { cond: cond.clone() };
        let main_body = stripper.mutate_stmt(p.body.clone());
        let main = Stmt {
            id: p.id,
            label: target.label.clone(),
            kind: StmtKind::For {
                iter: p.iter.clone(),
                begin: p.begin.clone(),
                end: main_end_clamped.clone(),
                property: p.property.clone(),
                body: Box::new(main_body),
            },
        };
        let tail_iter = format!("{}.t", p.iter);
        // The tail re-uses the original (guarded) body: clone with FRESH ids,
        // or the tree would contain duplicate statement identities.
        let tail_body = ft_ir::mutate::subst_var_stmt(
            refresh_ids(&p.body),
            &p.iter,
            &ft_ir::builder::var(&tail_iter),
        );
        let tail = ft_ir::builder::for_(
            &tail_iter,
            const_fold_expr(main_end_clamped.max(p.begin.clone())),
            p.end.clone(),
            tail_body,
        );
        let tail_id = tail.id;
        let replacement = Stmt::new(StmtKind::Block(vec![main, tail]));
        let body = replace_by_id(self.func().body.clone(), p.id, &mut |_| replacement.clone())
            .ok_or_else(|| ScheduleError::NotFound(format!("{:?}", p.id)))?;
        self.func_mut().body = body;
        Ok((p.id, tail_id))
    }
}

/// Removes `if cond: S` nodes matching the separated guard, keeping `S`.
struct StripGuard {
    cond: Expr,
}

impl ft_ir::Mutator for StripGuard {
    fn mutate_stmt(&mut self, s: Stmt) -> Stmt {
        let s = ft_ir::mutate::mutate_stmt_walk(self, s);
        match &s.kind {
            StmtKind::If {
                cond,
                then,
                otherwise: None,
            } if *cond == self.cond => (**then).clone(),
            _ => s,
        }
    }
}
