//! Parallelizing transformations: `parallelize`, `unroll`, `blend`,
//! `vectorize` (paper Table 1, "Parallelizing Trans.").

use crate::util::{as_for, peel, refresh_ids, replace_by_id};
use crate::{Schedule, ScheduleError};
use ft_analysis::deps::{carried_reductions, parallelize_blockers, fission_illegal, subtree_ids};
use ft_ir::find::Selector;
use ft_ir::mutate::subst_var_stmt;
use ft_ir::{Expr, MemType, ParallelScope, Stmt, StmtId, StmtKind};

impl Schedule {
    /// Run a loop's iterations in parallel under the given hardware scope.
    ///
    /// Carried dependences block parallelization (paper Fig. 13(b)) —
    /// except same-operator reductions, which are lowered to atomic updates
    /// (random-access reductions, Fig. 13(e)) or parallel reductions
    /// (same-index reductions, Fig. 13(d)). Tensors living in thread-local
    /// memory but written across the loop (Fig. 13(c)) are also rejected.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Illegal`] on a blocking dependence.
    pub fn parallelize(
        &mut self,
        loop_sel: impl Into<Selector>,
        scope: ParallelScope,
    ) -> Result<(), ScheduleError> {
        let sel = loop_sel.into();
        let args = self.tracing().then(|| format!("({sel:?}, {scope:?})"));
        let r = self.parallelize_impl(sel, scope);
        self.record("parallelize", args, &r);
        r
    }

    fn parallelize_impl(
        &mut self,
        loop_sel: Selector,
        scope: ParallelScope,
    ) -> Result<(), ScheduleError> {
        let target = self.resolve_stmt(loop_sel)?;
        let p = as_for(&target)?;
        let blockers = parallelize_blockers(self.func(), p.id);
        if let Some(dep) = blockers.first() {
            let msg = format!(
                "loop `{}` carries a {:?} dependence on `{}` ({} -> {})",
                p.iter, dep.kind, dep.var, dep.source, dep.sink
            );
            self.note_deps(&blockers);
            return Err(ScheduleError::Illegal(msg));
        }
        // Fig. 13(c): a tensor in thread-local storage defined outside the
        // parallel loop is not visible to the other threads.
        let loop_ids = subtree_ids(&target);
        let mut violation: Option<String> = None;
        let info = ft_analysis::collect_accesses(self.func());
        for acc in &info.accesses {
            if !loop_ids.contains(&acc.stmt) || !acc.kind.writes() {
                continue;
            }
            let local = matches!(
                self.local_mtype(&acc.var),
                Some(MemType::GpuLocal) | Some(MemType::CpuStack)
            );
            if local {
                // Defined outside the loop? Then other iterations (threads)
                // cannot see the writes.
                if let Some(containing) = info.def_inside_loops.get(&acc.var) {
                    if !containing.contains(&p.id) {
                        violation = Some(acc.var.clone());
                    }
                }
            }
        }
        if let Some(v) = violation {
            return Err(ScheduleError::Illegal(format!(
                "tensor `{v}` is thread-local but defined outside the parallel loop (Fig. 13(c))"
            )));
        }
        // Reductions updated by multiple iterations become atomic.
        let atomics = carried_reductions(self.func(), p.id);
        let mut body = self.func().body.clone();
        for rid in atomics {
            body = replace_by_id(body, rid, &mut |s| match s.kind {
                StmtKind::ReduceTo {
                    var,
                    indices,
                    op,
                    value,
                    ..
                } => Stmt {
                    id: s.id,
                    label: s.label,
                    kind: StmtKind::ReduceTo {
                        var,
                        indices,
                        op,
                        value,
                        atomic: true,
                    },
                },
                k => Stmt {
                    id: s.id,
                    label: s.label,
                    kind: k,
                },
            })
            .expect("reduction id came from this tree");
        }
        let body = replace_by_id(body, p.id, &mut |s| {
            let StmtKind::For {
                iter,
                begin,
                end,
                mut property,
                body,
            } = s.kind
            else {
                unreachable!()
            };
            property.parallel = scope;
            Stmt {
                id: s.id,
                label: s.label,
                kind: StmtKind::For {
                    iter,
                    begin,
                    end,
                    property,
                    body,
                },
            }
        })
        .ok_or_else(|| ScheduleError::NotFound(format!("{:?}", p.id)))?;
        self.func_mut().body = body;
        Ok(())
    }

    fn local_mtype(&self, var: &str) -> Option<MemType> {
        let mut found = None;
        self.func().body.walk(&mut |s| {
            if let StmtKind::VarDef { name, mtype, .. } = &s.kind {
                if name == var {
                    found = Some(*mtype);
                }
            }
        });
        found
    }

    /// Fully unroll a constant-extent loop into a sequence of bodies.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Unsupported`] when the trip count is not a constant
    /// or exceeds the unroll limit (64).
    pub fn unroll(&mut self, loop_sel: impl Into<Selector>) -> Result<(), ScheduleError> {
        let sel = loop_sel.into();
        let args = self.tracing().then(|| format!("({sel:?})"));
        let r = self.unroll_impl(sel);
        self.record("unroll", args, &r);
        r
    }

    fn unroll_impl(&mut self, loop_sel: Selector) -> Result<(), ScheduleError> {
        let target = self.resolve_stmt(loop_sel)?;
        let p = as_for(&target)?;
        let (Some(b), Some(e)) = (
            ft_passes::const_fold_expr(p.begin.clone()).as_int(),
            ft_passes::const_fold_expr(p.end.clone()).as_int(),
        ) else {
            return Err(ScheduleError::Unsupported(
                "unroll requires constant loop bounds".to_string(),
            ));
        };
        if e - b > 64 {
            return Err(ScheduleError::Unsupported(format!(
                "unroll limit exceeded: {} iterations",
                e - b
            )));
        }
        let copies: Vec<Stmt> = (b..e)
            .map(|i| subst_var_stmt(refresh_ids(&p.body), &p.iter, &Expr::IntConst(i)))
            .collect();
        let unrolled = Stmt {
            id: p.id,
            label: target.label.clone(),
            kind: StmtKind::Block(copies),
        };
        let body = replace_by_id(self.func().body.clone(), p.id, &mut |_| unrolled.clone())
            .ok_or_else(|| ScheduleError::NotFound(format!("{:?}", p.id)))?;
        self.func_mut().body = body;
        Ok(())
    }

    /// Unroll a loop and interleave the statements of its iterations:
    /// statement `s_j` of all iterations becomes adjacent (paper `blend`).
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Illegal`] when regrouping would reverse a dependence
    /// (checked like a fission at every statement boundary), or
    /// [`ScheduleError::Unsupported`] for non-constant bounds.
    pub fn blend(&mut self, loop_sel: impl Into<Selector>) -> Result<(), ScheduleError> {
        let sel = loop_sel.into();
        let args = self.tracing().then(|| format!("({sel:?})"));
        let r = self.blend_impl(sel);
        self.record("blend", args, &r);
        r
    }

    fn blend_impl(&mut self, loop_sel: Selector) -> Result<(), ScheduleError> {
        let target = self.resolve_stmt(loop_sel)?;
        let p = as_for(&target)?;
        let (Some(b), Some(e)) = (
            ft_passes::const_fold_expr(p.begin.clone()).as_int(),
            ft_passes::const_fold_expr(p.end.clone()).as_int(),
        ) else {
            return Err(ScheduleError::Unsupported(
                "blend requires constant loop bounds".to_string(),
            ));
        };
        if e - b > 64 {
            return Err(ScheduleError::Unsupported(format!(
                "blend limit exceeded: {} iterations",
                e - b
            )));
        }
        let body = peel(&p.body).clone();
        let items: Vec<Stmt> = match &body.kind {
            StmtKind::Block(v) => v.clone(),
            _ => vec![body.clone()],
        };
        // Blending hoists statement j of iteration i+1 above statement j+1
        // of iteration i — the same reversal a fission at each boundary
        // would cause; verify each boundary.
        for cut in 1..items.len() {
            let first_ids: std::collections::HashSet<StmtId> = items[..cut]
                .iter()
                .flat_map(subtree_ids)
                .collect();
            if let Some(v) = fission_illegal(self.func(), p.id, &|id| first_ids.contains(&id)) {
                self.note_deps(&v.deps);
                return Err(ScheduleError::Illegal(v.to_string()));
            }
        }
        let mut out: Vec<Stmt> = Vec::new();
        for stmt in &items {
            for i in b..e {
                out.push(subst_var_stmt(
                    refresh_ids(stmt),
                    &p.iter,
                    &Expr::IntConst(i),
                ));
            }
        }
        let blended = Stmt {
            id: p.id,
            label: target.label.clone(),
            kind: StmtKind::Block(out),
        };
        let body = replace_by_id(self.func().body.clone(), p.id, &mut |_| blended.clone())
            .ok_or_else(|| ScheduleError::NotFound(format!("{:?}", p.id)))?;
        self.func_mut().body = body;
        Ok(())
    }

    /// Implement a loop with vector instructions.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Illegal`] when the loop carries a dependence (vector
    /// lanes execute concurrently).
    pub fn vectorize(&mut self, loop_sel: impl Into<Selector>) -> Result<(), ScheduleError> {
        let sel = loop_sel.into();
        let args = self.tracing().then(|| format!("({sel:?})"));
        let r = self.vectorize_impl(sel);
        self.record("vectorize", args, &r);
        r
    }

    fn vectorize_impl(&mut self, loop_sel: Selector) -> Result<(), ScheduleError> {
        let target = self.resolve_stmt(loop_sel)?;
        let p = as_for(&target)?;
        let blockers = parallelize_blockers(self.func(), p.id);
        if let Some(dep) = blockers.first() {
            let msg = format!(
                "loop `{}` carries a {:?} dependence on `{}`",
                p.iter, dep.kind, dep.var
            );
            self.note_deps(&blockers);
            return Err(ScheduleError::Illegal(msg));
        }
        let body = replace_by_id(self.func().body.clone(), p.id, &mut |s| {
            let StmtKind::For {
                iter,
                begin,
                end,
                mut property,
                body,
            } = s.kind
            else {
                unreachable!()
            };
            property.vectorize = true;
            Stmt {
                id: s.id,
                label: s.label,
                kind: StmtKind::For {
                    iter,
                    begin,
                    end,
                    property,
                    body,
                },
            }
        })
        .ok_or_else(|| ScheduleError::NotFound(format!("{:?}", p.id)))?;
        self.func_mut().body = body;
        Ok(())
    }
}
