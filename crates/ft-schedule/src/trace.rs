//! The schedule-trace vocabulary: a serializable, replayable op language
//! over the [`Schedule`] primitives, shared by the conformance fuzzer and
//! the search-based auto-scheduler.
//!
//! Ops address loops *positionally* (index into the pre-order list of `For`
//! statements, modulo its length) rather than by `StmtId`, so a trace stays
//! replayable after earlier ops have rewritten the tree — the same scheme
//! the auto-tuner baseline in `bench/table2` uses. A trace is therefore a
//! complete, self-contained schedule description: applying the same trace
//! to the same base function always yields the same scheduled function,
//! which is what makes both conformance shrinking and search memoization
//! sound.
//!
//! This module is the single home of the vocabulary ([`ScheduleOp`]), its
//! application under legality checking ([`apply_trace`]), its JSON codec
//! ([`op_to_json`] / [`op_from_json`]), and the canonical structural key
//! used to deduplicate search candidates ([`canonical_key`]).
//! `ft-conformance` re-exports all of it and layers proptest sampling on
//! top; `ft-autoschedule`'s search engine layers mutation on top.

use crate::{Schedule, ScheduleError};
use ft_ir::{find, AccessType, ForProperty, Func, MemType, ParallelScope, Stmt, StmtId, StmtKind};
use ft_trace::JsonVal;

/// Largest constant element count [`ScheduleOp::SetMtype`] will promote to
/// `CpuStack`. The rule-based `auto_mem_type` promotes up to its target's
/// `reg_elems` (64 by default); the trace op allows a slightly larger
/// neighborhood so search can explore beyond the rule threshold while still
/// keeping promoted tensors L1-resident-sized.
pub const SET_MTYPE_MAX_ELEMS: i64 = 256;

/// One sampled schedule transformation.
///
/// Every variant except [`ScheduleOp::ParallelizeUnchecked`] goes through
/// `ft-schedule`, whose legality checks (backed by `ft-analysis` dependence
/// analysis) accept or reject it. `ParallelizeUnchecked` deliberately
/// *bypasses* the dependence check by mutating the IR directly — it exists
/// only for fault-injection tests proving the harness catches the class of
/// bug a dropped legality check would introduce.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ScheduleOp {
    /// `split(loops[i], factor)`.
    Split {
        /// Pre-order loop index (modulo loop count).
        loop_idx: usize,
        /// Split factor.
        factor: i64,
    },
    /// `merge(loops[i], its only inner loop)`.
    Merge {
        /// Pre-order loop index.
        loop_idx: usize,
    },
    /// `reorder([inner, outer])` on the 2-deep nest rooted at `loops[i]`.
    Reorder {
        /// Pre-order loop index of the outer loop.
        loop_idx: usize,
    },
    /// `fuse(loops[i], loops[j])`.
    Fuse {
        /// First loop index.
        first_idx: usize,
        /// Second loop index.
        second_idx: usize,
    },
    /// `parallelize(loops[i], OpenMp)` — *with* the dependence check.
    Parallelize {
        /// Pre-order loop index.
        loop_idx: usize,
    },
    /// `vectorize(loops[i])`.
    Vectorize {
        /// Pre-order loop index.
        loop_idx: usize,
    },
    /// `unroll(loops[i])`.
    Unroll {
        /// Pre-order loop index.
        loop_idx: usize,
    },
    /// `cache(loops[i], input_params[j], CpuStack)`.
    Cache {
        /// Pre-order loop index of the scope.
        loop_idx: usize,
        /// Index into the function's `Input` tensor parameters.
        param_idx: usize,
    },
    /// `separate_tail(loops[i])`.
    SeparateTail {
        /// Pre-order loop index.
        loop_idx: usize,
    },
    /// `set_mtype(vardefs[i], CpuStack)`: promote a small CPU-resident
    /// local tensor onto the stack (register-class placement). Rejected
    /// unless the def's current space is `CpuHeap` and its constant element
    /// count is at most [`SET_MTYPE_MAX_ELEMS`] — the positional analogue
    /// of what `auto_mem_type` does on CPU targets.
    SetMtype {
        /// Pre-order index into the function's `VarDef` statements.
        def_idx: usize,
    },
    /// `as_lib(loops[i])`: replace a matmul-shaped nest with a vendor
    /// library call — the positional analogue of `auto_use_lib`.
    AsLib {
        /// Pre-order loop index.
        loop_idx: usize,
    },
    /// Fault injection: mark `loops[i]` OpenMP-parallel directly in the IR,
    /// skipping `parallelize`'s dependence check entirely.
    ParallelizeUnchecked {
        /// Pre-order loop index.
        loop_idx: usize,
    },
}

/// Pre-order list of all `For` statements.
pub fn loops_of(func: &Func) -> Vec<StmtId> {
    find::find_stmts(&func.body, &|s| matches!(s.kind, StmtKind::For { .. }))
        .iter()
        .map(|s| s.id)
        .collect()
}

/// Pre-order list of all `VarDef` names (`SetMtype` candidates).
pub fn vardefs_of(func: &Func) -> Vec<String> {
    find::find_stmts(&func.body, &|s| matches!(s.kind, StmtKind::VarDef { .. }))
        .iter()
        .filter_map(|s| match &s.kind {
            StmtKind::VarDef { name, .. } => Some(name.clone()),
            _ => None,
        })
        .collect()
}

/// The iterator name of loop `id`, if it exists.
fn iter_name(func: &Func, id: StmtId) -> Option<String> {
    find::find_stmts(&func.body, &|s| s.id == id)
        .first()
        .and_then(|s| match &s.kind {
            StmtKind::For { iter, .. } => Some(iter.clone()),
            _ => None,
        })
}

/// The `For` that is the *only* statement of `outer`'s body, if any.
fn direct_inner_for(func: &Func, outer: StmtId) -> Option<StmtId> {
    let outer_stmt = find::find_stmts(&func.body, &|s| s.id == outer);
    let StmtKind::For { body, .. } = &outer_stmt.first()?.kind else {
        return None;
    };
    let inner: &Stmt = match &body.kind {
        StmtKind::Block(v) if v.len() == 1 => &v[0],
        _ => body,
    };
    matches!(inner.kind, StmtKind::For { .. }).then(|| inner.id)
}

/// Names of the function's `Input` tensor parameters (cache candidates).
fn input_params(func: &Func) -> Vec<String> {
    func.params
        .iter()
        .filter(|p| p.atype == AccessType::Input && !p.shape.is_empty())
        .map(|p| p.name.clone())
        .collect()
}

fn set_parallel_unchecked(s: &mut Stmt, id: StmtId) -> bool {
    if s.id == id {
        if let StmtKind::For { property, .. } = &mut s.kind {
            *property = ForProperty::parallel(ParallelScope::OpenMp);
            return true;
        }
    }
    match &mut s.kind {
        StmtKind::Block(v) => v.iter_mut().any(|st| set_parallel_unchecked(st, id)),
        StmtKind::VarDef { body, .. } | StmtKind::For { body, .. } => {
            set_parallel_unchecked(body, id)
        }
        StmtKind::If {
            then, otherwise, ..
        } => {
            set_parallel_unchecked(then, id)
                || otherwise
                    .as_mut()
                    .is_some_and(|o| set_parallel_unchecked(o, id))
        }
        _ => false,
    }
}

/// Constant element count of the named `VarDef`, if its shape folds.
fn def_const_elems(func: &Func, name: &str) -> Option<i64> {
    let mut elems = None;
    func.body.walk(&mut |s| {
        if let StmtKind::VarDef { name: n, shape, .. } = &s.kind {
            if n == name && elems.is_none() {
                elems = shape
                    .iter()
                    .map(|e| ft_passes::const_fold_expr(e.clone()).as_int())
                    .try_fold(1i64, |acc, e| e.map(|v| acc.saturating_mul(v)));
            }
        }
    });
    elems
}

/// Current memory space of the named `VarDef`.
fn def_mtype(func: &Func, name: &str) -> Option<MemType> {
    let mut mt = None;
    func.body.walk(&mut |s| {
        if let StmtKind::VarDef { name: n, mtype, .. } = &s.kind {
            if n == name && mt.is_none() {
                mt = Some(*mtype);
            }
        }
    });
    mt
}

impl ScheduleOp {
    /// Apply this op to `sched`. `Err` means the legality checks rejected it
    /// (or its structural precondition did not hold); the schedule is
    /// unchanged in that case — `ft-schedule` is all-or-nothing.
    pub fn apply(&self, sched: &mut Schedule) -> Result<(), ScheduleError> {
        let loops = loops_of(sched.func());
        if loops.is_empty() {
            return Err(ScheduleError::NotFound("no loops left".to_string()));
        }
        let pick = |i: usize| loops[i % loops.len()];
        let structural =
            |m: &str| ScheduleError::Unsupported(format!("trace op precondition: {m}"));
        match *self {
            ScheduleOp::Split { loop_idx, factor } => {
                sched.split(pick(loop_idx), factor).map(|_| ())
            }
            ScheduleOp::Merge { loop_idx } => {
                let outer = pick(loop_idx);
                let inner = direct_inner_for(sched.func(), outer)
                    .ok_or_else(|| structural("no single inner loop to merge"))?;
                sched.merge(outer, inner).map(|_| ())
            }
            ScheduleOp::Reorder { loop_idx } => {
                let outer = pick(loop_idx);
                let inner = direct_inner_for(sched.func(), outer)
                    .ok_or_else(|| structural("no single inner loop to reorder"))?;
                let on = iter_name(sched.func(), outer)
                    .ok_or_else(|| structural("outer loop vanished"))?;
                let inn = iter_name(sched.func(), inner)
                    .ok_or_else(|| structural("inner loop vanished"))?;
                sched.reorder(&[&inn, &on])
            }
            ScheduleOp::Fuse {
                first_idx,
                second_idx,
            } => sched.fuse(pick(first_idx), pick(second_idx)).map(|_| ()),
            ScheduleOp::Parallelize { loop_idx } => {
                sched.parallelize(pick(loop_idx), ParallelScope::OpenMp)
            }
            ScheduleOp::Vectorize { loop_idx } => sched.vectorize(pick(loop_idx)),
            ScheduleOp::Unroll { loop_idx } => sched.unroll(pick(loop_idx)),
            ScheduleOp::Cache {
                loop_idx,
                param_idx,
            } => {
                let params = input_params(sched.func());
                if params.is_empty() {
                    return Err(structural("no input tensors to cache"));
                }
                let var = &params[param_idx % params.len()];
                sched
                    .cache(pick(loop_idx), var, MemType::CpuStack)
                    .map(|_| ())
            }
            ScheduleOp::SeparateTail { loop_idx } => {
                sched.separate_tail(pick(loop_idx)).map(|_| ())
            }
            ScheduleOp::SetMtype { def_idx } => {
                let defs = vardefs_of(sched.func());
                if defs.is_empty() {
                    return Err(structural("no local tensors to promote"));
                }
                let var = defs[def_idx % defs.len()].clone();
                if def_mtype(sched.func(), &var) != Some(MemType::CpuHeap) {
                    return Err(structural("def is not CPU-heap resident"));
                }
                match def_const_elems(sched.func(), &var) {
                    Some(e) if e <= SET_MTYPE_MAX_ELEMS => {
                        sched.set_mtype(&var, MemType::CpuStack)
                    }
                    Some(_) => Err(structural("tensor too large for stack placement")),
                    None => Err(structural("tensor size is not a compile-time constant")),
                }
            }
            ScheduleOp::AsLib { loop_idx } => sched.as_lib(pick(loop_idx)),
            ScheduleOp::ParallelizeUnchecked { loop_idx } => {
                let id = pick(loop_idx);
                let mut func = sched.func().clone();
                if !set_parallel_unchecked(&mut func.body, id) {
                    return Err(structural("loop to force-parallelize vanished"));
                }
                let sink = sched.sink().cloned();
                *sched = Schedule::new(func);
                sched.set_sink(sink);
                Ok(())
            }
        }
    }

    /// Short op name used in JSON repros and the search payoff table.
    pub fn op_name(&self) -> &'static str {
        match self {
            ScheduleOp::Split { .. } => "split",
            ScheduleOp::Merge { .. } => "merge",
            ScheduleOp::Reorder { .. } => "reorder",
            ScheduleOp::Fuse { .. } => "fuse",
            ScheduleOp::Parallelize { .. } => "parallelize",
            ScheduleOp::Vectorize { .. } => "vectorize",
            ScheduleOp::Unroll { .. } => "unroll",
            ScheduleOp::Cache { .. } => "cache",
            ScheduleOp::SeparateTail { .. } => "separate_tail",
            ScheduleOp::SetMtype { .. } => "set_mtype",
            ScheduleOp::AsLib { .. } => "as_lib",
            ScheduleOp::ParallelizeUnchecked { .. } => "parallelize_unchecked",
        }
    }
}

/// Apply `trace` to a clone of `base`, keeping only accepted ops.
///
/// Returns the scheduled function and the accepted subsequence. Because
/// rejected ops leave the schedule untouched, replaying just the accepted
/// subsequence reproduces the identical function — this is what makes both
/// conformance shrinking and search-trace canonicalization sound.
pub fn apply_trace(base: &Func, trace: &[ScheduleOp]) -> (Func, Vec<ScheduleOp>) {
    apply_trace_traced(base, trace, None)
}

/// [`apply_trace`] with a schedule decision log: when `sink` is `Some`,
/// every op attempt — accepted or rejected, with the rejecting dependences —
/// is recorded, so a repro can explain *why* its trace looks the way it does.
pub fn apply_trace_traced(
    base: &Func,
    trace: &[ScheduleOp],
    sink: Option<&ft_trace::TraceSink>,
) -> (Func, Vec<ScheduleOp>) {
    let mut sched = Schedule::new(base.clone());
    sched.set_sink(sink.cloned());
    let mut accepted = Vec::new();
    for op in trace {
        if op.apply(&mut sched).is_ok() {
            accepted.push(op.clone());
        }
    }
    (sched.into_func(), accepted)
}

/// FNV-1a over the printed function: the canonical structural key of a
/// scheduled program. Two traces that produce the same function (e.g. a
/// trace plus a rejected op, or two op orders with the same effect) map to
/// the same key, which is what search memoization dedupes on.
pub fn canonical_key(func: &Func) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in func.to_string().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn num(n: u64) -> JsonVal {
    JsonVal::Num(n as f64)
}

/// Serialize one op to its JSON repro form.
pub fn op_to_json(op: &ScheduleOp) -> JsonVal {
    let mut fields = vec![("op".to_string(), JsonVal::Str(op.op_name().to_string()))];
    match *op {
        ScheduleOp::Split { loop_idx, factor } => {
            fields.push(("loop".to_string(), num(loop_idx as u64)));
            fields.push(("factor".to_string(), num(factor as u64)));
        }
        ScheduleOp::Fuse {
            first_idx,
            second_idx,
        } => {
            fields.push(("first".to_string(), num(first_idx as u64)));
            fields.push(("second".to_string(), num(second_idx as u64)));
        }
        ScheduleOp::Cache {
            loop_idx,
            param_idx,
        } => {
            fields.push(("loop".to_string(), num(loop_idx as u64)));
            fields.push(("param".to_string(), num(param_idx as u64)));
        }
        ScheduleOp::SetMtype { def_idx } => {
            fields.push(("def".to_string(), num(def_idx as u64)));
        }
        ScheduleOp::Merge { loop_idx }
        | ScheduleOp::Reorder { loop_idx }
        | ScheduleOp::Parallelize { loop_idx }
        | ScheduleOp::Vectorize { loop_idx }
        | ScheduleOp::Unroll { loop_idx }
        | ScheduleOp::SeparateTail { loop_idx }
        | ScheduleOp::AsLib { loop_idx }
        | ScheduleOp::ParallelizeUnchecked { loop_idx } => {
            fields.push(("loop".to_string(), num(loop_idx as u64)));
        }
    }
    JsonVal::Obj(fields)
}

/// Parse one op from its JSON repro form.
///
/// # Errors
///
/// A human-readable description of the malformed field.
pub fn op_from_json(v: &JsonVal) -> Result<ScheduleOp, String> {
    let name = v
        .get("op")
        .and_then(JsonVal::as_str)
        .ok_or("op object missing `op` field")?;
    let field = |key: &str| -> Result<usize, String> {
        v.get(key)
            .and_then(JsonVal::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| format!("op `{name}` missing `{key}`"))
    };
    Ok(match name {
        "split" => ScheduleOp::Split {
            loop_idx: field("loop")?,
            factor: field("factor")? as i64,
        },
        "merge" => ScheduleOp::Merge {
            loop_idx: field("loop")?,
        },
        "reorder" => ScheduleOp::Reorder {
            loop_idx: field("loop")?,
        },
        "fuse" => ScheduleOp::Fuse {
            first_idx: field("first")?,
            second_idx: field("second")?,
        },
        "parallelize" => ScheduleOp::Parallelize {
            loop_idx: field("loop")?,
        },
        "vectorize" => ScheduleOp::Vectorize {
            loop_idx: field("loop")?,
        },
        "unroll" => ScheduleOp::Unroll {
            loop_idx: field("loop")?,
        },
        "cache" => ScheduleOp::Cache {
            loop_idx: field("loop")?,
            param_idx: field("param")?,
        },
        "separate_tail" => ScheduleOp::SeparateTail {
            loop_idx: field("loop")?,
        },
        "set_mtype" => ScheduleOp::SetMtype {
            def_idx: field("def")?,
        },
        "as_lib" => ScheduleOp::AsLib {
            loop_idx: field("loop")?,
        },
        "parallelize_unchecked" => ScheduleOp::ParallelizeUnchecked {
            loop_idx: field("loop")?,
        },
        other => return Err(format!("unknown op `{other}`")),
    })
}

/// Serialize a whole trace as a JSON array.
pub fn trace_to_json(trace: &[ScheduleOp]) -> JsonVal {
    JsonVal::Arr(trace.iter().map(op_to_json).collect())
}

/// Parse a whole trace from a JSON array.
///
/// # Errors
///
/// The first malformed op's description.
pub fn trace_from_json(v: &JsonVal) -> Result<Vec<ScheduleOp>, String> {
    v.as_arr()
        .ok_or("trace is not an array")?
        .iter()
        .map(op_from_json)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;

    fn two_nests() -> Func {
        Func::new("f")
            .param("x", [64], DataType::F32, AccessType::Input)
            .param("y", [64], DataType::F32, AccessType::Output)
            .body(block([
                var_def(
                    "t",
                    [8],
                    DataType::F32,
                    MemType::CpuHeap,
                    block([
                        store("t", [0], 1.0f32),
                        for_("i", 0, 64, store("y", [var("i")], load("x", [var("i")]) * 2.0f32)),
                    ]),
                ),
            ]))
    }

    #[test]
    fn set_mtype_promotes_small_heap_defs_only() {
        let f = two_nests();
        let mut sched = Schedule::new(f.clone());
        ScheduleOp::SetMtype { def_idx: 0 }.apply(&mut sched).unwrap();
        let defs = vardefs_of(sched.func());
        assert_eq!(def_mtype(sched.func(), &defs[0]), Some(MemType::CpuStack));
        // A second promotion is rejected: the def is no longer heap-resident.
        assert!(ScheduleOp::SetMtype { def_idx: 0 }.apply(&mut sched).is_err());
    }

    #[test]
    fn set_mtype_rejects_large_tensors() {
        let f = Func::new("f")
            .param("y", [4], DataType::F32, AccessType::Output)
            .body(var_def(
                "big",
                [SET_MTYPE_MAX_ELEMS + 1],
                DataType::F32,
                MemType::CpuHeap,
                block([
                    store("big", [0], 1.0f32),
                    for_("i", 0, 4, store("y", [var("i")], load("big", [0]))),
                ]),
            ));
        let mut sched = Schedule::new(f);
        assert!(ScheduleOp::SetMtype { def_idx: 0 }.apply(&mut sched).is_err());
    }

    #[test]
    fn trace_json_roundtrips_every_op() {
        let trace = vec![
            ScheduleOp::Split { loop_idx: 3, factor: 8 },
            ScheduleOp::Merge { loop_idx: 1 },
            ScheduleOp::Reorder { loop_idx: 0 },
            ScheduleOp::Fuse { first_idx: 2, second_idx: 5 },
            ScheduleOp::Parallelize { loop_idx: 4 },
            ScheduleOp::Vectorize { loop_idx: 6 },
            ScheduleOp::Unroll { loop_idx: 7 },
            ScheduleOp::Cache { loop_idx: 1, param_idx: 2 },
            ScheduleOp::SeparateTail { loop_idx: 9 },
            ScheduleOp::SetMtype { def_idx: 1 },
            ScheduleOp::AsLib { loop_idx: 2 },
            ScheduleOp::ParallelizeUnchecked { loop_idx: 0 },
        ];
        let json = trace_to_json(&trace);
        let back = trace_from_json(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn canonical_key_collapses_rejected_ops() {
        let f = two_nests();
        let trace = vec![ScheduleOp::Parallelize { loop_idx: 0 }];
        // A trailing op that is always rejected must not change the key.
        let mut with_reject = trace.clone();
        with_reject.push(ScheduleOp::Merge { loop_idx: 0 });
        let (f1, _) = apply_trace(&f, &trace);
        let (f2, _) = apply_trace(&f, &with_reject);
        assert_eq!(canonical_key(&f1), canonical_key(&f2));
        let (f3, _) = apply_trace(&f, &[]);
        assert_ne!(canonical_key(&f1), canonical_key(&f3));
    }
}
