//! Tree-surgery helpers shared by the schedule primitives.

use crate::ScheduleError;
use ft_ir::{Expr, Stmt, StmtId, StmtKind};

/// Rewrite the statement with id `target` through `f`, leaving the rest of
/// the tree untouched. Returns `None` if the id is absent.
pub fn replace_by_id(root: Stmt, target: StmtId, f: &mut dyn FnMut(Stmt) -> Stmt) -> Option<Stmt> {
    fn rec(s: Stmt, target: StmtId, f: &mut dyn FnMut(Stmt) -> Stmt, hit: &mut bool) -> Stmt {
        if s.id == target {
            *hit = true;
            return f(s);
        }
        let Stmt { id, label, kind } = s;
        let kind = match kind {
            StmtKind::Block(v) => StmtKind::Block(
                v.into_iter()
                    .map(|st| rec(st, target, f, hit))
                    .collect(),
            ),
            StmtKind::VarDef {
                name,
                shape,
                dtype,
                mtype,
                atype,
                body,
            } => StmtKind::VarDef {
                name,
                shape,
                dtype,
                mtype,
                atype,
                body: Box::new(rec(*body, target, f, hit)),
            },
            StmtKind::For {
                iter,
                begin,
                end,
                property,
                body,
            } => StmtKind::For {
                iter,
                begin,
                end,
                property,
                body: Box::new(rec(*body, target, f, hit)),
            },
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => StmtKind::If {
                cond,
                then: Box::new(rec(*then, target, f, hit)),
                otherwise: otherwise.map(|o| Box::new(rec(*o, target, f, hit))),
            },
            k => k,
        };
        Stmt { id, label, kind }
    }
    let mut hit = false;
    let out = rec(root, target, f, &mut hit);
    hit.then_some(out)
}

/// Unwrap single-statement blocks: the "real" statement a body consists of.
pub fn peel(s: &Stmt) -> &Stmt {
    match &s.kind {
        StmtKind::Block(v) => {
            let non_empty: Vec<&Stmt> = v.iter().filter(|st| !st.is_empty()).collect();
            if non_empty.len() == 1 {
                peel(non_empty[0])
            } else {
                s
            }
        }
        _ => s,
    }
}

/// Destructure a `For` statement or fail.
pub struct ForParts {
    /// The loop's own id.
    pub id: StmtId,
    /// Iterator name.
    pub iter: String,
    /// Inclusive lower bound.
    pub begin: Expr,
    /// Exclusive upper bound.
    pub end: Expr,
    /// Scheduling attributes.
    pub property: ft_ir::ForProperty,
    /// Loop body (cloned).
    pub body: Stmt,
}

/// View a statement as a loop.
pub fn as_for(s: &Stmt) -> Result<ForParts, ScheduleError> {
    match &s.kind {
        StmtKind::For {
            iter,
            begin,
            end,
            property,
            body,
        } => Ok(ForParts {
            id: s.id,
            iter: iter.clone(),
            begin: begin.clone(),
            end: end.clone(),
            property: property.clone(),
            body: (**body).clone(),
        }),
        other => Err(ScheduleError::Unsupported(format!(
            "expected a for-loop, found {other:?}"
        ))),
    }
}

/// The extent (`end - begin`) of a loop, constant-folded.
pub fn extent(parts: &ForParts) -> Expr {
    ft_passes::const_fold_expr(parts.end.clone() - parts.begin.clone())
}

/// Collect the iterator names of all loops strictly inside `s`.
pub fn inner_loop_iters(s: &Stmt) -> Vec<String> {
    let mut out = Vec::new();
    for c in s.children() {
        c.walk(&mut |st| {
            if let StmtKind::For { iter, .. } = &st.kind {
                out.push(iter.clone());
            }
        });
    }
    if let StmtKind::For { iter, .. } = &s.kind {
        // `s` itself being a loop counts as inner when caching around it.
        out.push(iter.clone());
    }
    out
}


/// Every name bound anywhere in `func`: parameters, size parameters, local
/// tensor definitions, and loop iterators. Primitives that introduce new
/// bindings (e.g. `cache`) must pick names outside this set — re-applying a
/// primitive to the same tensor would otherwise emit a second def/iterator
/// with the first one's name, and the copy emitted by the second application
/// can end up shadowed by (or capturing) the first.
pub fn bound_names(func: &ft_ir::Func) -> std::collections::HashSet<String> {
    let mut used: std::collections::HashSet<String> =
        func.params.iter().map(|p| p.name.clone()).collect();
    used.extend(func.size_params.iter().cloned());
    func.body.walk(&mut |s| match &s.kind {
        StmtKind::VarDef { name, .. } => {
            used.insert(name.clone());
        }
        StmtKind::For { iter, .. } => {
            used.insert(iter.clone());
        }
        _ => {}
    });
    used
}

/// Pick `base` if unused, else `base.1`, `base.2`, …; reserves the result.
pub fn fresh_name(base: &str, used: &mut std::collections::HashSet<String>) -> String {
    let name = if used.contains(base) {
        (1..)
            .map(|k| format!("{base}.{k}"))
            .find(|c| !used.contains(c))
            .expect("unbounded candidate space")
    } else {
        base.to_string()
    };
    used.insert(name.clone());
    name
}

/// Deep-copy a statement with fresh ids (duplicated sub-trees must not share
/// identities, or later schedules would resolve and rewrite ambiguously).
pub fn refresh_ids(s: &Stmt) -> Stmt {
    let kind = match &s.kind {
        StmtKind::Block(v) => StmtKind::Block(v.iter().map(refresh_ids).collect()),
        StmtKind::VarDef {
            name,
            shape,
            dtype,
            mtype,
            atype,
            body,
        } => StmtKind::VarDef {
            name: name.clone(),
            shape: shape.clone(),
            dtype: *dtype,
            mtype: *mtype,
            atype: *atype,
            body: Box::new(refresh_ids(body)),
        },
        StmtKind::For {
            iter,
            begin,
            end,
            property,
            body,
        } => StmtKind::For {
            iter: iter.clone(),
            begin: begin.clone(),
            end: end.clone(),
            property: property.clone(),
            body: Box::new(refresh_ids(body)),
        },
        StmtKind::If {
            cond,
            then,
            otherwise,
        } => StmtKind::If {
            cond: cond.clone(),
            then: Box::new(refresh_ids(then)),
            otherwise: otherwise.as_ref().map(|o| Box::new(refresh_ids(o))),
        },
        k => k.clone(),
    };
    Stmt::new(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;

    #[test]
    fn replace_by_id_hits_nested() {
        let target = store("a", [0], 1.0f32);
        let tid = target.id;
        let tree = for_("i", 0, 4, block([target, store("b", [0], 2.0f32)]));
        let out = replace_by_id(tree, tid, &mut |s| {
            s.same_id(StmtKind::Empty)
        })
        .unwrap();
        let mut stores = 0;
        out.walk(&mut |s| {
            if matches!(s.kind, StmtKind::Store { .. }) {
                stores += 1;
            }
        });
        assert_eq!(stores, 1);
        assert!(replace_by_id(out, StmtId(u64::MAX), &mut |s| s).is_none());
    }

    #[test]
    fn peel_unwraps_singleton_blocks() {
        let inner = store("a", [0], 1.0f32);
        let iid = inner.id;
        let wrapped = block([block([inner, empty()])]);
        assert_eq!(peel(&wrapped).id, iid);
        let two = block([store("a", [0], 1.0f32), store("a", [1], 2.0f32)]);
        assert_eq!(peel(&two).id, two.id);
    }

    #[test]
    fn as_for_and_extent() {
        let l = for_("i", 2, var("n"), empty());
        let p = as_for(&l).unwrap();
        assert_eq!(p.iter, "i");
        assert_eq!(extent(&p), var("n") - 2);
        assert!(as_for(&empty()).is_err());
    }
}
