//! The schedule decision log: every primitive attempt is recorded with its
//! verdict, and rejections coming from the dependence engine carry the exact
//! structured `FoundDep`s — not just a formatted message.

use ft_analysis::parallelize_blockers;
use ft_ir::find::Selector;
use ft_ir::prelude::*;
use ft_schedule::Schedule;
use ft_trace::{TraceSink, Verdict};

/// `for i in 1..1024: y[i] = y[i-1] * 2` — a textbook loop-carried RAW.
fn scan_func() -> Func {
    Func::new("scan")
        .param("y", [1024], DataType::F32, AccessType::InOut)
        .body(for_(
            "i",
            1,
            1024,
            store(
                "y",
                [var("i")],
                load("y", [var("i") - 1]) * 2.0f32,
            ),
        ))
}

#[test]
fn rejected_parallelize_logs_the_exact_founddep() {
    let f = scan_func();
    let loop_id = Selector::from("i").resolve(&f).unwrap().id;
    let expected = parallelize_blockers(&f, loop_id);
    assert!(
        !expected.is_empty(),
        "test premise: the scan loop must have blockers"
    );

    let sink = TraceSink::new();
    let mut s = Schedule::with_sink(f, sink.clone());
    let err = s.parallelize("i", ParallelScope::OpenMp).unwrap_err();
    assert!(matches!(err, ft_schedule::ScheduleError::Illegal(_)));

    let decisions = sink.decisions();
    assert_eq!(decisions.len(), 1);
    let d = &decisions[0];
    assert_eq!(d.primitive, "parallelize");
    assert_eq!(d.verdict, Verdict::Rejected);
    assert!(d.args.contains('i'), "args should name the loop: {}", d.args);
    assert!(d.reason.as_deref().unwrap_or("").contains("dependence"));
    // The logged deps are exactly what parallelize_blockers reported.
    assert_eq!(
        format!("{:?}", d.deps),
        format!("{expected:?}"),
        "decision log must carry the structured blockers verbatim"
    );
    assert!(d.deps.iter().any(|dep| dep.var == "y"));
}

#[test]
fn applied_primitives_are_logged_too_and_no_sink_means_no_log() {
    // With a sink: a successful split is logged as applied.
    let sink = TraceSink::new();
    let mut s = Schedule::with_sink(scan_func(), sink.clone());
    s.split("i", 32).unwrap();
    let ds = sink.decisions();
    assert_eq!(ds.len(), 1);
    assert_eq!(ds[0].primitive, "split");
    assert_eq!(ds[0].verdict, Verdict::Applied);
    assert!(ds[0].deps.is_empty());

    // Without a sink: the same sequence records nothing anywhere.
    let mut s2 = Schedule::new(scan_func());
    s2.split("i", 32).unwrap();
    assert!(s2.sink().is_none());
}

#[test]
fn phase_labels_attach_to_decisions() {
    let sink = TraceSink::new();
    let mut s = Schedule::with_sink(scan_func(), sink.clone());
    s.set_phase(Some("auto_parallelize".to_string()));
    let _ = s.parallelize("i", ParallelScope::OpenMp);
    s.set_phase(None);
    let _ = s.split("i", 32);
    let ds = sink.decisions();
    assert_eq!(ds.len(), 2);
    assert_eq!(ds[0].pass.as_deref(), Some("auto_parallelize"));
    assert_eq!(ds[1].pass, None);
}
