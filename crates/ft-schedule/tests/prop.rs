//! Property test: every transformation sequence the legality checks accept
//! preserves interpreter semantics — "aggressively try transformations
//! without worrying about their correctness" (paper §4.3).

use ft_ir::prelude::*;
use ft_ir::{find, StmtId};
use ft_runtime::{Runtime, TensorVal};
use ft_schedule::Schedule;
use proptest::prelude::*;
use std::collections::HashMap;

/// Base program mixing guards, a local, a reduction and a recurrence.
fn subject() -> Func {
    Func::new("subject")
        .param("x", [24], DataType::F32, AccessType::Input)
        .param("y", [24], DataType::F32, AccessType::Output)
        .param("acc", Vec::<Expr>::new(), DataType::F32, AccessType::Output)
        .param("rec", [25], DataType::F32, AccessType::InOut)
        .body(block([
            for_(
                "i",
                0,
                24,
                var_def(
                    "t",
                    scalar(),
                    DataType::F32,
                    MemType::CpuStack,
                    block([
                        for_(
                            "k",
                            -1,
                            2,
                            if_(
                                (var("i") + var("k"))
                                    .ge(0)
                                    .and((var("i") + var("k")).lt(24)),
                                reduce(
                                    "t",
                                    scalar(),
                                    ReduceOp::Add,
                                    load("x", ft_ir::idx![var("i") + var("k")]),
                                ),
                            ),
                        ),
                        store("y", [var("i")], load("t", scalar()) * 0.5f32),
                    ]),
                ),
            ),
            for_(
                "j",
                0,
                24,
                reduce("acc", scalar(), ReduceOp::Add, load("y", [var("j")])),
            ),
            for_(
                "r",
                1,
                25,
                store(
                    "rec",
                    [var("r")],
                    load("rec", ft_ir::idx![var("r") - 1]) * 0.9f32 + 0.1f32,
                ),
            ),
        ]))
}

fn run(func: &Func) -> (Vec<f64>, f64, Vec<f64>) {
    let x = TensorVal::from_f32(&[24], (0..24).map(|k| (k as f32 * 0.41).cos()).collect());
    let rec = TensorVal::from_f32(&[25], vec![0.3; 25]);
    let inputs: HashMap<String, TensorVal> = [
        ("x".to_string(), x),
        ("rec".to_string(), rec),
    ]
    .into_iter()
    .collect();
    let r = Runtime::new()
        .run(func, &inputs, &HashMap::new())
        .unwrap_or_else(|e| panic!("run failed: {e}\n{func}"));
    (
        r.output("y").to_f64_vec(),
        r.output("acc").to_f64_vec()[0],
        r.output("rec").to_f64_vec(),
    )
}

fn loops_of(func: &Func) -> Vec<StmtId> {
    find::find_stmts(&func.body, &|s| matches!(s.kind, StmtKind::For { .. }))
        .iter()
        .map(|s| s.id)
        .collect()
}

#[derive(Debug, Clone)]
enum Move {
    Split(usize, i64),
    Parallelize(usize),
    Vectorize(usize),
    Unroll(usize),
    Fuse(usize, usize),
    Cache(usize),
    CacheReduce(usize),
    SeparateTail(usize),
    Blend(usize),
    Merge(usize, usize),
}

fn arb_move() -> impl Strategy<Value = Move> {
    let idx = 0usize..64;
    prop_oneof![
        (idx.clone(), prop_oneof![Just(2i64), Just(3), Just(5), Just(8)])
            .prop_map(|(l, f)| Move::Split(l, f)),
        idx.clone().prop_map(Move::Parallelize),
        idx.clone().prop_map(Move::Vectorize),
        idx.clone().prop_map(Move::Unroll),
        (idx.clone(), idx.clone()).prop_map(|(a, b)| Move::Fuse(a, b)),
        idx.clone().prop_map(Move::Cache),
        idx.clone().prop_map(Move::CacheReduce),
        idx.clone().prop_map(Move::SeparateTail),
        idx.clone().prop_map(Move::Blend),
        (idx.clone(), idx).prop_map(|(a, b)| Move::Merge(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accepted_sequences_preserve_semantics(moves in proptest::collection::vec(arb_move(), 1..7)) {
        let base = subject();
        let (y0, acc0, rec0) = run(&base);
        let mut sched = Schedule::new(base);
        for m in &moves {
            let loops = loops_of(sched.func());
            if loops.is_empty() { break; }
            let pick = |k: usize| loops[k % loops.len()];
            let _ = match m {
                Move::Split(l, f) => sched.split(pick(*l), *f).map(|_| ()),
                Move::Parallelize(l) => sched.parallelize(pick(*l), ParallelScope::OpenMp),
                Move::Vectorize(l) => sched.vectorize(pick(*l)),
                Move::Unroll(l) => sched.unroll(pick(*l)),
                Move::Fuse(a, b) => sched.fuse(pick(*a), pick(*b)).map(|_| ()),
                Move::Cache(l) => sched.cache(pick(*l), "x", MemType::CpuStack).map(|_| ()),
                Move::CacheReduce(l) => sched
                    .cache_reduce(pick(*l), "acc", MemType::CpuStack)
                    .map(|_| ()),
                Move::SeparateTail(l) => sched.separate_tail(pick(*l)).map(|_| ()),
                Move::Blend(l) => sched.blend(pick(*l)),
                Move::Merge(a, b) => sched.merge(pick(*a), pick(*b)).map(|_| ()),
            };
        }
        let (y1, acc1, rec1) = run(sched.func());
        for (a, b) in y0.iter().zip(&y1) {
            prop_assert!((a - b).abs() < 1e-4, "y diverged after {moves:?}\n{}", sched.func());
        }
        prop_assert!((acc0 - acc1).abs() < 1e-3 * (1.0 + acc0.abs()), "acc diverged after {moves:?}");
        for (a, b) in rec0.iter().zip(&rec1) {
            prop_assert!((a - b).abs() < 1e-4, "rec diverged after {moves:?}\n{}", sched.func());
        }
    }
}
