//! Integration tests for every Table-1 transformation: structural effects,
//! legality decisions, and semantics preservation under the interpreter.

use ft_ir::prelude::*;
use ft_runtime::{Runtime, TensorVal};
use ft_schedule::{Schedule, ScheduleError};
use std::collections::HashMap;

/// Run a function and return the named output.
fn run(func: &Func, inputs: &[(&str, TensorVal)], sizes: &[(&str, i64)], out: &str) -> TensorVal {
    let inputs: HashMap<String, TensorVal> = inputs
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    let sizes: HashMap<String, i64> = sizes.iter().map(|(k, v)| (k.to_string(), *v)).collect();
    Runtime::new()
        .run(func, &inputs, &sizes)
        .unwrap_or_else(|e| panic!("run failed: {e}\n{func}"))
        .output(out)
        .clone()
}

fn seq_f32(n: usize) -> TensorVal {
    TensorVal::from_f32(&[n], (0..n).map(|i| (i as f32 * 0.7).sin()).collect())
}

/// Check that a transformed function computes the same outputs.
fn assert_same_semantics(
    before: &Func,
    after: &Func,
    inputs: &[(&str, TensorVal)],
    sizes: &[(&str, i64)],
    out: &str,
) {
    let a = run(before, inputs, sizes, out);
    let b = run(after, inputs, sizes, out);
    assert!(
        a.allclose(&b, 1e-5),
        "semantics changed:\nBEFORE\n{before}\nAFTER\n{after}"
    );
}

fn stencil_func(n: i64) -> Func {
    // y[i] = x[i] * 2 + x[i + 1]
    Func::new("stencil")
        .param("x", [n + 1], DataType::F32, AccessType::Input)
        .param("y", [n], DataType::F32, AccessType::Output)
        .body(for_(
            "i",
            0,
            n,
            store(
                "y",
                [var("i")],
                load("x", [var("i")]) * 2.0f32 + load("x", [var("i") + 1]),
            ),
        ))
}

#[test]
fn split_preserves_semantics_with_tail_guard() {
    let f = stencil_func(10);
    let mut s = Schedule::new(f.clone());
    let (outer, inner) = s.split("i", 4).unwrap();
    assert_ne!(outer, inner);
    // 10 = 2*4 + 2: a guard must exist.
    let text = s.func().to_string();
    assert!(text.contains("if"), "{text}");
    assert_same_semantics(&f, s.func(), &[("x", seq_f32(11))], &[], "y");
}

#[test]
fn split_exact_has_no_guard() {
    let f = stencil_func(8);
    let mut s = Schedule::new(f.clone());
    s.split("i", 4).unwrap();
    assert!(!s.func().to_string().contains("if"));
    assert_same_semantics(&f, s.func(), &[("x", seq_f32(9))], &[], "y");
}

#[test]
fn merge_two_loops() {
    let f = Func::new("f")
        .param("a", [6, 5], DataType::F32, AccessType::Output)
        .body(for_(
            "i",
            0,
            6,
            for_(
                "j",
                0,
                5,
                store("a", [var("i"), var("j")], var("i") * 10 + var("j")),
            ),
        ));
    let mut s = Schedule::new(f.clone());
    let merged = s.merge("i", "j").unwrap();
    let m = ft_ir::find::find_by_id(&s.func().body, merged).unwrap();
    match &m.kind {
        StmtKind::For { iter, end, .. } => {
            assert_eq!(iter, "i.j");
            assert_eq!(*end, Expr::IntConst(30));
        }
        _ => panic!("merge did not produce a loop"),
    }
    assert_same_semantics(&f, s.func(), &[], &[], "a");
}

#[test]
fn merge_rejects_triangular() {
    let f = Func::new("f")
        .param("a", [6, 6], DataType::F32, AccessType::Output)
        .body(for_(
            "i",
            0,
            6,
            for_("j", 0, var("i"), store("a", [var("i"), var("j")], 1.0f32)),
        ));
    let mut s = Schedule::new(f);
    assert!(matches!(
        s.merge("i", "j"),
        Err(ScheduleError::Unsupported(_))
    ));
}

#[test]
fn reorder_legal_case_runs_and_permutes() {
    let f = Func::new("f")
        .param("a", [4, 3], DataType::F32, AccessType::Output)
        .param("b", [4, 3], DataType::F32, AccessType::Input)
        .body(for_(
            "i",
            0,
            4,
            for_(
                "j",
                0,
                3,
                store(
                    "a",
                    [var("i"), var("j")],
                    load("b", [var("i"), var("j")]) + 1.0f32,
                ),
            ),
        ));
    let mut s = Schedule::new(f.clone());
    s.reorder(&["j", "i"]).unwrap();
    // j is now outermost.
    match &ft_schedule::util::peel(&s.func().body).kind {
        StmtKind::For { iter, .. } => assert_eq!(iter, "j"),
        _ => panic!(),
    }
    let b = TensorVal::from_f32(&[4, 3], (0..12).map(|x| x as f32).collect());
    assert_same_semantics(&f, s.func(), &[("b", b)], &[], "a");
}

#[test]
fn reorder_illegal_case_rejected() {
    // Fig. 12(b): scalar recurrence.
    let f = Func::new("f")
        .param("a", Vec::<Expr>::new(), DataType::F32, AccessType::InOut)
        .param("b", [4, 3], DataType::F32, AccessType::Input)
        .body(for_(
            "i",
            0,
            4,
            for_(
                "j",
                0,
                3,
                store(
                    "a",
                    scalar(),
                    load("a", scalar()) * load("b", [var("i"), var("j")]) + 1.0f32,
                ),
            ),
        ));
    let mut s = Schedule::new(f);
    assert!(matches!(
        s.reorder(&["j", "i"]),
        Err(ScheduleError::Illegal(_))
    ));
}

#[test]
fn fission_splits_loop_bodies() {
    let s1 = store("t", [var("i")], load("x", [var("i")]) * 2.0f32);
    let s1_id = s1.id;
    let f = Func::new("f")
        .param("x", [8], DataType::F32, AccessType::Input)
        .param("t", [8], DataType::F32, AccessType::Output)
        .param("y", [8], DataType::F32, AccessType::Output)
        .body(for_(
            "i",
            0,
            8,
            block([
                s1,
                store("y", [var("i")], load("t", [var("i")]) + 1.0f32),
            ]),
        ));
    let mut s = Schedule::new(f.clone());
    let (l1, l2) = s.fission("i", s1_id).unwrap();
    assert_ne!(l1, l2);
    let loops = ft_ir::find::find_stmts(&s.func().body, &|st| {
        matches!(st.kind, StmtKind::For { .. })
    });
    assert_eq!(loops.len(), 2);
    assert_same_semantics(&f, s.func(), &[("x", seq_f32(8))], &[], "y");
}

#[test]
fn fission_rejects_backward_dep() {
    // S1 reads b[i-1] written by S2 in earlier iterations: fission reverses.
    let s1 = store("a", [var("i")], load("b", [var("i") - 1]));
    let s1_id = s1.id;
    let f = Func::new("f")
        .param("a", [8], DataType::F32, AccessType::Output)
        .param("b", [8], DataType::F32, AccessType::InOut)
        .body(for_(
            "i",
            1,
            8,
            block([s1, store("b", [var("i")], var("i"))]),
        ));
    let mut s = Schedule::new(f);
    assert!(matches!(
        s.fission("i", s1_id),
        Err(ScheduleError::Illegal(_))
    ));
}

#[test]
fn fuse_elementwise_loops() {
    let f = Func::new("f")
        .param("x", [8], DataType::F32, AccessType::Input)
        .param("t", [8], DataType::F32, AccessType::Output)
        .param("y", [8], DataType::F32, AccessType::Output)
        .body(block([
            for_("i", 0, 8, store("t", [var("i")], load("x", [var("i")]) * 2.0f32)),
            for_("j", 0, 8, store("y", [var("j")], load("t", [var("j")]) + 1.0f32)),
        ]));
    let mut s = Schedule::new(f.clone());
    let fused = s.fuse("i", "j").unwrap();
    let loops = ft_ir::find::find_stmts(&s.func().body, &|st| {
        matches!(st.kind, StmtKind::For { .. })
    });
    assert_eq!(loops.len(), 1);
    assert_eq!(loops[0].id, fused);
    assert_same_semantics(&f, s.func(), &[("x", seq_f32(8))], &[], "y");
}

#[test]
fn fuse_with_offset_ranges() {
    // Paper Fig. 10: ranges -w..w+1 and 0..2w+1 with matching extents fuse
    // after the "+w" shift.
    let w = 3i64;
    let f = Func::new("f")
        .param("dot", [2 * w + 1], DataType::F32, AccessType::Input)
        .param("a", [2 * w + 1], DataType::F32, AccessType::Output)
        .param("b", [2 * w + 1], DataType::F32, AccessType::Output)
        .body(block([
            for_("k", -w, w + 1, store("a", [var("k") + w], load("dot", [var("k") + w]))),
            for_("k2", 0, 2 * w + 1, store("b", [var("k2")], var("k2"))),
        ]));
    let mut s = Schedule::new(f.clone());
    s.fuse("k", "k2").unwrap();
    assert_same_semantics(&f, s.func(), &[("dot", seq_f32(7))], &[], "a");
    assert_same_semantics(&f, s.func(), &[("dot", seq_f32(7))], &[], "b");
}

#[test]
fn fuse_rejects_dot_max_pattern() {
    // Paper: fusing the max-reduction consumer with its producer is illegal.
    let f = Func::new("f")
        .param("dot", [8], DataType::F32, AccessType::Input)
        .param("m", Vec::<Expr>::new(), DataType::F32, AccessType::InOut)
        .param("out", [8], DataType::F32, AccessType::Output)
        .body(block([
            for_(
                "k",
                0,
                8,
                reduce("m", scalar(), ReduceOp::Max, load("dot", [var("k")])),
            ),
            for_(
                "k2",
                0,
                8,
                store(
                    "out",
                    [var("k2")],
                    load("dot", [var("k2")]) - load("m", scalar()),
                ),
            ),
        ]));
    let mut s = Schedule::new(f);
    assert!(matches!(s.fuse("k", "k2"), Err(ScheduleError::Illegal(_))));
}

#[test]
fn swap_independent_statements() {
    let s1 = store("a", [var("i")], 1.0f32);
    let s2 = store("b", [var("i")], 2.0f32);
    let (id1, id2) = (s1.id, s2.id);
    let f = Func::new("f")
        .param("a", [4], DataType::F32, AccessType::Output)
        .param("b", [4], DataType::F32, AccessType::Output)
        .body(for_("i", 0, 4, block([s1, s2])));
    let mut s = Schedule::new(f.clone());
    s.swap(id1, id2).unwrap();
    assert_same_semantics(&f, s.func(), &[], &[], "a");
    // Conflicting statements refuse to swap.
    let s1 = store("a", [var("i")], 1.0f32);
    let s2 = store("b", [var("i")], load("a", [var("i")]));
    let (id1, id2) = (s1.id, s2.id);
    let f = Func::new("f")
        .param("a", [4], DataType::F32, AccessType::Output)
        .param("b", [4], DataType::F32, AccessType::Output)
        .body(for_("i", 0, 4, block([s1, s2])));
    let mut s = Schedule::new(f);
    assert!(matches!(s.swap(id1, id2), Err(ScheduleError::Illegal(_))));
}

#[test]
fn parallelize_marks_loop_and_preserves_results() {
    let f = stencil_func(64);
    let mut s = Schedule::new(f.clone());
    s.parallelize("i", ParallelScope::OpenMp).unwrap();
    match &ft_schedule::util::peel(&s.func().body).kind {
        StmtKind::For { property, .. } => {
            assert_eq!(property.parallel, ParallelScope::OpenMp)
        }
        _ => panic!(),
    }
    assert_same_semantics(&f, s.func(), &[("x", seq_f32(65))], &[], "y");
}

#[test]
fn parallelize_rejects_recurrence() {
    let f = Func::new("f")
        .param("a", [64], DataType::F32, AccessType::InOut)
        .body(for_(
            "i",
            1,
            64,
            store("a", [var("i")], load("a", [var("i") - 1]) + 1.0f32),
        ));
    let mut s = Schedule::new(f);
    assert!(matches!(
        s.parallelize("i", ParallelScope::OpenMp),
        Err(ScheduleError::Illegal(_))
    ));
}

#[test]
fn parallelize_reduction_becomes_atomic() {
    // Fig. 13(e): histogram via indirect index.
    let f = Func::new("f")
        .param("idx", [64], DataType::I32, AccessType::Input)
        .param("h", [4], DataType::F32, AccessType::Output)
        .body(for_(
            "i",
            0,
            64,
            Stmt::new(StmtKind::ReduceTo {
                var: "h".to_string(),
                indices: vec![Expr::cast(DataType::I64, load("idx", [var("i")]))],
                op: ReduceOp::Add,
                value: Expr::FloatConst(1.0),
                atomic: false,
            }),
        ));
    let mut s = Schedule::new(f);
    s.parallelize("i", ParallelScope::OpenMp).unwrap();
    let mut found_atomic = false;
    s.func().body.walk(&mut |st| {
        if let StmtKind::ReduceTo { atomic, .. } = &st.kind {
            found_atomic |= *atomic;
        }
    });
    assert!(found_atomic, "reduction should be lowered to atomic");
}

#[test]
fn unroll_expands_constant_loops() {
    let f = stencil_func(4);
    let mut s = Schedule::new(f.clone());
    s.unroll("i").unwrap();
    assert!(ft_ir::find::find_stmts(&s.func().body, &|st| {
        matches!(st.kind, StmtKind::For { .. })
    })
    .is_empty());
    let stores = ft_ir::find::find_stmts(&s.func().body, &|st| {
        matches!(st.kind, StmtKind::Store { .. })
    });
    assert_eq!(stores.len(), 4);
    assert_same_semantics(&f, s.func(), &[("x", seq_f32(5))], &[], "y");
    // Non-constant bounds are rejected.
    let g = Func::new("g")
        .param("y", [8], DataType::F32, AccessType::Output)
        .size_param("n")
        .body(for_("i", 0, var("n"), store("y", [var("i")], 1.0f32)));
    let mut s = Schedule::new(g);
    assert!(matches!(s.unroll("i"), Err(ScheduleError::Unsupported(_))));
}

#[test]
fn blend_interleaves_iterations() {
    let f = Func::new("f")
        .param("a", [3], DataType::F32, AccessType::Output)
        .param("b", [3], DataType::F32, AccessType::Output)
        .body(for_(
            "i",
            0,
            3,
            block([
                store("a", [var("i")], var("i")),
                store("b", [var("i")], var("i") * 2),
            ]),
        ));
    let mut s = Schedule::new(f.clone());
    s.blend("i").unwrap();
    // All stores to a come before all stores to b.
    let mut order = Vec::new();
    s.func().body.walk(&mut |st| {
        if let StmtKind::Store { var, .. } = &st.kind {
            order.push(var.clone());
        }
    });
    assert_eq!(order, vec!["a", "a", "a", "b", "b", "b"]);
    assert_same_semantics(&f, s.func(), &[], &[], "b");
}

#[test]
fn vectorize_marks_innermost() {
    let f = stencil_func(16);
    let mut s = Schedule::new(f.clone());
    s.vectorize("i").unwrap();
    match &ft_schedule::util::peel(&s.func().body).kind {
        StmtKind::For { property, .. } => assert!(property.vectorize),
        _ => panic!(),
    }
    assert_same_semantics(&f, s.func(), &[("x", seq_f32(17))], &[], "y");
}

#[test]
fn cache_fig14_pattern() {
    // for i in 0..n: for j in 0..m: f(a[i + j]) — cache a around loop j.
    let f = Func::new("f")
        .param("a", [12], DataType::F32, AccessType::Input)
        .param("y", [8, 4], DataType::F32, AccessType::Output)
        .body(for_(
            "i",
            0,
            8,
            for_(
                "j",
                0,
                4,
                store("y", [var("i"), var("j")], load("a", [var("i") + var("j")]) * 2.0f32),
            )
            .with_label("Lj"),
        ));
    let mut s = Schedule::new(f.clone());
    let name = s
        .cache(ft_ir::find::Selector::Label("Lj".to_string()), "a", MemType::CpuStack)
        .unwrap();
    assert_eq!(name, "a.cache");
    // The cache tensor has extent m = 4.
    let def = ft_ir::find::find_stmt(&s.func().body, &|st| {
        matches!(&st.kind, StmtKind::VarDef { name, .. } if name == "a.cache")
    })
    .expect("cache def exists");
    match &def.kind {
        StmtKind::VarDef { shape, mtype, .. } => {
            assert_eq!(shape, &vec![Expr::IntConst(4)]);
            assert_eq!(*mtype, MemType::CpuStack);
        }
        _ => unreachable!(),
    }
    assert_same_semantics(&f, s.func(), &[("a", seq_f32(12))], &[], "y");
}

#[test]
fn cache_written_region_is_stored_back() {
    let f = Func::new("f")
        .param("a", [8], DataType::F32, AccessType::InOut)
        .body(
            for_("j", 0, 8, store("a", [var("j")], var("j") * 3)).with_label("L"),
        );
    let mut s = Schedule::new(f.clone());
    s.cache(ft_ir::find::Selector::Label("L".to_string()), "a", MemType::CpuStack)
        .unwrap();
    let a = TensorVal::from_f32(&[8], vec![0.0; 8]);
    assert_same_semantics(&f, s.func(), &[("a", a)], &[], "a");
}

#[test]
fn cache_reduce_accumulates_locally() {
    // for i: for j: acc[] += x[i*4+j] — cache_reduce acc around j.
    let f = Func::new("f")
        .param("x", [32], DataType::F32, AccessType::Input)
        .param("acc", Vec::<Expr>::new(), DataType::F32, AccessType::Output)
        .body(for_(
            "i",
            0,
            8,
            for_(
                "j",
                0,
                4,
                reduce(
                    "acc",
                    scalar(),
                    ReduceOp::Add,
                    load("x", [var("i") * 4 + var("j")]),
                ),
            )
            .with_label("Lj"),
        ));
    let mut s = Schedule::new(f.clone());
    let name = s
        .cache_reduce(
            ft_ir::find::Selector::Label("Lj".to_string()),
            "acc",
            MemType::CpuStack,
        )
        .unwrap();
    assert_eq!(name, "acc.cache_red");
    assert_same_semantics(&f, s.func(), &[("x", seq_f32(32))], &[], "acc");
}

#[test]
fn set_mtype_moves_local_tensors() {
    let f = Func::new("f")
        .param("y", [4], DataType::F32, AccessType::Output)
        .body(var_def(
            "t",
            [4],
            DataType::F32,
            MemType::CpuHeap,
            block([
                store("t", [0], 1.0f32),
                store("y", [0], load("t", [0])),
            ]),
        ));
    let mut s = Schedule::new(f);
    s.set_mtype("t", MemType::CpuStack).unwrap();
    let def = ft_ir::find::find_stmt(&s.func().body, &|st| {
        matches!(st.kind, StmtKind::VarDef { .. })
    })
    .unwrap();
    match &def.kind {
        StmtKind::VarDef { mtype, .. } => assert_eq!(*mtype, MemType::CpuStack),
        _ => unreachable!(),
    }
    assert!(s.set_mtype("zz", MemType::CpuStack).is_err());
}

#[test]
fn var_split_reorder_merge_roundtrip() {
    let base = |layout: &mut dyn FnMut(&mut Schedule)| {
        let f = Func::new("f")
            .param("x", [24], DataType::F32, AccessType::Input)
            .param("y", [24], DataType::F32, AccessType::Output)
            .body(var_def(
                "t",
                [24],
                DataType::F32,
                MemType::CpuHeap,
                block([
                    for_("i", 0, 24, store("t", [var("i")], load("x", [var("i")]) * 2.0f32)),
                    for_("j", 0, 24, store("y", [var("j")], load("t", [var("j")]) + 1.0f32)),
                ]),
            ));
        let mut s = Schedule::new(f);
        layout(&mut s);
        s.into_func()
    };
    let plain = base(&mut |_| {});
    let split = base(&mut |s| s.var_split("t", 0, 6).unwrap());
    let split_reordered = base(&mut |s| {
        s.var_split("t", 0, 6).unwrap();
        s.var_reorder("t", &[1, 0]).unwrap();
    });
    let merged_back = base(&mut |s| {
        s.var_split("t", 0, 6).unwrap();
        s.var_merge("t", 0).unwrap();
    });
    let x = seq_f32(24);
    let expect = run(&plain, &[("x", x.clone())], &[], "y");
    for f in [&split, &split_reordered, &merged_back] {
        let got = run(f, &[("x", x.clone())], &[], "y");
        assert!(expect.allclose(&got, 1e-6), "layout changed semantics:\n{f}");
    }
    // Layout of parameters is rejected.
    let f = stencil_func(4);
    let mut s = Schedule::new(f);
    assert!(s.var_split("x", 0, 2).is_err());
}

#[test]
fn as_lib_replaces_matmul_nest() {
    let (m, k, n) = (6i64, 5i64, 4i64);
    let f = Func::new("mm")
        .param("A", [m, k], DataType::F32, AccessType::Input)
        .param("B", [k, n], DataType::F32, AccessType::Input)
        .param("C", [m, n], DataType::F32, AccessType::Output)
        .body(for_(
            "i",
            0,
            m,
            for_(
                "j",
                0,
                n,
                block([
                    store("C", [var("i"), var("j")], 0.0f32),
                    for_(
                        "kk",
                        0,
                        k,
                        reduce(
                            "C",
                            [var("i"), var("j")],
                            ReduceOp::Add,
                            load("A", [var("i"), var("kk")]) * load("B", [var("kk"), var("j")]),
                        ),
                    ),
                ]),
            ),
        ));
    let mut s = Schedule::new(f.clone());
    s.as_lib("i").unwrap();
    assert!(ft_ir::find::find_stmt(&s.func().body, &|st| {
        matches!(st.kind, StmtKind::LibCall { .. })
    })
    .is_some());
    let a = TensorVal::from_f32(
        &[m as usize, k as usize],
        (0..m * k).map(|x| (x as f32).cos()).collect(),
    );
    let b = TensorVal::from_f32(
        &[k as usize, n as usize],
        (0..k * n).map(|x| (x as f32) * 0.1).collect(),
    );
    assert_same_semantics(&f, s.func(), &[("A", a), ("B", b)], &[], "C");
}

#[test]
fn as_lib_rejects_non_matmul() {
    let f = stencil_func(8);
    let mut s = Schedule::new(f);
    assert!(matches!(s.as_lib("i"), Err(ScheduleError::Unsupported(_))));
}

#[test]
fn separate_tail_removes_guard_from_main() {
    let f = stencil_func(10);
    let mut s = Schedule::new(f.clone());
    let (outer, _) = s.split("i", 4).unwrap();
    let (main_l, tail_l) = s.separate_tail(outer).unwrap();
    assert_ne!(main_l, tail_l);
    // The main loop contains no branches; the program still has one (tail).
    let main_stmt = ft_ir::find::find_by_id(&s.func().body, main_l).unwrap();
    assert!(ft_ir::find::find_stmt(main_stmt, &|st| matches!(
        st.kind,
        StmtKind::If { .. }
    ))
    .is_none());
    assert_same_semantics(&f, s.func(), &[("x", seq_f32(11))], &[], "y");
}

#[test]
fn composed_schedule_pipeline() {
    // split + parallelize outer + vectorize inner + cache: the combined
    // pipeline the auto-scheduler builds, applied by hand.
    let f = stencil_func(64);
    let mut s = Schedule::new(f.clone());
    let (outer, inner) = s.split("i", 8).unwrap();
    s.parallelize(outer, ParallelScope::OpenMp).unwrap();
    s.vectorize(inner).unwrap();
    assert_same_semantics(&f, s.func(), &[("x", seq_f32(65))], &[], "y");
}
