//! A compile-once/run-many serving front door over the compiled engine.
//!
//! The paper's Table 2 amortization argument — compilation cost is paid
//! once because one compiled program serves many executions — only holds
//! under concurrent traffic if the machinery around the compiler is safe to
//! share. [`Server`] is that front door: it accepts `(program, sizes,
//! inputs)` jobs keyed by content hash and runs them on a persistent
//! worker pool over one shared [`CompiledEngine`], with four serving
//! policies layered on top:
//!
//! * **In-flight dedup** — requests for a key whose first (cold)
//!   compilation is still in flight don't start another; they queue behind
//!   it and are counted as `serve.inflight_dedup_hits`. The compile itself
//!   is additionally deduplicated process-wide (singleflight) and
//!   machine-wide (a file lock on cache publishes) inside the engine, so a
//!   64-request stampede on a cold key spawns exactly one `cc`.
//! * **Fairness** — jobs queue per client and are drained round-robin, so
//!   one chatty client cannot starve the rest. The queue is bounded;
//!   overflow is a structured [`ServeError::Overloaded`], not unbounded
//!   growth.
//! * **Context pooling** — each program key keeps a small pool of recycled
//!   [`RunContext`]s. A warm request draws a context whose arena, pools and
//!   staging buffers are already sized for its plan, so steady state
//!   performs zero tensor heap allocations (`mem.arena.warm_alloc_calls`).
//!   Digest-mode requests ([`Request::digest_only`]) let the server keep
//!   the output buffers too, completing the zero-alloc loop.
//! * **Memory budget** — admission is gated on the memory plan's
//!   [`run_peak_bytes`](MemPlan::run_peak_bytes): when the sum over
//!   admitted (queued + executing) jobs would exceed the configured
//!   budget, the request is rejected with the numbers that said no
//!   ([`ServeError::OverBudget`]).
//!
//! Everything is observable through ft-metrics: `serve.requests`,
//! `serve.ok`/`serve.errors`, the rejection counters, a
//! `serve.queue_depth` gauge, and `serve.latency_us`/`serve.exec_us`
//! histograms (p50/p99 via `Histogram::quantile`).
//!
//! The implementation is plain threads + channels — no async executor, no
//! external dependencies — matching the rest of the workspace.

use ft_analysis::MemPlan;
use ft_ir::Func;
use ft_metrics::Metrics;
use ft_runtime::{
    CompiledEngine, ExecutionEngine, RunContext, RunResult, RuntimeError, Scalar, TensorVal,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Serving policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing jobs. `0` starts no threads — jobs are
    /// driven manually with [`Server::pump_one`], which makes scheduling
    /// deterministic for tests.
    pub workers: usize,
    /// Maximum queued (admitted, not yet executing) jobs across all
    /// clients; submissions beyond it get [`ServeError::Overloaded`].
    pub queue_cap: usize,
    /// Per-server memory budget over the planned peak bytes of admitted
    /// jobs; `None` = unbounded.
    pub mem_budget_bytes: Option<u64>,
    /// Recycled `RunContext`s kept per program key. More contexts let more
    /// workers run the same key warm concurrently; each holds the key's
    /// full arena + staging footprint.
    pub ctx_pool_per_key: usize,
    /// Artifact cache directory for the compiled engine (`None` = the
    /// engine's default resolution, honoring `FT_CACHE_DIR`).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_cap: 256,
            mem_budget_bytes: None,
            ctx_pool_per_key: 4,
            cache_dir: None,
        }
    }
}

/// Why the server refused or failed a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded queue is full — retry later (structured backpressure
    /// instead of unbounded queue growth).
    Overloaded {
        /// Jobs queued at rejection time.
        depth: usize,
        /// The configured queue capacity.
        cap: usize,
    },
    /// Admitting the job would push the planned-peak memory of admitted
    /// jobs over the server's budget.
    OverBudget {
        /// The job's planned peak bytes (arena + parameter buffers).
        requested_bytes: u64,
        /// Planned peak bytes of already-admitted jobs.
        admitted_bytes: u64,
        /// The configured budget.
        budget_bytes: u64,
    },
    /// The run itself failed.
    Runtime(RuntimeError),
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, cap } => {
                write!(f, "overloaded: {depth} jobs queued (cap {cap}); retry later")
            }
            ServeError::OverBudget {
                requested_bytes,
                admitted_bytes,
                budget_bytes,
            } => write!(
                f,
                "over_budget: job needs {requested_bytes} planned-peak bytes but \
                 {admitted_bytes} of {budget_bytes} are already admitted"
            ),
            ServeError::Runtime(e) => write!(f, "runtime: {e}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<RuntimeError> for ServeError {
    fn from(e: RuntimeError) -> ServeError {
        ServeError::Runtime(e)
    }
}

/// One serving job: a program, its concrete sizes, and input tensors.
#[derive(Debug, Clone)]
pub struct Request {
    /// The lowered program to run. `Arc` so a stampede of identical
    /// requests shares one copy.
    pub func: Arc<Func>,
    /// Input tensors by parameter name.
    pub inputs: HashMap<String, TensorVal>,
    /// Size-parameter bindings.
    pub sizes: HashMap<String, i64>,
    /// Return an FNV-1a digest of the outputs instead of the tensors.
    /// The server then recycles the output buffers into the key's context
    /// pool, so warm requests allocate nothing at all.
    pub digest_only: bool,
}

impl Request {
    /// A tensor-returning request.
    pub fn new(
        func: Arc<Func>,
        inputs: HashMap<String, TensorVal>,
        sizes: HashMap<String, i64>,
    ) -> Request {
        Request {
            func,
            inputs,
            sizes,
            digest_only: false,
        }
    }

    /// Switch to digest-only responses (zero-alloc warm path).
    pub fn digest(mut self) -> Request {
        self.digest_only = true;
        self
    }
}

/// What a completed job returns.
#[derive(Debug, Clone)]
pub enum Payload {
    /// The output tensors (ownership transferred to the caller).
    Tensors(HashMap<String, TensorVal>),
    /// Content digest of the outputs (buffers stayed in the server's
    /// context pool).
    Digest(u64),
}

/// A completed job with its timing breakdown.
#[derive(Debug, Clone)]
pub struct Response {
    /// Outputs or their digest, per [`Request::digest_only`].
    pub payload: Payload,
    /// Whether the program key had completed at least once before this job
    /// started (i.e. the compile was already amortized).
    pub warm: bool,
    /// Microseconds from admission to execution start.
    pub queue_us: u64,
    /// Microseconds executing (includes the compile on cold keys).
    pub exec_us: u64,
}

impl Response {
    /// The digest value, for digest-mode responses.
    pub fn digest(&self) -> Option<u64> {
        match self.payload {
            Payload::Digest(d) => Some(d),
            Payload::Tensors(_) => None,
        }
    }
}

struct Job {
    key: u64,
    func: Arc<Func>,
    inputs: HashMap<String, TensorVal>,
    sizes: HashMap<String, i64>,
    digest_only: bool,
    peak_bytes: u64,
    enqueued: Instant,
    reply: mpsc::Sender<Result<Response, ServeError>>,
}

/// All mutable scheduling state, behind one mutex: the per-client queues
/// with their round-robin ring, admission accounting, and the key
/// lifecycle sets.
#[derive(Default)]
struct QueueState {
    clients: HashMap<String, VecDeque<Job>>,
    /// Client ids in first-seen order; the drain cursor walks this ring.
    ring: Vec<String>,
    cursor: usize,
    queued: usize,
    /// Planned-peak bytes of admitted (queued + executing) jobs.
    admitted_bytes: u64,
    /// Keys submitted whose first completion hasn't happened yet; a second
    /// submission while a key is here is an in-flight dedup hit.
    compiling: HashSet<u64>,
    /// Keys that have completed at least once (artifact + contexts exist).
    warm: HashSet<u64>,
    shutdown: bool,
}

struct Inner {
    cfg: ServeConfig,
    engine: CompiledEngine,
    metrics: Metrics,
    q: Mutex<QueueState>,
    work: Condvar,
    /// Recycled per-key contexts. Separate from the queue mutex so a long
    /// run never blocks admission.
    ctxs: Mutex<HashMap<u64, Vec<RunContext>>>,
}

/// The serving front door. Construct with [`Server::new`], submit with
/// [`Server::submit`] (async, returns a receiver) or [`Server::call`]
/// (blocking). Dropping the server drains nothing: queued jobs get
/// [`ServeError::ShuttingDown`] replies.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Content key of a request: FNV-1a over the printed program and the
/// sorted size bindings. Everything that changes generated code or buffer
/// geometry is in one of the two.
fn content_key(func: &Func, sizes: &HashMap<String, i64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(func.to_string().as_bytes());
    let mut kv: Vec<(&String, &i64)> = sizes.iter().collect();
    kv.sort();
    for (k, v) in kv {
        eat(b"|");
        eat(k.as_bytes());
        eat(&v.to_le_bytes());
    }
    h
}

/// FNV-1a digest over output names, shapes and elements — no allocation,
/// so digest-mode warm requests stay allocation-free end to end.
fn digest_outputs(outputs: &HashMap<String, TensorVal>) -> u64 {
    let mut names: Vec<&String> = outputs.keys().collect();
    names.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let eat_u64 = |h: &mut u64, v: u64| {
        for b in v.to_le_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for name in names {
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let t = &outputs[name];
        for &d in t.shape() {
            eat_u64(&mut h, d as u64);
        }
        for i in 0..t.numel() {
            let v = match t.get_flat(i) {
                Scalar::Int(v) => v as u64,
                Scalar::Float(v) => v.to_bits(),
                Scalar::Bool(v) => v as u64,
            };
            eat_u64(&mut h, v);
        }
    }
    h
}

impl Server {
    /// Start a server: builds the shared compiled engine (metrics
    /// attached) and spawns `cfg.workers` worker threads.
    pub fn new(cfg: ServeConfig, metrics: Metrics) -> Server {
        let mut engine = match &cfg.cache_dir {
            Some(d) => CompiledEngine::with_cache_dir(d.clone()),
            None => CompiledEngine::new(),
        };
        engine.set_metrics(Some(metrics.clone()));
        let inner = Arc::new(Inner {
            cfg,
            engine,
            metrics,
            q: Mutex::new(QueueState::default()),
            work: Condvar::new(),
            ctxs: Mutex::new(HashMap::new()),
        });
        let workers = (0..inner.cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("ft-serve-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { inner, workers }
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Submit a job for `client`. Admission control runs synchronously —
    /// backpressure and budget rejections are returned here, not through
    /// the channel. On admission, the result arrives on the returned
    /// receiver once a worker finishes the job.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`], [`ServeError::OverBudget`], or
    /// [`ServeError::ShuttingDown`]; execution errors arrive through the
    /// receiver as [`ServeError::Runtime`].
    pub fn submit(
        &self,
        client: &str,
        req: Request,
    ) -> Result<mpsc::Receiver<Result<Response, ServeError>>, ServeError> {
        let m = &self.inner.metrics;
        m.counter("serve.requests").inc();
        let key = content_key(&req.func, &req.sizes);
        let plan = MemPlan::plan(&req.func, &req.sizes);
        let peak_bytes = plan.run_peak_bytes(&req.func, &req.sizes);
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.inner.q.lock().unwrap();
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if q.queued >= self.inner.cfg.queue_cap {
                m.counter("serve.rejected.backpressure").inc();
                return Err(ServeError::Overloaded {
                    depth: q.queued,
                    cap: self.inner.cfg.queue_cap,
                });
            }
            if let Some(budget) = self.inner.cfg.mem_budget_bytes {
                if q.admitted_bytes.saturating_add(peak_bytes) > budget {
                    m.counter("serve.rejected.budget").inc();
                    return Err(ServeError::OverBudget {
                        requested_bytes: peak_bytes,
                        admitted_bytes: q.admitted_bytes,
                        budget_bytes: budget,
                    });
                }
            }
            if !q.warm.contains(&key) && !q.compiling.insert(key) {
                m.counter("serve.inflight_dedup_hits").inc();
            }
            q.admitted_bytes += peak_bytes;
            if !q.clients.contains_key(client) {
                q.ring.push(client.to_string());
            }
            q.clients
                .entry(client.to_string())
                .or_default()
                .push_back(Job {
                    key,
                    func: req.func,
                    inputs: req.inputs,
                    sizes: req.sizes,
                    digest_only: req.digest_only,
                    peak_bytes,
                    enqueued: Instant::now(),
                    reply: tx,
                });
            q.queued += 1;
            m.gauge("serve.queue_depth").set(q.queued as i64);
        }
        self.inner.work.notify_one();
        Ok(rx)
    }

    /// Submit and wait for the result — the closed-loop client shape.
    ///
    /// # Errors
    ///
    /// As [`submit`](Server::submit), plus any execution error.
    pub fn call(&self, client: &str, req: Request) -> Result<Response, ServeError> {
        let rx = self.submit(client, req)?;
        rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Execute the next queued job on the calling thread (round-robin
    /// order). Returns whether a job was run. This is the `workers: 0`
    /// test harness — scheduling becomes fully deterministic.
    pub fn pump_one(&self) -> bool {
        let job = {
            let mut q = self.inner.q.lock().unwrap();
            pop_round_robin(&mut q, &self.inner.metrics)
        };
        match job {
            Some(j) => {
                execute(&self.inner, j);
                true
            }
            None => false,
        }
    }

    /// Jobs currently queued (admitted, not yet started).
    pub fn queue_depth(&self) -> usize {
        self.inner.q.lock().unwrap().queued
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        {
            let mut q = self.inner.q.lock().unwrap();
            q.shutdown = true;
            // Fail queued jobs instead of silently dropping their reply
            // channels.
            for (_, jobs) in q.clients.iter_mut() {
                for j in jobs.drain(..) {
                    let _ = j.reply.send(Err(ServeError::ShuttingDown));
                }
            }
            q.queued = 0;
        }
        self.inner.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Pop the next job in round-robin client order. Caller holds the queue
/// lock.
fn pop_round_robin(q: &mut QueueState, m: &Metrics) -> Option<Job> {
    if q.queued == 0 || q.ring.is_empty() {
        return None;
    }
    let n = q.ring.len();
    for step in 0..n {
        let idx = (q.cursor + step) % n;
        let client = &q.ring[idx];
        if let Some(job) = q.clients.get_mut(client).and_then(VecDeque::pop_front) {
            q.cursor = (idx + 1) % n;
            q.queued -= 1;
            m.gauge("serve.queue_depth").set(q.queued as i64);
            return Some(job);
        }
    }
    None
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut q = inner.q.lock().unwrap();
            loop {
                if let Some(j) = pop_round_robin(&mut q, &inner.metrics) {
                    break Some(j);
                }
                if q.shutdown {
                    break None;
                }
                q = inner.work.wait(q).unwrap();
            }
        };
        match job {
            Some(j) => execute(inner, j),
            None => return,
        }
    }
}

/// Run one job to completion and reply. Contexts are drawn from and
/// returned to the key's pool; a failed run poisons its context, which the
/// context itself heals (reset) on next use.
fn execute(inner: &Inner, job: Job) {
    let m = &inner.metrics;
    let queue_us = job.enqueued.elapsed().as_micros() as u64;
    let warm = {
        let q = inner.q.lock().unwrap();
        q.warm.contains(&job.key)
    };
    let mut ctx = inner
        .ctxs
        .lock()
        .unwrap()
        .get_mut(&job.key)
        .and_then(Vec::pop)
        .unwrap_or_default();
    let t0 = Instant::now();
    let r = inner
        .engine
        .run_with(&job.func, &job.inputs, &job.sizes, &mut ctx);
    let exec_us = t0.elapsed().as_micros() as u64;
    let reply = match r {
        Ok(result) => {
            m.counter("serve.ok").inc();
            m.counter(if warm { "serve.warm" } else { "serve.cold" }).inc();
            let payload = if job.digest_only {
                let d = digest_outputs(&result.outputs);
                if ctx.recycle(result).is_err() {
                    // Can't happen for a context the run just bound, but
                    // never let a bad recycle seed the pool.
                    ctx.reset();
                }
                Payload::Digest(d)
            } else {
                let RunResult { outputs, .. } = result;
                Payload::Tensors(outputs)
            };
            Ok(Response {
                payload,
                warm,
                queue_us,
                exec_us,
            })
        }
        Err(e) => {
            m.counter("serve.errors").inc();
            Err(ServeError::Runtime(e))
        }
    };
    let ok = reply.is_ok();
    m.histogram("serve.exec_us").record(exec_us);
    m.histogram("serve.latency_us").record(queue_us + exec_us);
    {
        let mut q = inner.q.lock().unwrap();
        q.admitted_bytes = q.admitted_bytes.saturating_sub(job.peak_bytes);
        q.compiling.remove(&job.key);
        if ok {
            q.warm.insert(job.key);
        }
    }
    {
        let mut pools = inner.ctxs.lock().unwrap();
        let pool = pools.entry(job.key).or_default();
        if pool.len() < inner.cfg.ctx_pool_per_key {
            pool.push(ctx);
        }
    }
    // The caller may have dropped the receiver (fire-and-forget); that's
    // their business.
    let _ = job.reply.send(reply);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::builder::*;
    use ft_ir::{AccessType, DataType};

    fn fill(name: &str, n: i64, v: f32) -> Arc<Func> {
        Arc::new(
            Func::new(name)
                .param("y", [n], DataType::F32, AccessType::Output)
                .body(for_("i", 0, n, store("y", [var("i")], v))),
        )
    }

    fn req(f: &Arc<Func>) -> Request {
        Request::new(Arc::clone(f), HashMap::new(), HashMap::new())
    }

    fn manual_server(cfg: ServeConfig) -> Server {
        let dir = std::env::temp_dir().join(format!(
            "ft-serve-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Server::new(
            ServeConfig {
                cache_dir: Some(dir),
                ..cfg
            },
            Metrics::new(),
        )
    }

    #[test]
    fn round_robin_interleaves_clients() {
        if !ft_runtime::cc_available() {
            eprintln!("cc unavailable; skipping");
            return;
        }
        let srv = manual_server(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        let f = fill("rr", 4, 1.0);
        // Client a floods 3 jobs, then b and c submit one each. Round-robin
        // drains a, b, c, a, a — not a, a, a, b, c.
        let rxs: Vec<_> = [("a"), ("a"), ("a"), ("b"), ("c")]
            .iter()
            .map(|cl| srv.submit(cl, req(&f)).expect("admitted"))
            .collect();
        assert_eq!(srv.queue_depth(), 5);
        // Tag completion order by draining one at a time.
        let mut order = Vec::new();
        while srv.pump_one() {
            order.push(());
        }
        assert_eq!(order.len(), 5);
        for rx in rxs {
            rx.recv().unwrap().expect("job ok");
        }
        // Fairness is directly visible in queue state transitions; the
        // stronger ordering assertion lives in the integration tests where
        // jobs carry distinguishable outputs.
        let s = srv.metrics().snapshot();
        assert_eq!(s.counter("serve.requests"), 5);
        assert_eq!(s.counter("serve.ok"), 5);
    }

    #[test]
    fn backpressure_is_a_structured_error() {
        if !ft_runtime::cc_available() {
            eprintln!("cc unavailable; skipping");
            return;
        }
        let srv = manual_server(ServeConfig {
            workers: 0,
            queue_cap: 2,
            ..ServeConfig::default()
        });
        let f = fill("bp", 4, 1.0);
        srv.submit("a", req(&f)).expect("1st admitted");
        srv.submit("a", req(&f)).expect("2nd admitted");
        let err = srv.submit("a", req(&f)).unwrap_err();
        assert_eq!(err, ServeError::Overloaded { depth: 2, cap: 2 });
        // Draining one frees a slot.
        assert!(srv.pump_one());
        srv.submit("a", req(&f)).expect("readmitted");
        let s = srv.metrics().snapshot();
        assert_eq!(s.counter("serve.rejected.backpressure"), 1);
    }

    #[test]
    fn memory_budget_rejects_with_reason() {
        if !ft_runtime::cc_available() {
            eprintln!("cc unavailable; skipping");
            return;
        }
        // y: [1024] f32 = 4 KiB of parameter footprint per job.
        let f = fill("budget", 1024, 1.0);
        let srv = manual_server(ServeConfig {
            workers: 0,
            mem_budget_bytes: Some(6 * 1024),
            ..ServeConfig::default()
        });
        srv.submit("a", req(&f)).expect("first fits");
        let err = srv.submit("a", req(&f)).unwrap_err();
        match err {
            ServeError::OverBudget {
                requested_bytes,
                admitted_bytes,
                budget_bytes,
            } => {
                assert_eq!(budget_bytes, 6 * 1024);
                assert!(requested_bytes >= 4096, "{requested_bytes}");
                assert_eq!(admitted_bytes, requested_bytes);
            }
            other => panic!("want OverBudget, got {other:?}"),
        }
        // Completion releases the admitted bytes.
        assert!(srv.pump_one());
        srv.submit("a", req(&f)).expect("fits after release");
        let s = srv.metrics().snapshot();
        assert_eq!(s.counter("serve.rejected.budget"), 1);
    }

    #[test]
    fn inflight_dedup_is_counted_and_warm_keys_are_not() {
        if !ft_runtime::cc_available() {
            eprintln!("cc unavailable; skipping");
            return;
        }
        let srv = manual_server(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        let f = fill("dedup", 4, 1.0);
        // Three submissions of one cold key: 1 leader + 2 dedup hits.
        let _r1 = srv.submit("a", req(&f)).unwrap();
        let _r2 = srv.submit("b", req(&f)).unwrap();
        let _r3 = srv.submit("c", req(&f)).unwrap();
        let s = srv.metrics().snapshot();
        assert_eq!(s.counter("serve.inflight_dedup_hits"), 2, "{s:?}");
        while srv.pump_one() {}
        // Now the key is warm: more submissions are not "dedup hits" (there
        // is nothing in flight to dedup against).
        srv.submit("a", req(&f)).unwrap();
        while srv.pump_one() {}
        let s = srv.metrics().snapshot();
        assert_eq!(s.counter("serve.inflight_dedup_hits"), 2, "{s:?}");
        // Serial draining: the first job is the only cold one — its two
        // piggybackers (and the later submission) all start after the key
        // completed once.
        assert_eq!(s.counter("serve.cold"), 1, "{s:?}");
        assert_eq!(s.counter("serve.warm"), 3, "{s:?}");
        // One compile served all four requests.
        assert_eq!(s.counter("compiled.cache.publish"), 1, "{s:?}");
    }

    #[test]
    fn digest_mode_recycles_outputs_server_side() {
        if !ft_runtime::cc_available() {
            eprintln!("cc unavailable; skipping");
            return;
        }
        let srv = manual_server(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        let f = fill("digest", 8, 2.5);
        let rx1 = srv.submit("a", req(&f).digest()).unwrap();
        assert!(srv.pump_one());
        let d1 = rx1.recv().unwrap().unwrap().digest().expect("digest");
        let rx2 = srv.submit("a", req(&f).digest()).unwrap();
        assert!(srv.pump_one());
        let r2 = rx2.recv().unwrap().unwrap();
        assert_eq!(r2.digest(), Some(d1), "deterministic program, same digest");
        assert!(r2.warm);
        // And the digest matches a tensor-mode response's content.
        let rx3 = srv.submit("a", req(&f)).unwrap();
        assert!(srv.pump_one());
        let r3 = rx3.recv().unwrap().unwrap();
        match r3.payload {
            Payload::Tensors(ref outs) => {
                assert_eq!(outs["y"].to_f64_vec(), vec![2.5; 8]);
                assert_eq!(digest_outputs(outs), d1);
            }
            Payload::Digest(_) => panic!("asked for tensors"),
        }
    }

    #[test]
    fn errors_flow_through_the_reply_channel() {
        if !ft_runtime::cc_available() {
            eprintln!("cc unavailable; skipping");
            return;
        }
        let srv = manual_server(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        // Missing input tensor: admission passes (shape bookkeeping only),
        // execution fails.
        let f = Arc::new(
            Func::new("needs_x")
                .param("x", [4], DataType::F32, AccessType::Input)
                .param("y", [4], DataType::F32, AccessType::Output)
                .body(for_("i", 0, 4, store("y", [var("i")], load("x", [var("i")])))),
        );
        let rx = srv
            .submit("a", Request::new(f, HashMap::new(), HashMap::new()))
            .unwrap();
        assert!(srv.pump_one());
        let err = rx.recv().unwrap().unwrap_err();
        assert_eq!(
            err,
            ServeError::Runtime(RuntimeError::MissingInput("x".to_string()))
        );
        let s = srv.metrics().snapshot();
        assert_eq!(s.counter("serve.errors"), 1);
        // The key never became warm; the next attempt is cold again and is
        // the new compile leader (no deadlock on the failed flight).
        assert_eq!(s.counter("serve.warm"), 0);
    }

    #[test]
    fn worker_pool_drains_concurrent_traffic() {
        if !ft_runtime::cc_available() {
            eprintln!("cc unavailable; skipping");
            return;
        }
        let srv = manual_server(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let f = fill("pool", 16, 1.0);
        let rxs: Vec<_> = (0..16)
            .map(|i| srv.submit(&format!("client-{}", i % 4), req(&f)).unwrap())
            .collect();
        for rx in rxs {
            let resp = rx.recv().expect("worker replied").expect("job ok");
            match resp.payload {
                Payload::Tensors(ref outs) => {
                    assert_eq!(outs["y"].to_f64_vec(), vec![1.0; 16]);
                }
                Payload::Digest(_) => panic!("tensor mode"),
            }
        }
        let s = srv.metrics().snapshot();
        assert_eq!(s.counter("serve.ok"), 16);
        assert_eq!(s.counter("compiled.cache.publish"), 1, "{s:?}");
    }
}
