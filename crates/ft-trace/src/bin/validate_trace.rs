//! Validate Chrome trace-event JSON files produced by `ft-trace` (used in CI
//! to check benchmark trace artifacts).
//!
//! Usage: `validate_trace <trace.json>...`

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_trace <trace.json>...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
            }
            Ok(text) => match ft_trace::validate_chrome_trace(&text) {
                Ok(stats) => println!(
                    "{path}: OK — {} events ({} spans on {} tracks, {} instants, {} counters)",
                    stats.events, stats.spans, stats.tracks, stats.instants, stats.counters
                ),
                Err(e) => {
                    eprintln!("{path}: INVALID — {e}");
                    failed = true;
                }
            },
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
