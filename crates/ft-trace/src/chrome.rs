//! Chrome trace-event export and validation.
//!
//! The emitted JSON follows the Trace Event Format's "JSON Object Format":
//! a top-level object with a `traceEvents` array of `"X"` (complete),
//! `"i"` (instant), `"C"` (counter) and `"M"` (metadata) events. The files
//! load directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.
//!
//! Layout:
//!
//! * track 1 (`tid` 1): compilation spans — frontend, passes, schedule,
//!   autoschedule, codegen — plus schedule decisions as instant events;
//! * track 2: runtime-execution spans (wall-clock);
//! * track 3: metrics counter samples (`"C"` events, one series per metric
//!   name — cache traffic, pool activity, kernel dispatch counts);
//! * tracks 100+: one per recorded [`RunProfile`], rendering the
//!   per-statement breakdown as a flame graph in *modeled cycles* (1 cycle
//!   is drawn as 1 µs); a parent's bar covers its children, and the
//!   uncovered tail is the statement's own exclusive time.

use crate::json::JsonVal;
use crate::{
    CounterSample, Decision, RunProfile, SpanEvent, TraceSink, TRACK_COMPILE, TRACK_COUNTERS,
    TRACK_PROFILE_BASE,
};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;

fn num(n: u64) -> JsonVal {
    JsonVal::Num(n as f64)
}

fn obj(fields: Vec<(&str, JsonVal)>) -> JsonVal {
    JsonVal::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn meta_event(name: &str, tid: u64, args: JsonVal) -> JsonVal {
    obj(vec![
        ("name", JsonVal::Str(name.to_string())),
        ("ph", JsonVal::Str("M".to_string())),
        ("pid", num(1)),
        ("tid", num(tid)),
        ("args", args),
    ])
}

fn span_event(ev: &SpanEvent) -> JsonVal {
    let args = JsonVal::Obj(
        ev.args
            .iter()
            .map(|(k, v)| (k.clone(), JsonVal::Str(v.clone())))
            .collect(),
    );
    obj(vec![
        ("name", JsonVal::Str(ev.name.clone())),
        ("cat", JsonVal::Str(ev.cat.clone())),
        ("ph", JsonVal::Str("X".to_string())),
        ("ts", num(ev.ts_us)),
        ("dur", num(ev.dur_us)),
        ("pid", num(1)),
        ("tid", num(ev.track)),
        ("args", args),
    ])
}

fn dep_json(d: &ft_analysis::FoundDep) -> JsonVal {
    obj(vec![
        ("kind", JsonVal::Str(format!("{:?}", d.kind))),
        ("var", JsonVal::Str(d.var.clone())),
        ("source", num(d.source.0)),
        ("sink", num(d.sink.0)),
        ("carrier", JsonVal::Str(format!("{:?}", d.carrier))),
        ("certain", JsonVal::Bool(d.certain)),
    ])
}

fn decision_event(d: &Decision) -> JsonVal {
    let mut args = vec![
        ("primitive", JsonVal::Str(d.primitive.clone())),
        ("args", JsonVal::Str(d.args.clone())),
        ("verdict", JsonVal::Str(d.verdict.to_string())),
    ];
    if let Some(p) = &d.pass {
        args.push(("pass", JsonVal::Str(p.clone())));
    }
    if let Some(r) = &d.reason {
        args.push(("reason", JsonVal::Str(r.clone())));
    }
    if !d.deps.is_empty() {
        args.push(("deps", JsonVal::Arr(d.deps.iter().map(dep_json).collect())));
    }
    obj(vec![
        ("name", JsonVal::Str(format!("{} {}", d.primitive, d.verdict))),
        ("cat", JsonVal::Str("schedule".to_string())),
        ("ph", JsonVal::Str("i".to_string())),
        ("ts", num(d.ts_us)),
        ("pid", num(1)),
        ("tid", num(TRACK_COMPILE)),
        ("s", JsonVal::Str("t".to_string())),
        ("args", obj(args)),
    ])
}

/// A metrics sample as a Chrome `"C"` (counter) event: the event name is
/// the metric name (each distinct name renders as its own counter track in
/// Perfetto), the series value rides in `args.value`.
fn counter_event(c: &CounterSample) -> JsonVal {
    obj(vec![
        ("name", JsonVal::Str(c.name.clone())),
        ("cat", JsonVal::Str("metrics".to_string())),
        ("ph", JsonVal::Str("C".to_string())),
        ("ts", num(c.ts_us)),
        ("pid", num(1)),
        ("tid", num(TRACK_COUNTERS)),
        ("args", obj(vec![("value", JsonVal::Num(c.value))])),
    ])
}

/// Render one profile as a flame graph on `track`. Durations are modeled
/// cycles drawn as microseconds; a node's bar is its *inclusive* time, so
/// children are always contained in their parent.
fn profile_events(p: &RunProfile, track: u64, out: &mut Vec<JsonVal>) {
    let n = p.nodes.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in p.nodes.iter().enumerate() {
        if let Some(par) = node.parent {
            children[par].push(i);
        }
    }
    // Inclusive integer duration, bottom-up (children come after their
    // parent in preorder, so iterate in reverse).
    let mut incl = vec![0u64; n];
    for i in (0..n).rev() {
        let own = p.nodes[i].counters.cycles.round().max(0.0) as u64;
        incl[i] = own + children[i].iter().map(|&c| incl[c]).sum::<u64>();
    }
    // Start offsets: children laid out consecutively from the parent start.
    let mut start = vec![0u64; n];
    for i in 0..n {
        let mut cursor = start[i];
        for &c in &children[i] {
            start[c] = cursor;
            cursor += incl[c];
        }
    }
    let totals = p.totals();
    for (i, node) in p.nodes.iter().enumerate() {
        let c = &node.counters;
        let mut args = vec![
            ("trips", num(c.trips)),
            ("flops", num(c.flops)),
            ("int_ops", num(c.int_ops)),
            ("dram_bytes", num(c.dram_bytes)),
            ("l2_bytes", num(c.l2_bytes)),
            ("scratch_bytes", num(c.scratch_bytes)),
            ("heap_bytes", num(c.heap_bytes)),
            ("excl_cycles", JsonVal::Num(c.cycles)),
        ];
        if let Some(id) = node.stmt {
            args.push(("stmt", num(id.0)));
        }
        if i == 0 {
            args.push(("total_flops", num(totals.flops)));
            args.push(("total_dram_bytes", num(totals.dram_bytes)));
            args.push(("total_l2_bytes", num(totals.l2_bytes)));
        }
        out.push(obj(vec![
            ("name", JsonVal::Str(node.desc.clone())),
            ("cat", JsonVal::Str("profile".to_string())),
            ("ph", JsonVal::Str("X".to_string())),
            ("ts", num(start[i])),
            ("dur", num(incl[i])),
            ("pid", num(1)),
            ("tid", num(track)),
            ("args", obj(args)),
        ]));
    }
}

/// Serialize everything a sink collected as Chrome trace-event JSON.
pub fn chrome_trace(sink: &TraceSink) -> String {
    let events = sink.events();
    let decisions = sink.decisions();
    let profiles = sink.profiles();
    let counters = sink.counter_samples();

    let mut out: Vec<JsonVal> = Vec::new();
    out.push(meta_event(
        "process_name",
        0,
        obj(vec![("name", JsonVal::Str("ft-trace".to_string()))]),
    ));
    let mut track_names: BTreeMap<u64, String> = BTreeMap::new();
    track_names.insert(TRACK_COMPILE, "compile".to_string());
    track_names.insert(crate::TRACK_RUNTIME, "runtime".to_string());
    if !counters.is_empty() {
        track_names.insert(TRACK_COUNTERS, "metrics".to_string());
    }
    for ev in &events {
        track_names
            .entry(ev.track)
            .or_insert_with(|| format!("track {}", ev.track));
    }
    for (r, p) in profiles.iter().enumerate() {
        track_names.insert(
            TRACK_PROFILE_BASE + r as u64,
            format!("profile: {} (modeled cycles)", p.func),
        );
    }
    for (tid, name) in &track_names {
        out.push(meta_event(
            "thread_name",
            *tid,
            obj(vec![("name", JsonVal::Str(name.clone()))]),
        ));
    }
    for ev in &events {
        out.push(span_event(ev));
    }
    for d in &decisions {
        out.push(decision_event(d));
    }
    for c in &counters {
        out.push(counter_event(c));
    }
    for (r, p) in profiles.iter().enumerate() {
        profile_events(p, TRACK_PROFILE_BASE + r as u64, &mut out);
    }

    JsonVal::Obj(vec![
        ("traceEvents".to_string(), JsonVal::Arr(out)),
        (
            "displayTimeUnit".to_string(),
            JsonVal::Str("ms".to_string()),
        ),
    ])
    .to_string()
}

/// Write the Chrome trace to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_chrome_trace(sink: &TraceSink, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, chrome_trace(sink))
}

/// Summary statistics of a validated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// `"X"` complete events.
    pub spans: usize,
    /// `"i"` instant events.
    pub instants: usize,
    /// `"C"` counter events.
    pub counters: usize,
    /// Distinct `(pid, tid)` tracks carrying spans.
    pub tracks: usize,
}

/// Validate that `text` is well-formed Chrome trace-event JSON: a
/// `traceEvents` array whose events all carry `ph`/`name`/`pid`/`tid`,
/// whose `"X"` events have non-negative numeric `ts`/`dur`, whose `"C"`
/// counter events have a numeric `ts` and an all-numeric `args` series,
/// and whose spans nest properly (no partial overlap) within each track.
///
/// # Errors
///
/// A human-readable description of the first problem found.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let root = JsonVal::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .ok_or("missing `traceEvents` field")?
        .as_arr()
        .ok_or("`traceEvents` is not an array")?;
    let mut spans_by_track: HashMap<(u64, u64), Vec<(u64, u64)>> = HashMap::new();
    let mut n_spans = 0usize;
    let mut n_instants = 0usize;
    let mut n_counters = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(JsonVal::as_str)
            .ok_or(format!("event {i}: missing string `ph`"))?;
        ev.get("name")
            .and_then(JsonVal::as_str)
            .ok_or(format!("event {i}: missing string `name`"))?;
        let pid = ev
            .get("pid")
            .and_then(JsonVal::as_u64)
            .ok_or(format!("event {i}: missing numeric `pid`"))?;
        let tid = ev
            .get("tid")
            .and_then(JsonVal::as_u64)
            .ok_or(format!("event {i}: missing numeric `tid`"))?;
        match ph {
            "X" => {
                let ts = ev
                    .get("ts")
                    .and_then(JsonVal::as_f64)
                    .ok_or(format!("event {i}: `X` event missing numeric `ts`"))?;
                let dur = ev
                    .get("dur")
                    .and_then(JsonVal::as_f64)
                    .ok_or(format!("event {i}: `X` event missing numeric `dur`"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: negative ts/dur"));
                }
                spans_by_track
                    .entry((pid, tid))
                    .or_default()
                    .push((ts as u64, dur as u64));
                n_spans += 1;
            }
            "i" => {
                ev.get("ts")
                    .and_then(JsonVal::as_f64)
                    .ok_or(format!("event {i}: `i` event missing numeric `ts`"))?;
                n_instants += 1;
            }
            "C" => {
                ev.get("ts")
                    .and_then(JsonVal::as_f64)
                    .ok_or(format!("event {i}: `C` event missing numeric `ts`"))?;
                let args = ev
                    .get("args")
                    .and_then(JsonVal::as_obj)
                    .ok_or(format!("event {i}: `C` event missing object `args`"))?;
                if args.is_empty() {
                    return Err(format!("event {i}: `C` event has an empty series"));
                }
                for (k, v) in args {
                    if v.as_f64().is_none() {
                        return Err(format!(
                            "event {i}: `C` event series `{k}` is not numeric"
                        ));
                    }
                }
                n_counters += 1;
            }
            "M" => {}
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        }
    }
    // Nesting check: within a track, sorted by (start asc, dur desc), every
    // span must be fully contained in the enclosing open span, if any.
    for ((pid, tid), mut spans) in spans_by_track.clone() {
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64)> = Vec::new(); // (start, end)
        for (ts, dur) in spans {
            let end = ts + dur;
            while let Some(&(_, top_end)) = stack.last() {
                if top_end <= ts {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(top_ts, top_end)) = stack.last() {
                if end > top_end {
                    return Err(format!(
                        "track {pid}/{tid}: span [{ts}, {end}) partially overlaps \
                         enclosing span [{top_ts}, {top_end})"
                    ));
                }
            }
            stack.push((ts, end));
        }
    }
    Ok(TraceStats {
        events: events.len(),
        spans: n_spans,
        instants: n_instants,
        counters: n_counters,
        tracks: spans_by_track.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProfileNode, StmtCounters};
    use ft_ir::StmtId;

    fn sink_with_everything() -> TraceSink {
        let sink = TraceSink::new();
        {
            let _outer = sink.span("pass", "simplify");
            let _inner = sink.span("pass", "const_fold");
        }
        sink.decision(crate::Decision {
            pass: Some("auto_fuse".to_string()),
            primitive: "fuse".to_string(),
            args: "(#3, #7)".to_string(),
            verdict: crate::Verdict::Rejected,
            reason: Some("would reverse a dependence".to_string()),
            deps: vec![ft_analysis::FoundDep {
                kind: ft_analysis::DepKind::Raw,
                var: "y".to_string(),
                source: StmtId(5),
                sink: StmtId(9),
                carrier: ft_analysis::Carrier::Independent,
                certain: true,
            }],
            ts_us: sink.now_us(),
        });
        sink.profile(RunProfile {
            func: "subdivnet".to_string(),
            nodes: vec![
                ProfileNode {
                    stmt: None,
                    desc: "run".to_string(),
                    parent: None,
                    counters: StmtCounters {
                        cycles: 2.0,
                        ..Default::default()
                    },
                },
                ProfileNode {
                    stmt: Some(StmtId(4)),
                    desc: "for i".to_string(),
                    parent: Some(0),
                    counters: StmtCounters {
                        flops: 10,
                        cycles: 8.0,
                        ..Default::default()
                    },
                },
            ],
        });
        sink
    }

    #[test]
    fn export_validates_and_counts() {
        let sink = sink_with_everything();
        let text = chrome_trace(&sink);
        let stats = validate_chrome_trace(&text).unwrap();
        assert_eq!(stats.instants, 1);
        // 2 compile spans + 2 profile nodes.
        assert_eq!(stats.spans, 4);
        assert!(stats.tracks >= 2);
    }

    #[test]
    fn decision_deps_survive_export() {
        let sink = sink_with_everything();
        let text = chrome_trace(&sink);
        let root = JsonVal::parse(&text).unwrap();
        let evs = root.get("traceEvents").unwrap().as_arr().unwrap();
        let dec = evs
            .iter()
            .find(|e| e.get("ph").and_then(JsonVal::as_str) == Some("i"))
            .unwrap();
        let deps = dec
            .get("args")
            .unwrap()
            .get("deps")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(deps[0].get("var").unwrap().as_str(), Some("y"));
        assert_eq!(deps[0].get("kind").unwrap().as_str(), Some("Raw"));
        assert_eq!(deps[0].get("source").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn metrics_snapshots_export_as_counter_tracks() {
        let sink = sink_with_everything();
        let m = ft_metrics::Metrics::new();
        m.counter("compiled.cache.hit").add(3);
        m.gauge("pool.queue.peak_depth").set(7);
        m.histogram("engine.interp.run_us").record(100);
        sink.metrics_sample(&m.snapshot());
        sink.counter("custom.series", 1.5);
        let text = chrome_trace(&sink);
        let stats = validate_chrome_trace(&text).unwrap();
        // counter + gauge + histogram count/sum + the manual sample.
        assert_eq!(stats.counters, 5, "{text}");
        let root = JsonVal::parse(&text).unwrap();
        let evs = root.get("traceEvents").unwrap().as_arr().unwrap();
        let hit = evs
            .iter()
            .find(|e| {
                e.get("ph").and_then(JsonVal::as_str) == Some("C")
                    && e.get("name").and_then(JsonVal::as_str) == Some("compiled.cache.hit")
            })
            .expect("cache-hit counter event");
        assert_eq!(
            hit.get("args").unwrap().get("value").unwrap().as_f64(),
            Some(3.0)
        );
        assert_eq!(hit.get("tid").unwrap().as_u64(), Some(crate::TRACK_COUNTERS));
        // The counters track is named in metadata.
        assert!(text.contains("\"metrics\""), "{text}");
    }

    #[test]
    fn validator_rejects_malformed_counter_events() {
        let no_args = r#"{"traceEvents": [
            {"name":"c","ph":"C","ts":0,"pid":1,"tid":3}
        ]}"#;
        assert!(validate_chrome_trace(no_args).unwrap_err().contains("args"));
        let non_numeric = r#"{"traceEvents": [
            {"name":"c","ph":"C","ts":0,"pid":1,"tid":3,"args":{"value":"x"}}
        ]}"#;
        assert!(
            validate_chrome_trace(non_numeric)
                .unwrap_err()
                .contains("not numeric"),
            "{:?}",
            validate_chrome_trace(non_numeric)
        );
    }

    #[test]
    fn validator_rejects_partial_overlap() {
        let bad = r#"{"traceEvents": [
            {"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1},
            {"name":"b","ph":"X","ts":5,"dur":10,"pid":1,"tid":1}
        ]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("partially overlaps"), "{err}");
    }

    #[test]
    fn validator_rejects_missing_fields() {
        assert!(validate_chrome_trace("[]").is_err());
        let no_ph = r#"{"traceEvents": [{"name":"a","pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(no_ph).unwrap_err().contains("ph"));
        let no_dur = r#"{"traceEvents": [{"name":"a","ph":"X","ts":0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(no_dur).unwrap_err().contains("dur"));
    }

    #[test]
    fn profile_children_are_contained_in_parents() {
        // The root has 2 exclusive cycles and the child 8 inclusive; the
        // exported root bar must cover the child bar.
        let sink = sink_with_everything();
        let text = chrome_trace(&sink);
        let root = JsonVal::parse(&text).unwrap();
        let evs = root.get("traceEvents").unwrap().as_arr().unwrap();
        let bars: Vec<(&str, u64, u64)> = evs
            .iter()
            .filter(|e| {
                e.get("cat").and_then(JsonVal::as_str) == Some("profile")
                    && e.get("ph").and_then(JsonVal::as_str) == Some("X")
            })
            .map(|e| {
                (
                    e.get("name").and_then(JsonVal::as_str).unwrap(),
                    e.get("ts").and_then(JsonVal::as_u64).unwrap(),
                    e.get("dur").and_then(JsonVal::as_u64).unwrap(),
                )
            })
            .collect();
        assert_eq!(bars.len(), 2);
        let run = bars.iter().find(|b| b.0 == "run").unwrap();
        let child = bars.iter().find(|b| b.0 == "for i").unwrap();
        assert_eq!(run.2, 10); // 2 own + 8 child
        assert!(child.1 >= run.1 && child.1 + child.2 <= run.1 + run.2);
    }
}
