//! A minimal JSON value type with writer and parser — just enough for the
//! repro files, with no external dependencies (this build environment has
//! no crates.io access).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64; integers round-trip exactly below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonVal>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, JsonVal)>),
}

impl JsonVal {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonVal> {
        match self {
            JsonVal::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as u64 (truncating), if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonVal]> {
        match self {
            JsonVal::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object fields in insertion order, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonVal)]> {
        match self {
            JsonVal::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parse a JSON document.
    ///
    /// # Errors
    ///
    /// A description with the byte offset of the first syntax error.
    pub fn parse(s: &str) -> Result<JsonVal, String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonVal::Null => write!(f, "null"),
            JsonVal::Bool(b) => write!(f, "{b}"),
            JsonVal::Num(n) => {
                if !n.is_finite() {
                    // JSON has no Infinity/NaN tokens; `null` keeps the
                    // document parseable (callers needing the distinction
                    // encode non-finite values as strings).
                    write!(f, "null")
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n:e}")
                }
            }
            JsonVal::Str(s) => {
                let mut out = String::new();
                escape(s, &mut out);
                f.write_str(&out)
            }
            JsonVal::Arr(items) => {
                write!(f, "[")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{it}")?;
                }
                write!(f, "]")
            }
            JsonVal::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    let mut out = String::new();
                    escape(k, &mut out);
                    write!(f, "{out}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonVal, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| JsonVal::Null),
        Some(b't') => expect(b, pos, "true").map(|()| JsonVal::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| JsonVal::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(JsonVal::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonVal::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonVal::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonVal::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonVal::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(JsonVal::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|_| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = JsonVal::Obj(vec![
            ("name".to_string(), JsonVal::Str("split \"x\"\n".to_string())),
            ("n".to_string(), JsonVal::Num(42.0)),
            ("err".to_string(), JsonVal::Num(1.25e-3)),
            ("flag".to_string(), JsonVal::Bool(true)),
            (
                "ops".to_string(),
                JsonVal::Arr(vec![JsonVal::Num(1.0), JsonVal::Null]),
            ),
        ]);
        let s = v.to_string();
        let back = JsonVal::parse(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn non_finite_numbers_emit_valid_json() {
        // A bare `inf`/`NaN` token would make the whole document
        // unparseable; non-finite numbers degrade to `null`.
        for v in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let doc = JsonVal::Obj(vec![("err".to_string(), JsonVal::Num(v))]).to_string();
            let back = JsonVal::parse(&doc).unwrap();
            assert_eq!(back.get("err"), Some(&JsonVal::Null), "{doc}");
        }
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = JsonVal::parse("  { \"a\" : [ 1 , { \"b\" : -2.5e1 } ] }  ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_f64(), Some(1.0));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1]
                .get("b")
                .unwrap()
                .as_f64(),
            Some(-25.0)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonVal::parse("{").is_err());
        assert!(JsonVal::parse("[1,]").is_err());
        assert!(JsonVal::parse("\"abc").is_err());
        assert!(JsonVal::parse("{} extra").is_err());
    }
}
