//! # ft-trace — compilation provenance and runtime profiling
//!
//! The paper's central usability claim is that dependence-checked schedule
//! primitives let callers "aggressively try transformations without worrying
//! about their correctness" (§4.3), and its evaluation explains every speedup
//! with a hardware-counter breakdown (Fig. 17). Neither story is possible
//! without observability: this crate is the shared substrate the whole stack
//! reports into.
//!
//! Three kinds of records are collected:
//!
//! * **Spans** ([`Span`], RAII): timed phases of compilation and execution —
//!   frontend lowering, each simplification pass, each `auto_*` pass,
//!   codegen, runtime execution. Exported as Chrome trace-event "X" events.
//! * **Decisions** ([`Decision`]): one entry per schedule-primitive attempt,
//!   with its arguments, verdict, and — for rejections — the *structured*
//!   violated dependences ([`ft_analysis::FoundDep`]), not just a message.
//! * **Profiles** ([`RunProfile`]): per-statement attribution of the runtime
//!   [`PerfCounters`](StmtCounters) deltas, a Fig. 17-style breakdown per
//!   loop instead of per run.
//!
//! There is deliberately **no global state**: a [`TraceSink`] is an explicit
//! cheaply-clonable handle (an `Arc` around the buffers) that callers thread
//! through the APIs they want observed. Every instrumented component stores
//! an `Option<TraceSink>`; when it is `None` the instrumentation is a single
//! branch on a local field — nothing is allocated, locked, or timestamped.

pub use ft_analysis::{Carrier, DepKind, FoundDep};
use ft_ir::StmtId;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

pub mod chrome;
pub mod json;
pub mod report;

pub use chrome::{chrome_trace, validate_chrome_trace, write_chrome_trace, TraceStats};
pub use json::JsonVal;
pub use report::{decision_line, provenance_report};

/// Track (Chrome `tid`) that compilation-phase spans land on.
pub const TRACK_COMPILE: u64 = 1;
/// Track that runtime-execution spans land on.
pub const TRACK_RUNTIME: u64 = 2;
/// Track that metrics counter samples (`"C"` events) land on.
pub const TRACK_COUNTERS: u64 = 3;
/// First track used for per-statement profile rendering (one per run).
pub const TRACK_PROFILE_BASE: u64 = 100;

/// One sampled value of a named runtime metric, exported as a Chrome
/// trace-event `"C"` (counter) event so Perfetto renders the series as a
/// counter track. Samples usually come from [`TraceSink::metrics_sample`]
/// freezing an `ft_metrics` registry at a meaningful moment (after a
/// benchmark repetition, at the end of a run).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Metric name, e.g. `"compiled.cache.hit"`.
    pub name: String,
    /// Sampled value (counters and histogram counts are exact in `f64`
    /// far beyond any realistic magnitude).
    pub value: f64,
    /// Timestamp, microseconds since the sink's epoch.
    pub ts_us: u64,
}

/// One completed timed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Human-readable name, e.g. `"auto_fuse"` or `"simplify"`.
    pub name: String,
    /// Category, e.g. `"frontend"`, `"pass"`, `"autoschedule"`, `"runtime"`.
    pub cat: String,
    /// Start, microseconds since the sink's epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Track (Chrome `tid`) the span belongs to.
    pub track: u64,
    /// Extra key/value annotations.
    pub args: Vec<(String, String)>,
}

/// Outcome of one schedule-primitive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The transformation was applied.
    Applied,
    /// The transformation was rejected (legality or structural failure).
    Rejected,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Applied => write!(f, "applied"),
            Verdict::Rejected => write!(f, "rejected"),
        }
    }
}

/// One entry of the schedule decision log: a primitive attempt, its
/// arguments, and how it was judged.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Enclosing auto-schedule pass (`"auto_fuse"`, …), if any.
    pub pass: Option<String>,
    /// Primitive name (`"split"`, `"parallelize"`, `"fuse"`, …).
    pub primitive: String,
    /// Rendered argument list, e.g. `"(Loop(\"i\"), 32)"`.
    pub args: String,
    /// Whether the primitive was applied or rejected.
    pub verdict: Verdict,
    /// Rejection message (primitive-specific), if rejected.
    pub reason: Option<String>,
    /// Structured dependences that blocked the transformation, if the
    /// rejection came from the dependence engine.
    pub deps: Vec<FoundDep>,
    /// Timestamp, microseconds since the sink's epoch.
    pub ts_us: u64,
}

/// Counter deltas attributed to one statement, *exclusive* of its children
/// (so the per-statement values of a profile sum exactly to the run's
/// whole-run aggregates).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StmtCounters {
    /// Times execution entered this statement (loop-body trips for loops).
    pub trips: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// Integer/addressing operations.
    pub int_ops: u64,
    /// Bytes that missed the simulated L2 (DRAM traffic).
    pub dram_bytes: u64,
    /// Bytes served by the simulated L2.
    pub l2_bytes: u64,
    /// Bytes accessed in scratch memories.
    pub scratch_bytes: u64,
    /// Raw bytes requested from heap/global memory.
    pub heap_bytes: u64,
    /// Modeled serial cycles spent directly in this statement.
    pub cycles: f64,
}

impl StmtCounters {
    /// Accumulate another delta into this one. Saturating: long-lived
    /// aggregation (profiles merged across many runs) pins at `u64::MAX`
    /// instead of wrapping to a small, plausible-looking value.
    pub fn add(&mut self, other: &StmtCounters) {
        self.trips = self.trips.saturating_add(other.trips);
        self.flops = self.flops.saturating_add(other.flops);
        self.int_ops = self.int_ops.saturating_add(other.int_ops);
        self.dram_bytes = self.dram_bytes.saturating_add(other.dram_bytes);
        self.l2_bytes = self.l2_bytes.saturating_add(other.l2_bytes);
        self.scratch_bytes = self.scratch_bytes.saturating_add(other.scratch_bytes);
        self.heap_bytes = self.heap_bytes.saturating_add(other.heap_bytes);
        self.cycles += other.cycles;
    }
}

/// One node of a per-statement runtime profile (a loop, library call, or the
/// synthetic root representing straight-line code outside any loop).
#[derive(Debug, Clone)]
pub struct ProfileNode {
    /// IR statement this node corresponds to; `None` for the root.
    pub stmt: Option<StmtId>,
    /// Short description, e.g. `"for i in 0..1024"` or `"gemm"`.
    pub desc: String,
    /// Index of the parent node; `None` for the root (node 0).
    pub parent: Option<usize>,
    /// Exclusive counter deltas attributed to this node.
    pub counters: StmtCounters,
}

/// A complete per-statement attribution of one runtime execution.
#[derive(Debug, Clone)]
pub struct RunProfile {
    /// Name of the executed function.
    pub func: String,
    /// Profile tree in preorder; node 0 is the root.
    pub nodes: Vec<ProfileNode>,
}

impl RunProfile {
    /// Sum of all exclusive per-node counters — by construction equal to the
    /// run's whole-run aggregates for flops/bytes.
    pub fn totals(&self) -> StmtCounters {
        let mut t = StmtCounters::default();
        for n in &self.nodes {
            t.add(&n.counters);
        }
        t
    }
}

#[derive(Default)]
struct TraceData {
    events: Vec<SpanEvent>,
    decisions: Vec<Decision>,
    profiles: Vec<RunProfile>,
    counters: Vec<CounterSample>,
}

/// Handle to a trace buffer. Cloning is cheap (it shares the buffer); all
/// clones report into the same trace and share one time epoch.
#[derive(Clone)]
pub struct TraceSink {
    inner: Arc<Mutex<TraceData>>,
    epoch: Instant,
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.inner.lock();
        write!(
            f,
            "TraceSink({} spans, {} decisions, {} profiles)",
            d.events.len(),
            d.decisions.len(),
            d.profiles.len()
        )
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    /// Create an empty sink; its time epoch is "now".
    pub fn new() -> TraceSink {
        TraceSink {
            inner: Arc::new(Mutex::new(TraceData::default())),
            epoch: Instant::now(),
        }
    }

    /// Microseconds elapsed since this sink was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Open a span on the compile track; it is recorded when dropped.
    pub fn span(&self, cat: &str, name: &str) -> Span {
        self.span_on(TRACK_COMPILE, cat, name)
    }

    /// Open a span on an explicit track.
    pub fn span_on(&self, track: u64, cat: &str, name: &str) -> Span {
        Span {
            sink: self.clone(),
            name: name.to_string(),
            cat: cat.to_string(),
            track,
            start_us: self.now_us(),
            args: Vec::new(),
        }
    }

    /// Record an already-completed span.
    pub fn push_event(&self, ev: SpanEvent) {
        self.inner.lock().events.push(ev);
    }

    /// Append an entry to the schedule decision log.
    pub fn decision(&self, d: Decision) {
        self.inner.lock().decisions.push(d);
    }

    /// Attach a per-statement runtime profile.
    pub fn profile(&self, p: RunProfile) {
        self.inner.lock().profiles.push(p);
    }

    /// Record one counter sample (a point on a Chrome counter track).
    pub fn counter(&self, name: &str, value: f64) {
        let s = CounterSample {
            name: name.to_string(),
            value,
            ts_us: self.now_us(),
        };
        self.inner.lock().counters.push(s);
    }

    /// Sample every instrument of a frozen metrics snapshot onto the
    /// counter track, stamped "now": counters and gauges by value,
    /// histograms as `<name>.count` / `<name>.sum`. Call at meaningful
    /// boundaries (end of a run, end of a benchmark repetition) to chart
    /// cache traffic, pool activity, and kernel counts over trace time.
    pub fn metrics_sample(&self, snap: &ft_metrics::MetricsSnapshot) {
        let ts_us = self.now_us();
        let mut d = self.inner.lock();
        for (name, &v) in &snap.counters {
            d.counters.push(CounterSample {
                name: name.clone(),
                value: v as f64,
                ts_us,
            });
        }
        for (name, &v) in &snap.gauges {
            d.counters.push(CounterSample {
                name: name.clone(),
                value: v as f64,
                ts_us,
            });
        }
        for (name, h) in &snap.histograms {
            d.counters.push(CounterSample {
                name: format!("{name}.count"),
                value: h.count as f64,
                ts_us,
            });
            d.counters.push(CounterSample {
                name: format!("{name}.sum"),
                value: h.sum as f64,
                ts_us,
            });
        }
    }

    /// Snapshot of the recorded spans.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.inner.lock().events.clone()
    }

    /// Snapshot of the decision log.
    pub fn decisions(&self) -> Vec<Decision> {
        self.inner.lock().decisions.clone()
    }

    /// Snapshot of the recorded runtime profiles.
    pub fn profiles(&self) -> Vec<RunProfile> {
        self.inner.lock().profiles.clone()
    }

    /// Snapshot of the recorded counter samples.
    pub fn counter_samples(&self) -> Vec<CounterSample> {
        self.inner.lock().counters.clone()
    }
}

/// An open timed span; records a [`SpanEvent`] when dropped.
pub struct Span {
    sink: TraceSink,
    name: String,
    cat: String,
    track: u64,
    start_us: u64,
    args: Vec<(String, String)>,
}

impl Span {
    /// Attach a key/value annotation (shown in the trace viewer's `args`).
    pub fn arg(&mut self, key: &str, value: impl fmt::Display) {
        self.args.push((key.to_string(), value.to_string()));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let end = self.sink.now_us();
        self.sink.push_event(SpanEvent {
            name: std::mem::take(&mut self.name),
            cat: std::mem::take(&mut self.cat),
            ts_us: self.start_us,
            dur_us: end.saturating_sub(self.start_us),
            track: self.track,
            args: std::mem::take(&mut self.args),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_analysis::{Carrier, DepKind};

    #[test]
    fn spans_record_on_drop_with_nesting_order() {
        let sink = TraceSink::new();
        {
            let mut outer = sink.span("pass", "outer");
            outer.arg("k", 3);
            let _inner = sink.span("pass", "inner");
        }
        let evs = sink.events();
        // Inner drops first, so it is recorded first.
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "inner");
        assert_eq!(evs[1].name, "outer");
        assert_eq!(evs[1].args, vec![("k".to_string(), "3".to_string())]);
        assert!(evs[0].ts_us >= evs[1].ts_us);
        assert!(evs[0].ts_us + evs[0].dur_us <= evs[1].ts_us + evs[1].dur_us);
    }

    #[test]
    fn clones_share_one_buffer() {
        let sink = TraceSink::new();
        let clone = sink.clone();
        drop(clone.span("cat", "from-clone"));
        assert_eq!(sink.events().len(), 1);
    }

    #[test]
    fn decisions_keep_structured_deps() {
        let sink = TraceSink::new();
        sink.decision(Decision {
            pass: Some("auto_parallelize".to_string()),
            primitive: "parallelize".to_string(),
            args: "(\"i\", OpenMp)".to_string(),
            verdict: Verdict::Rejected,
            reason: Some("carried dependence".to_string()),
            deps: vec![FoundDep {
                kind: DepKind::Raw,
                var: "y".to_string(),
                source: StmtId(7),
                sink: StmtId(9),
                carrier: Carrier::Independent,
                certain: true,
            }],
            ts_us: sink.now_us(),
        });
        let ds = sink.decisions();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].deps[0].var, "y");
        assert_eq!(ds[0].deps[0].kind, DepKind::Raw);
    }

    #[test]
    fn profile_totals_sum_exclusive_counters() {
        let p = RunProfile {
            func: "f".to_string(),
            nodes: vec![
                ProfileNode {
                    stmt: None,
                    desc: "run".to_string(),
                    parent: None,
                    counters: StmtCounters {
                        flops: 1,
                        ..Default::default()
                    },
                },
                ProfileNode {
                    stmt: Some(StmtId(4)),
                    desc: "for i".to_string(),
                    parent: Some(0),
                    counters: StmtCounters {
                        flops: 10,
                        dram_bytes: 64,
                        ..Default::default()
                    },
                },
            ],
        };
        let t = p.totals();
        assert_eq!(t.flops, 11);
        assert_eq!(t.dram_bytes, 64);
    }
}
