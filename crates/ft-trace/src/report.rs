//! Human-readable provenance report: compile phases, the schedule decision
//! log, and per-statement counter tables.

use crate::{Decision, TraceSink};
use ft_analysis::Carrier;
use std::fmt::Write as _;

/// One compact line describing a decision, e.g.
/// `[auto_fuse] fuse(#3, #7): rejected — fusing would reverse a dependence
/// on `y` (#5 -> #9) [Raw y #5->#9 @Independent certain]`.
pub fn decision_line(d: &Decision) -> String {
    let mut line = String::new();
    if let Some(pass) = &d.pass {
        let _ = write!(line, "[{pass}] ");
    }
    let _ = write!(line, "{}{}: {}", d.primitive, d.args, d.verdict);
    if let Some(reason) = &d.reason {
        let _ = write!(line, " — {reason}");
    }
    for dep in &d.deps {
        let carrier = match dep.carrier {
            Carrier::Loop(id) => format!("loop {id}"),
            Carrier::Independent => "independent".to_string(),
        };
        let _ = write!(
            line,
            " [{:?} `{}` {} -> {} @{} {}]",
            dep.kind,
            dep.var,
            dep.source,
            dep.sink,
            carrier,
            if dep.certain { "certain" } else { "may" }
        );
    }
    line
}

/// Render everything a sink collected as a plain-text report.
pub fn provenance_report(sink: &TraceSink) -> String {
    let mut out = String::new();
    let events = sink.events();
    if !events.is_empty() {
        out.push_str("== Compilation phases ==\n");
        let mut sorted = events;
        sorted.sort_by(|a, b| a.ts_us.cmp(&b.ts_us).then(b.dur_us.cmp(&a.dur_us)));
        for ev in &sorted {
            let _ = writeln!(
                out,
                "  {:>8} us  {:>8} us  [{}] {}",
                ev.ts_us, ev.dur_us, ev.cat, ev.name
            );
        }
    }
    let decisions = sink.decisions();
    if !decisions.is_empty() {
        let applied = decisions
            .iter()
            .filter(|d| d.verdict == crate::Verdict::Applied)
            .count();
        let _ = writeln!(
            out,
            "\n== Schedule decision log ({} attempts, {} applied, {} rejected) ==",
            decisions.len(),
            applied,
            decisions.len() - applied
        );
        for d in &decisions {
            let _ = writeln!(out, "  {}", decision_line(d));
        }
    }
    for p in &sink.profiles() {
        let _ = writeln!(out, "\n== Per-statement profile: {} ==", p.func);
        let _ = writeln!(
            out,
            "  {:<40} {:>12} {:>14} {:>14} {:>14}",
            "statement", "flops", "dram bytes", "l2 bytes", "cycles"
        );
        for n in &p.nodes {
            let depth = {
                let mut d = 0;
                let mut cur = n.parent;
                while let Some(i) = cur {
                    d += 1;
                    cur = p.nodes[i].parent;
                }
                d
            };
            let label = format!("{}{}", "  ".repeat(depth), n.desc);
            let _ = writeln!(
                out,
                "  {:<40} {:>12} {:>14} {:>14} {:>14.0}",
                label, n.counters.flops, n.counters.dram_bytes, n.counters.l2_bytes, n.counters.cycles
            );
        }
        let t = p.totals();
        let _ = writeln!(
            out,
            "  {:<40} {:>12} {:>14} {:>14} {:>14.0}",
            "TOTAL", t.flops, t.dram_bytes, t.l2_bytes, t.cycles
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Verdict;
    use ft_analysis::{DepKind, FoundDep};
    use ft_ir::StmtId;

    #[test]
    fn decision_line_includes_structured_dep() {
        let d = Decision {
            pass: Some("auto_parallelize".to_string()),
            primitive: "parallelize".to_string(),
            args: "(\"i\", OpenMp)".to_string(),
            verdict: Verdict::Rejected,
            reason: Some("loop carries a dependence".to_string()),
            deps: vec![FoundDep {
                kind: DepKind::Waw,
                var: "y".to_string(),
                source: StmtId(5),
                sink: StmtId(5),
                carrier: Carrier::Loop(StmtId(3)),
                certain: true,
            }],
            ts_us: 0,
        };
        let line = decision_line(&d);
        assert!(line.contains("[auto_parallelize]"), "{line}");
        assert!(line.contains("parallelize(\"i\", OpenMp): rejected"), "{line}");
        assert!(line.contains("Waw `y` #5 -> #5 @loop #3 certain"), "{line}");
        assert!(!line.contains("##"), "{line}");
    }
}
