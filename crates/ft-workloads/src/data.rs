//! Synthetic input generators.
//!
//! The paper evaluates on real meshes, documents, 3-D models and graphs; the
//! kernels' control flow depends only on sizes and adjacency *structure*,
//! so seeded synthetic data with matched shapes exercises identical code
//! paths (see the substitution table in `DESIGN.md`).

use ft_runtime::TensorVal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform features in `[-1, 1]`.
pub fn features(shape: &[usize], seed: u64) -> TensorVal {
    let mut rng = StdRng::seed_from_u64(seed);
    let n: usize = shape.iter().product();
    TensorVal::from_f32(shape, (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
}

/// A valid 3-regular mesh adjacency: each face `i` names three *distinct*
/// neighbor faces, none equal to `i`.
pub fn mesh_adjacency(n_faces: usize, seed: u64) -> TensorVal {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj = Vec::with_capacity(n_faces * 3);
    for i in 0..n_faces {
        let mut picked: Vec<i32> = Vec::with_capacity(3);
        while picked.len() < 3 {
            let c = rng.gen_range(0..n_faces) as i32;
            if c != i as i32 && !picked.contains(&c) {
                picked.push(c);
            }
        }
        adj.extend(picked);
    }
    TensorVal::from_i32(&[n_faces, 3], adj)
}

/// A CSR graph where every node has exactly `deg` distinct neighbors.
/// Returns `(rowptr[n+1], colidx[n*deg])` as i32 tensors.
pub fn csr_graph(n: usize, deg: usize, seed: u64) -> (TensorVal, TensorVal) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rowptr = Vec::with_capacity(n + 1);
    let mut colidx = Vec::with_capacity(n * deg);
    rowptr.push(0i32);
    for i in 0..n {
        let mut picked: Vec<i32> = Vec::with_capacity(deg);
        while picked.len() < deg {
            let c = rng.gen_range(0..n) as i32;
            if c != i as i32 && !picked.contains(&c) {
                picked.push(c);
            }
        }
        picked.sort_unstable();
        colidx.extend(picked);
        rowptr.push(colidx.len() as i32);
    }
    (
        TensorVal::from_i32(&[n + 1], rowptr),
        TensorVal::from_i32(&[n * deg], colidx),
    )
}

/// Pixel-center coordinates of an `h × w` grid, normalized to `[0, 1]²`,
/// flattened to `[h*w, 2]`.
pub fn pixel_grid(h: usize, w: usize) -> TensorVal {
    let mut data = Vec::with_capacity(h * w * 2);
    for y in 0..h {
        for x in 0..w {
            data.push((x as f32 + 0.5) / w as f32);
            data.push((y as f32 + 0.5) / h as f32);
        }
    }
    TensorVal::from_f32(&[h * w, 2], data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_is_valid() {
        let adj = mesh_adjacency(64, 3);
        for i in 0..64 {
            let row: Vec<i64> = (0..3).map(|j| adj.get_flat(i * 3 + j).as_i64()).collect();
            assert!(row.iter().all(|&c| (0..64).contains(&c) && c != i as i64));
            assert_ne!(row[0], row[1]);
            assert_ne!(row[1], row[2]);
            assert_ne!(row[0], row[2]);
        }
    }

    #[test]
    fn csr_shape_invariants() {
        let (rp, ci) = csr_graph(32, 4, 1);
        assert_eq!(rp.numel(), 33);
        assert_eq!(ci.numel(), 128);
        assert_eq!(rp.get_flat(32).as_i64(), 128);
        for i in 0..32 {
            assert_eq!(
                rp.get_flat(i + 1).as_i64() - rp.get_flat(i).as_i64(),
                4
            );
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            features(&[8], 42).to_f64_vec(),
            features(&[8], 42).to_f64_vec()
        );
        assert_ne!(
            features(&[8], 42).to_f64_vec(),
            features(&[8], 43).to_f64_vec()
        );
    }

    #[test]
    fn pixel_grid_covers_unit_square() {
        let g = pixel_grid(4, 4);
        let v = g.to_f64_vec();
        assert!(v.iter().all(|&c| c > 0.0 && c < 1.0));
        assert_eq!(g.shape(), &[16, 2]);
    }
}
