//! Graph Attention Network layer (paper §6.1).
//!
//! For each node `i`, attention scores over its CSR neighbors are
//! softmax-normalized and used to mix neighbor features — fine-grained
//! computation with *data-dependent loop bounds* (`rowptr[i]..rowptr[i+1]`)
//! and indirect feature access, the pattern TVM failed to build (paper
//! Table 2's ICE entries) and DGL serves with dedicated sparse kernels.

use crate::{data, Inputs};
use freetensor_core::Program;
use ft_opbase::{OpError, Session, Tensor};
use ft_runtime::{Scalar, TensorVal};

/// Problem sizes.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of graph nodes.
    pub n_nodes: usize,
    /// Neighbors per node (regular synthetic graph).
    pub degree: usize,
    /// Feature dimension.
    pub feat_len: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n_nodes: 512,
            degree: 8,
            feat_len: 32,
        }
    }
}

impl Params {
    /// A small instance for tests.
    pub fn small() -> Params {
        Params {
            n_nodes: 16,
            degree: 3,
            feat_len: 4,
        }
    }

    /// Number of edges.
    pub fn edges(&self) -> usize {
        self.n_nodes * self.degree
    }
}

/// Synthetic inputs: features `h[N, F]`, per-node score halves `el[N]`,
/// `er[N]`, and the CSR structure `rowptr[N+1]`, `colidx[E]`.
pub fn inputs(p: &Params, seed: u64) -> Inputs {
    let (rowptr, colidx) = data::csr_graph(p.n_nodes, p.degree, seed ^ 0x6A7);
    let mut m = Inputs::new();
    m.insert(
        "h".to_string(),
        data::features(&[p.n_nodes, p.feat_len], seed),
    );
    m.insert("el".to_string(), data::features(&[p.n_nodes], seed + 1));
    m.insert("er".to_string(), data::features(&[p.n_nodes], seed + 2));
    m.insert("rowptr".to_string(), rowptr);
    m.insert("colidx".to_string(), colidx);
    m
}

/// The FreeTensor DSL source. Loop bounds are loaded from `rowptr` — the
/// data-dependent control flow a free-form language expresses directly.
pub fn source(p: &Params) -> String {
    format!(
        r#"
def gat(h: f32[{n}, {f}] in, el: f32[{n}] in, er: f32[{n}] in, rowptr: i32[{n1}] in, colidx: i32[{e}] in, y: f32[{n}, {f}] out):
  for i in range({n}):
    m = create_var((), "f32", "cpu")
    m = -inf
    for j in range(rowptr[i], rowptr[i + 1]):
      m max= el[i] + er[colidx[j]]
    den = create_var((), "f32", "cpu")
    for j2 in range(rowptr[i], rowptr[i + 1]):
      den += exp(el[i] + er[colidx[j2]] - m)
    for j3 in range(rowptr[i], rowptr[i + 1]):
      for c in range({f}):
        y[i, c] += exp(el[i] + er[colidx[j3]] - m) / den * h[colidx[j3], c]
"#,
        n = p.n_nodes,
        n1 = p.n_nodes + 1,
        e = p.edges(),
        f = p.feat_len
    )
}

/// Compile the FreeTensor program.
pub fn program(p: &Params) -> Program {
    Program::compile(&source(p), "gat").expect("gat source compiles")
}

/// Reference implementation.
pub fn reference(p: &Params, inputs: &Inputs) -> TensorVal {
    let (h, el, er) = (&inputs["h"], &inputs["el"], &inputs["er"]);
    let (rowptr, colidx) = (&inputs["rowptr"], &inputs["colidx"]);
    let (n, f) = (p.n_nodes, p.feat_len);
    let mut y = TensorVal::zeros(ft_ir::DataType::F32, &[n, f]);
    for i in 0..n {
        let lo = rowptr.get_flat(i).as_i64() as usize;
        let hi = rowptr.get_flat(i + 1).as_i64() as usize;
        let scores: Vec<f64> = (lo..hi)
            .map(|e| {
                let j = colidx.get_flat(e).as_i64() as usize;
                el.get_flat(i).as_f64() + er.get_flat(j).as_f64()
            })
            .collect();
        let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let den: f64 = scores.iter().map(|s| (s - m).exp()).sum();
        for (k, e) in (lo..hi).enumerate() {
            let j = colidx.get_flat(e).as_i64() as usize;
            let a = (scores[k] - m).exp() / den;
            for c in 0..f {
                let cur = y.get_flat(i * f + c).as_f64();
                y.set_flat(
                    i * f + c,
                    Scalar::Float(cur + a * h.get_flat(j * f + c).as_f64()),
                );
            }
        }
    }
    y
}

/// Plain-Rust oracle gradients `∂L/∂h`, `∂L/∂el`, `∂L/∂er` given
/// `seed = ∂L/∂y`.
///
/// Per node `i`, with edge scores `s_j = el[i] + er[colidx[j]]` and
/// `a = softmax(s)` over the CSR row: writing
/// `b_j = Σ_c seed[i,c]·h[colidx[j],c]` and `ā = Σ_j a_j·b_j`,
///
/// * `∂L/∂h[colidx[j],c] += a_j · seed[i,c]`
/// * `∂s_j = a_j · (b_j − ā)`
/// * `∂L/∂el[i] += Σ_j ∂s_j`, `∂L/∂er[colidx[j]] += ∂s_j`.
pub fn reference_grad(p: &Params, inputs: &Inputs, seed: &TensorVal) -> Inputs {
    let (h, el, er) = (&inputs["h"], &inputs["el"], &inputs["er"]);
    let (rowptr, colidx) = (&inputs["rowptr"], &inputs["colidx"]);
    let (n, f) = (p.n_nodes, p.feat_len);
    let mut dh = vec![0.0f64; n * f];
    let mut del = vec![0.0f64; n];
    let mut der = vec![0.0f64; n];
    for (i, del_i) in del.iter_mut().enumerate() {
        let lo = rowptr.get_flat(i).as_i64() as usize;
        let hi = rowptr.get_flat(i + 1).as_i64() as usize;
        let scores: Vec<f64> = (lo..hi)
            .map(|e| {
                let j = colidx.get_flat(e).as_i64() as usize;
                el.get_flat(i).as_f64() + er.get_flat(j).as_f64()
            })
            .collect();
        let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let den: f64 = scores.iter().map(|s| (s - m).exp()).sum();
        let attn: Vec<f64> = scores.iter().map(|s| (s - m).exp() / den).collect();
        let b: Vec<f64> = (lo..hi)
            .map(|e| {
                let j = colidx.get_flat(e).as_i64() as usize;
                (0..f)
                    .map(|c| seed.get_flat(i * f + c).as_f64() * h.get_flat(j * f + c).as_f64())
                    .sum()
            })
            .collect();
        let abar: f64 = attn.iter().zip(&b).map(|(a, b)| a * b).sum();
        for (k, e) in (lo..hi).enumerate() {
            let j = colidx.get_flat(e).as_i64() as usize;
            for c in 0..f {
                dh[j * f + c] += attn[k] * seed.get_flat(i * f + c).as_f64();
            }
            let ds = attn[k] * (b[k] - abar);
            *del_i += ds;
            der[j] += ds;
        }
    }
    let mut m = Inputs::new();
    m.insert(
        "h.grad".to_string(),
        TensorVal::from_f32(&[n, f], dh.into_iter().map(|x| x as f32).collect()),
    );
    m.insert(
        "el.grad".to_string(),
        TensorVal::from_f32(&[n], del.into_iter().map(|x| x as f32).collect()),
    );
    m.insert(
        "er.grad".to_string(),
        TensorVal::from_f32(&[n], der.into_iter().map(|x| x as f32).collect()),
    );
    m
}

/// DGL-style implementation: edge gathers, segment softmax, and a weighted
/// segment sum — dedicated sparse kernels, each materializing edge-sized
/// intermediates (forward only, as in the paper's evaluation).
///
/// # Errors
///
/// Propagates operator shape/memory errors.
pub fn opbase(s: &Session, p: &Params, inputs: &Inputs) -> Result<Tensor, OpError> {
    let h = s.tensor(inputs["h"].clone())?;
    let el = s.tensor(inputs["el"].clone())?;
    let er = s.tensor(inputs["er"].clone())?;
    let rowptr = s.tensor(inputs["rowptr"].clone())?;
    let colidx = s.tensor(inputs["colidx"].clone())?;
    let e = p.edges();
    // Edge scores: el[src(e)] + er[dst(e)].
    let el_e = s.expand_by_segment(&el, &rowptr, e)?;
    let er_e = s.index_select(&er, &colidx)?;
    let scores = s.add(&el_e, &er_e)?;
    // Segment softmax.
    let seg_max = s.segment_max(&scores, &rowptr)?;
    let max_e = s.expand_by_segment(&seg_max, &rowptr, e)?;
    let shifted = s.sub(&scores, &max_e)?;
    let exp_e = s.exp(&shifted)?;
    let den = s.segment_sum(&exp_e, &rowptr)?;
    let den_e = s.expand_by_segment(&den, &rowptr, e)?;
    let attn = s.div(&exp_e, &den_e)?;
    // Weighted neighbor mix.
    let gathered = s.gather_rows(&h, &colidx)?;
    s.segment_weighted_sum(&attn, &gathered, &rowptr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_autoschedule::Target;
    use ft_runtime::Runtime;

    #[test]
    fn all_implementations_agree() {
        let p = Params::small();
        let ins = inputs(&p, 23);
        let oracle = reference(&p, &ins);
        let prog = program(&p);
        let rt = Runtime::new();
        for pr in [prog.clone(), prog.optimize(&Target::cpu())] {
            let r = pr.run(&rt, &crate::input_pairs(&ins), &[]).unwrap();
            assert!(
                r.output("y").allclose(&oracle, 1e-3),
                "max diff {}",
                r.output("y").max_abs_diff(&oracle)
            );
        }
        let s = Session::cpu();
        let y = opbase(&s, &p, &ins).unwrap();
        assert!(y.val().allclose(&oracle, 1e-3));
    }

    #[test]
    fn freetensor_beats_dgl_on_kernel_count() {
        // The paper: "we can implement more computations in fewer kernels".
        let p = Params::small();
        let ins = inputs(&p, 29);
        let s = Session::gpu();
        let _ = opbase(&s, &p, &ins).unwrap();
        let dgl_kernels = s.counters().kernel_launches;
        let rt = Runtime::new();
        let r = program(&p)
            .optimize(&Target::gpu())
            .run(&rt, &crate::input_pairs(&ins), &[])
            .unwrap();
        assert!(
            r.counters.kernel_launches < dgl_kernels,
            "FreeTensor {} vs DGL-style {}",
            r.counters.kernel_launches,
            dgl_kernels
        );
    }
}
