//! # ft-workloads — the paper's four irregular tensor programs
//!
//! Each workload (paper §6.1) is implemented three ways over identical
//! synthetic inputs:
//!
//! * **FreeTensor DSL** — the fine-grained, redundancy-free program (the
//!   unoptimized build doubles as the "Julia-style fine-grained" baseline;
//!   `Program::optimize` produces the scheduled FreeTensor build);
//! * **operator-based** (`ft-opbase`) — the PyTorch/JAX/DGL-style chain with
//!   its rearrangement operators and materialized intermediates;
//! * **reference** — a plain Rust oracle used by the test suite to check
//!   both against.
//!
//! | workload | irregularity |
//! |---|---|
//! | [`subdivnet`] | indirect adjacency + circular difference (paper Fig. 2) |
//! | [`longformer`] | sliding-window attention with boundary guards (Fig. 1/5) |
//! | [`softras`] | per pixel–face geometric scoring |
//! | [`gat`] | CSR neighbor softmax with data-dependent loop bounds |

pub mod data;
pub mod gat;
pub mod longformer;
pub mod softras;
pub mod subdivnet;

use ft_runtime::TensorVal;
use std::collections::HashMap;

/// Named input tensors for a workload run.
pub type Inputs = HashMap<String, TensorVal>;

/// Convert inputs into the slice form `Program::run` takes.
pub fn input_pairs(inputs: &Inputs) -> Vec<(&str, TensorVal)> {
    inputs.iter().map(|(k, v)| (k.as_str(), v.clone())).collect()
}
