//! Longformer's sliding-window attention (paper §1 Fig. 1, §3.2 Fig. 5).
//!
//! Token `j` attends only to tokens within distance `w`; scores are
//! softmax-normalized over the valid window and used to mix `V`.

use crate::{data, Inputs};
use freetensor_core::Program;
use ft_opbase::{OpError, Session, Tensor};
use ft_runtime::{Scalar, TensorVal};

/// Problem sizes.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Sequence length.
    pub seq_len: usize,
    /// Window half-width.
    pub w: usize,
    /// Feature dimension.
    pub feat_len: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            seq_len: 512,
            w: 32,
            feat_len: 64,
        }
    }
}

impl Params {
    /// A small instance for tests.
    pub fn small() -> Params {
        Params {
            seq_len: 12,
            w: 2,
            feat_len: 4,
        }
    }
}

/// Synthetic `Q`, `K`, `V` of shape `[seq_len, feat_len]`.
pub fn inputs(p: &Params, seed: u64) -> Inputs {
    let mut m = Inputs::new();
    for (i, name) in ["Q", "K", "V"].iter().enumerate() {
        m.insert(
            (*name).to_string(),
            data::features(&[p.seq_len, p.feat_len], seed + i as u64),
        );
    }
    m
}

/// The FreeTensor DSL source: direct sliding-window indexing, no copies
/// (paper Fig. 5, completed with the attention application).
pub fn source(p: &Params) -> String {
    format!(
        r#"
def longformer(Q: f32[{n}, {f}] in, K: f32[{n}, {f}] in, V: f32[{n}, {f}] in, y: f32[{n}, {f}] out):
  for j in range({n}):
    dot = create_var(({l},), "f32", "cpu")
    for k in range({l}):
      if j + k - {w} >= 0 and j + k - {w} < {n}:
        for p in range({f}):
          dot[k] += Q[j, p] * K[j + k - {w}, p]
      else:
        dot[k] = -inf
    m = create_var((), "f32", "cpu")
    m = -inf
    for k2 in range({l}):
      m max= dot[k2]
    ex = create_var(({l},), "f32", "cpu")
    for ke in range({l}):
      if j + ke - {w} >= 0 and j + ke - {w} < {n}:
        ex[ke] = exp(dot[ke] - m)
      else:
        ex[ke] = 0.0
    den = create_var((), "f32", "cpu")
    for k3 in range({l}):
      den += ex[k3]
    for k4 in range({l}):
      if j + k4 - {w} >= 0 and j + k4 - {w} < {n}:
        for p2 in range({f}):
          y[j, p2] += ex[k4] / den * V[j + k4 - {w}, p2]
"#,
        n = p.seq_len,
        f = p.feat_len,
        w = p.w,
        l = 2 * p.w + 1
    )
}

/// Compile the FreeTensor program.
pub fn program(p: &Params) -> Program {
    Program::compile(&source(p), "longformer").expect("longformer source compiles")
}

/// Reference implementation.
pub fn reference(p: &Params, inputs: &Inputs) -> TensorVal {
    let (q, k, v) = (&inputs["Q"], &inputs["K"], &inputs["V"]);
    let (n, f, w) = (p.seq_len, p.feat_len, p.w as i64);
    let mut y = TensorVal::zeros(ft_ir::DataType::F32, &[n, f]);
    for j in 0..n {
        let lo = (j as i64 - w).max(0) as usize;
        let hi = ((j as i64 + w + 1).min(n as i64)) as usize;
        let mut scores: Vec<f64> = Vec::new();
        for t in lo..hi {
            let mut dot = 0.0f64;
            for c in 0..f {
                dot += q.get_flat(j * f + c).as_f64() * k.get_flat(t * f + c).as_f64();
            }
            scores.push(dot);
        }
        let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let den: f64 = scores.iter().map(|s| (s - m).exp()).sum();
        for (idx, t) in (lo..hi).enumerate() {
            let a = (scores[idx] - m).exp() / den;
            for c in 0..f {
                let cur = y.get_flat(j * f + c).as_f64();
                y.set_flat(
                    j * f + c,
                    Scalar::Float(cur + a * v.get_flat(t * f + c).as_f64()),
                );
            }
        }
    }
    y
}

/// Plain-Rust oracle gradients `∂L/∂Q`, `∂L/∂K`, `∂L/∂V` given
/// `seed = ∂L/∂y`.
///
/// Per row `j`, with window scores `s_t = Q[j]·K[t]` and attention
/// `a = softmax(s)` (the max-shift cancels analytically): writing
/// `b_t = Σ_c seed[j,c]·V[t,c]` and `ā = Σ_t a_t·b_t`,
///
/// * `∂L/∂V[t,c] += a_t · seed[j,c]`
/// * `∂s_t = a_t · (b_t − ā)` (softmax Jacobian)
/// * `∂L/∂Q[j,p] += Σ_t ∂s_t · K[t,p]`, `∂L/∂K[t,p] += ∂s_t · Q[j,p]`.
pub fn reference_grad(p: &Params, inputs: &Inputs, seed: &TensorVal) -> Inputs {
    let (q, k, v) = (&inputs["Q"], &inputs["K"], &inputs["V"]);
    let (n, f, w) = (p.seq_len, p.feat_len, p.w as i64);
    let mut dq = vec![0.0f64; n * f];
    let mut dk = vec![0.0f64; n * f];
    let mut dv = vec![0.0f64; n * f];
    for j in 0..n {
        let lo = (j as i64 - w).max(0) as usize;
        let hi = ((j as i64 + w + 1).min(n as i64)) as usize;
        let scores: Vec<f64> = (lo..hi)
            .map(|t| {
                (0..f)
                    .map(|c| q.get_flat(j * f + c).as_f64() * k.get_flat(t * f + c).as_f64())
                    .sum()
            })
            .collect();
        let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let den: f64 = scores.iter().map(|s| (s - m).exp()).sum();
        let attn: Vec<f64> = scores.iter().map(|s| (s - m).exp() / den).collect();
        let b: Vec<f64> = (lo..hi)
            .map(|t| {
                (0..f)
                    .map(|c| seed.get_flat(j * f + c).as_f64() * v.get_flat(t * f + c).as_f64())
                    .sum()
            })
            .collect();
        let abar: f64 = attn.iter().zip(&b).map(|(a, b)| a * b).sum();
        for (idx, t) in (lo..hi).enumerate() {
            for c in 0..f {
                dv[t * f + c] += attn[idx] * seed.get_flat(j * f + c).as_f64();
            }
            let ds = attn[idx] * (b[idx] - abar);
            for c in 0..f {
                dq[j * f + c] += ds * k.get_flat(t * f + c).as_f64();
                dk[t * f + c] += ds * q.get_flat(j * f + c).as_f64();
            }
        }
    }
    let to_val = |v: Vec<f64>| {
        TensorVal::from_f32(&[n, f], v.into_iter().map(|x| x as f32).collect())
    };
    let mut m = Inputs::new();
    m.insert("Q.grad".to_string(), to_val(dq));
    m.insert("K.grad".to_string(), to_val(dk));
    m.insert("V.grad".to_string(), to_val(dv));
    m
}

fn window_mask(p: &Params) -> TensorVal {
    let l = 2 * p.w + 1;
    let mut mask = vec![0.0f32; p.seq_len * l];
    for j in 0..p.seq_len {
        for kk in 0..l {
            let t = j as i64 + kk as i64 - p.w as i64;
            if t < 0 || t >= p.seq_len as i64 {
                mask[j * l + kk] = -1e30;
            }
        }
    }
    TensorVal::from_f32(&[p.seq_len, l], mask)
}

/// Handles to the baseline's leaf tensors (for gradient lookups).
pub struct OpbaseHandles {
    /// Query matrix handle.
    pub q: Tensor,
    /// Key matrix handle.
    pub k: Tensor,
    /// Value matrix handle.
    pub v: Tensor,
    /// Output handle.
    pub y: Tensor,
}

/// Operator-based implementation (paper Fig. 1(b)): materialize the
/// window-unfolded `K` and `V` (the w-fold copies), batched dot products,
/// masked softmax over the window, batched mix.
///
/// # Errors
///
/// Propagates operator shape/memory errors (including the OOM this
/// materialization causes at larger sizes).
pub fn opbase(s: &Session, p: &Params, inputs: &Inputs) -> Result<OpbaseHandles, OpError> {
    let q = s.tensor(inputs["Q"].clone())?;
    let k = s.tensor(inputs["K"].clone())?;
    let v = s.tensor(inputs["V"].clone())?;
    let mask = s.tensor(window_mask(p))?;
    let kwin = s.unfold_window(&k, p.w)?;
    let vwin = s.unfold_window(&v, p.w)?;
    let dot = s.bmm_qk(&q, &kwin)?;
    let masked = s.add(&dot, &mask)?;
    let attn = s.softmax_dim(&masked, 1)?;
    let y = s.bmm_av(&attn, &vwin)?;
    Ok(OpbaseHandles { q, k, v, y })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_autoschedule::Target;
    use ft_runtime::Runtime;

    #[test]
    fn all_implementations_agree() {
        let p = Params::small();
        let ins = inputs(&p, 11);
        let oracle = reference(&p, &ins);
        let prog = program(&p);
        let rt = Runtime::new();
        for pr in [
            prog.clone(),
            prog.optimize(&Target::cpu()),
            prog.optimize(&Target::gpu()),
        ] {
            let r = pr.run(&rt, &crate::input_pairs(&ins), &[]).unwrap();
            assert!(
                r.output("y").allclose(&oracle, 1e-3),
                "FreeTensor diverges: max diff {}",
                r.output("y").max_abs_diff(&oracle)
            );
        }
        let s = Session::cpu();
        let h = opbase(&s, &p, &ins).unwrap();
        assert!(h.y.val().allclose(&oracle, 1e-3));
    }

    #[test]
    fn window_materialization_dominates_baseline_memory() {
        let p = Params::small();
        let ins = inputs(&p, 5);
        let s = Session::cpu();
        let _ = opbase(&s, &p, &ins).unwrap();
        let baseline_peak = s.counters().peak_bytes["cpu"];
        let rt = Runtime::new();
        let r = program(&p)
            .run(&rt, &crate::input_pairs(&ins), &[])
            .unwrap();
        let ft_peak = r.counters.peak_bytes["cpu"];
        assert!(
            baseline_peak > 2 * ft_peak,
            "baseline peak {baseline_peak} vs FreeTensor {ft_peak}"
        );
    }

    #[test]
    fn freetensor_grad_matches_operator_grad() {
        let p = Params::small();
        let ins = inputs(&p, 13);
        let seed = TensorVal::from_f32(
            &[p.seq_len, p.feat_len],
            vec![1.0; p.seq_len * p.feat_len],
        );
        // FreeTensor AD.
        let g = program(&p)
            .grad(&ft_autodiff::GradOptions::default())
            .unwrap();
        let rt = Runtime::new();
        let mut pairs = crate::input_pairs(&ins);
        pairs.push(("y.grad", seed.clone()));
        let r = g.run(&rt, &pairs, &[]).unwrap();
        // Operator AD.
        let s = Session::cpu();
        s.set_grad_mode(true);
        let h = opbase(&s, &p, &ins).unwrap();
        let grads = s.backward(&h.y, seed).unwrap();
        for (name, handle) in [("Q", &h.q), ("K", &h.k), ("V", &h.v)] {
            let ft = r.output(&format!("{name}.grad"));
            let ob = &grads[&handle.id()];
            assert!(
                ft.allclose(ob, 1e-2),
                "{name}.grad mismatch: max diff {}",
                ft.max_abs_diff(ob)
            );
        }
    }
}
