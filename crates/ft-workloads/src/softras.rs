//! SoftRas-style differentiable rasterization (paper §6.1).
//!
//! Every pixel–face pair gets a geometric score (a sigmoid of the signed
//! distance between the pixel and the face's center), scores are normalized
//! per pixel, and face colors are mixed accordingly — the fine-grained
//! "compute per pixel-face pair" structure the paper highlights.

use crate::{data, Inputs};
use freetensor_core::Program;
use ft_opbase::{OpError, Session, Tensor};
use ft_runtime::{Scalar, TensorVal};

/// Problem sizes and the soft-rasterizer constants.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Image height.
    pub h: usize,
    /// Image width.
    pub w: usize,
    /// Number of faces.
    pub n_faces: usize,
    /// Color channels.
    pub channels: usize,
    /// Squared soft radius.
    pub r2: f32,
    /// Sharpness of the sigmoid.
    pub sigma: f32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            h: 32,
            w: 32,
            n_faces: 24,
            channels: 3,
            r2: 0.03,
            sigma: 0.01,
        }
    }
}

impl Params {
    /// A small instance for tests.
    pub fn small() -> Params {
        Params {
            h: 6,
            w: 5,
            n_faces: 7,
            channels: 2,
            ..Params::default()
        }
    }

    /// Number of pixels.
    pub fn pixels(&self) -> usize {
        self.h * self.w
    }
}

/// Synthetic inputs: pixel grid `px[P, 2]`, face centers `faces[F, 2]`,
/// face colors `col[F, CH]`.
pub fn inputs(p: &Params, seed: u64) -> Inputs {
    let mut m = Inputs::new();
    m.insert("px".to_string(), data::pixel_grid(p.h, p.w));
    // Face centers in [0, 1]^2: reuse the feature generator, shifted.
    let raw = data::features(&[p.n_faces, 2], seed);
    let centers: Vec<f32> = raw
        .to_f64_vec()
        .into_iter()
        .map(|v| (v as f32 + 1.0) / 2.0)
        .collect();
    m.insert(
        "faces".to_string(),
        TensorVal::from_f32(&[p.n_faces, 2], centers),
    );
    m.insert(
        "col".to_string(),
        data::features(&[p.n_faces, p.channels], seed ^ 0xC0),
    );
    m
}

/// The FreeTensor DSL source: per-pixel loop over faces, distances computed
/// in place, softmax-normalized mixing.
pub fn source(p: &Params) -> String {
    format!(
        r#"
def softras(px: f32[{pp}, 2] in, faces: f32[{ff}, 2] in, col: f32[{ff}, {ch}] in, img: f32[{pp}, {ch}] out):
  for p in range({pp}):
    sc = create_var(({ff},), "f32", "cpu")
    for f in range({ff}):
      sc[f] = ({r2} - ((px[p, 0] - faces[f, 0]) * (px[p, 0] - faces[f, 0]) + (px[p, 1] - faces[f, 1]) * (px[p, 1] - faces[f, 1]))) / {sigma}
    m = create_var((), "f32", "cpu")
    m = -inf
    for f2 in range({ff}):
      m max= sc[f2]
    den = create_var((), "f32", "cpu")
    for f3 in range({ff}):
      den += exp(sc[f3] - m)
    for f4 in range({ff}):
      for c in range({ch}):
        img[p, c] += exp(sc[f4] - m) / den * col[f4, c]
"#,
        pp = p.pixels(),
        ff = p.n_faces,
        ch = p.channels,
        r2 = p.r2,
        sigma = p.sigma
    )
}

/// Compile the FreeTensor program.
pub fn program(p: &Params) -> Program {
    Program::compile(&source(p), "softras").expect("softras source compiles")
}

/// Reference implementation.
#[allow(clippy::needless_range_loop)] // face index is part of the math
pub fn reference(p: &Params, inputs: &Inputs) -> TensorVal {
    let (px, faces, col) = (&inputs["px"], &inputs["faces"], &inputs["col"]);
    let (pp, ff, ch) = (p.pixels(), p.n_faces, p.channels);
    let mut img = TensorVal::zeros(ft_ir::DataType::F32, &[pp, ch]);
    for pi in 0..pp {
        let scores: Vec<f64> = (0..ff)
            .map(|f| {
                let mut d = 0.0;
                for t in 0..2 {
                    let diff =
                        px.get_flat(pi * 2 + t).as_f64() - faces.get_flat(f * 2 + t).as_f64();
                    d += diff * diff;
                }
                (p.r2 as f64 - d) / p.sigma as f64
            })
            .collect();
        let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let den: f64 = scores.iter().map(|s| (s - m).exp()).sum();
        for f in 0..ff {
            let a = (scores[f] - m).exp() / den;
            for c in 0..ch {
                let cur = img.get_flat(pi * ch + c).as_f64();
                img.set_flat(
                    pi * ch + c,
                    Scalar::Float(cur + a * col.get_flat(f * ch + c).as_f64()),
                );
            }
        }
    }
    img
}

/// Plain-Rust oracle gradients `∂L/∂px`, `∂L/∂faces`, `∂L/∂col` given
/// `seed = ∂L/∂img`.
///
/// Per pixel, with scores `s_f = (r² − dist²_f)/σ` and `a = softmax(s)`:
/// writing `b_f = Σ_c seed[p,c]·col[f,c]` and `ā = Σ_f a_f·b_f`,
///
/// * `∂L/∂col[f,c] += a_f · seed[p,c]`
/// * `∂s_f = a_f · (b_f − ā)`, `∂dist²_f = −∂s_f/σ`
/// * `∂L/∂px[p,t] += ∂dist²_f · 2(px[p,t] − faces[f,t])` and the negation
///   for `faces`.
pub fn reference_grad(p: &Params, inputs: &Inputs, seed: &TensorVal) -> Inputs {
    let (px, faces, col) = (&inputs["px"], &inputs["faces"], &inputs["col"]);
    let (pp, ff, ch) = (p.pixels(), p.n_faces, p.channels);
    let sigma = p.sigma as f64;
    let mut dpx = vec![0.0f64; pp * 2];
    let mut dfaces = vec![0.0f64; ff * 2];
    let mut dcol = vec![0.0f64; ff * ch];
    for pi in 0..pp {
        let scores: Vec<f64> = (0..ff)
            .map(|f| {
                let mut d = 0.0;
                for t in 0..2 {
                    let diff =
                        px.get_flat(pi * 2 + t).as_f64() - faces.get_flat(f * 2 + t).as_f64();
                    d += diff * diff;
                }
                (p.r2 as f64 - d) / sigma
            })
            .collect();
        let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let den: f64 = scores.iter().map(|s| (s - m).exp()).sum();
        let attn: Vec<f64> = scores.iter().map(|s| (s - m).exp() / den).collect();
        let b: Vec<f64> = (0..ff)
            .map(|f| {
                (0..ch)
                    .map(|c| seed.get_flat(pi * ch + c).as_f64() * col.get_flat(f * ch + c).as_f64())
                    .sum()
            })
            .collect();
        let abar: f64 = attn.iter().zip(&b).map(|(a, b)| a * b).sum();
        for f in 0..ff {
            for c in 0..ch {
                dcol[f * ch + c] += attn[f] * seed.get_flat(pi * ch + c).as_f64();
            }
            let ds = attn[f] * (b[f] - abar);
            let dd2 = -ds / sigma;
            for t in 0..2 {
                let diff = px.get_flat(pi * 2 + t).as_f64() - faces.get_flat(f * 2 + t).as_f64();
                dpx[pi * 2 + t] += dd2 * 2.0 * diff;
                dfaces[f * 2 + t] -= dd2 * 2.0 * diff;
            }
        }
    }
    let to_val = |shape: &[usize], v: Vec<f64>| {
        TensorVal::from_f32(shape, v.into_iter().map(|x| x as f32).collect())
    };
    let mut m = Inputs::new();
    m.insert("px.grad".to_string(), to_val(&[pp, 2], dpx));
    m.insert("faces.grad".to_string(), to_val(&[ff, 2], dfaces));
    m.insert("col.grad".to_string(), to_val(&[ff, ch], dcol));
    m
}

/// Handles to the baseline's leaf tensors.
pub struct OpbaseHandles {
    /// Face centers handle.
    pub faces: Tensor,
    /// Face colors handle.
    pub col: Tensor,
    /// Rendered image handle.
    pub img: Tensor,
}

/// Operator-based implementation: materialize the full pixel×face distance
/// matrix via `dist² = |p|² + |c|² − 2·P·Cᵀ`, then softmax and a matmul with
/// the color matrix — whole-tensor operators all the way (with the P×F
/// intermediates the fine-grained version never allocates).
///
/// # Errors
///
/// Propagates operator shape/memory errors.
pub fn opbase(s: &Session, p: &Params, inputs: &Inputs) -> Result<OpbaseHandles, OpError> {
    let px = s.tensor(inputs["px"].clone())?;
    let faces = s.tensor(inputs["faces"].clone())?;
    let col = s.tensor(inputs["col"].clone())?;
    // |p|^2 per pixel and |c|^2 per face.
    let px2 = s.mul(&px, &px)?;
    let p2 = s.sum_dim(&px2, 1)?; // [P]
    let f2t = s.mul(&faces, &faces)?;
    let c2 = s.sum_dim(&f2t, 1)?; // [F]
    // -2 P C^T.
    let ct = s.transpose2d(&faces)?;
    let pc = s.matmul(&px, &ct)?; // [P, F]
    let m2 = s.scale(&pc, -2.0)?;
    let with_p2 = s.add_col(&m2, &p2)?;
    let dist2 = s.add_row(&with_p2, &c2)?;
    // score = (r2 - dist2) / sigma.
    let neg = s.scale(&dist2, -1.0 / p.sigma as f64)?;
    let r2v = vec![p.r2 / p.sigma; p.n_faces];
    let bias = s.tensor(TensorVal::from_f32(&[p.n_faces], r2v))?;
    let score = s.add_row(&neg, &bias)?;
    let attn = s.softmax_dim(&score, 1)?;
    let img = s.matmul(&attn, &col)?;
    Ok(OpbaseHandles { faces, col, img })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_autoschedule::Target;
    use ft_runtime::Runtime;

    #[test]
    fn all_implementations_agree() {
        let p = Params::small();
        let ins = inputs(&p, 17);
        let oracle = reference(&p, &ins);
        let prog = program(&p);
        let rt = Runtime::new();
        for pr in [prog.clone(), prog.optimize(&Target::cpu())] {
            let r = pr.run(&rt, &crate::input_pairs(&ins), &[]).unwrap();
            assert!(
                r.output("img").allclose(&oracle, 1e-3),
                "max diff {}",
                r.output("img").max_abs_diff(&oracle)
            );
        }
        let s = Session::cpu();
        let h = opbase(&s, &p, &ins).unwrap();
        assert!(
            h.img.val().allclose(&oracle, 1e-3),
            "max diff {}",
            h.img.val().max_abs_diff(&oracle)
        );
    }

    #[test]
    fn freetensor_grad_matches_operator_grad() {
        let p = Params::small();
        let ins = inputs(&p, 19);
        let seed = TensorVal::from_f32(
            &[p.pixels(), p.channels],
            vec![1.0; p.pixels() * p.channels],
        );
        let g = program(&p)
            .grad(&ft_autodiff::GradOptions {
                wrt: Some(vec!["faces".to_string(), "col".to_string()]),
                ..Default::default()
            })
            .unwrap();
        let rt = Runtime::new();
        let mut pairs = crate::input_pairs(&ins);
        pairs.push(("img.grad", seed.clone()));
        let r = g.run(&rt, &pairs, &[]).unwrap();
        let s = Session::cpu();
        s.set_grad_mode(true);
        let h = opbase(&s, &p, &ins).unwrap();
        let grads = s.backward(&h.img, seed).unwrap();
        for (name, handle) in [("faces", &h.faces), ("col", &h.col)] {
            let ft = r.output(&format!("{name}.grad"));
            let ob = &grads[&handle.id()];
            assert!(
                ft.allclose(ob, 1e-2),
                "{name}.grad mismatch: max diff {}",
                ft.max_abs_diff(ob)
            );
        }
    }
}
