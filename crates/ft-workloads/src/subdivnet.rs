//! SubdivNet's mesh convolution with circular difference (paper §2, Fig. 2).
//!
//! For each face `i` with neighbors `adj[i, 0..3]`, the output feature is
//! the circular difference `Σ_j |e[adj[i,j]] - e[adj[i,(j+1)%3]]|`.

use crate::{data, Inputs};
use freetensor_core::Program;
use ft_opbase::{OpError, Session, Tensor};
use ft_runtime::{Scalar, TensorVal};

/// Problem sizes.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of mesh faces.
    pub n_faces: usize,
    /// Feature channels per face.
    pub in_feats: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n_faces: 1024,
            in_feats: 32,
        }
    }
}

impl Params {
    /// A small instance for tests.
    pub fn small() -> Params {
        Params {
            n_faces: 24,
            in_feats: 5,
        }
    }
}

/// Synthetic inputs: `e[n_faces, in_feats]` features, `adj[n_faces, 3]`.
pub fn inputs(p: &Params, seed: u64) -> Inputs {
    let mut m = Inputs::new();
    m.insert(
        "e".to_string(),
        data::features(&[p.n_faces, p.in_feats], seed),
    );
    m.insert("adj".to_string(), data::mesh_adjacency(p.n_faces, seed ^ 0xAD));
    m
}

/// The FreeTensor DSL source (fine-grained, redundancy-free — paper
/// Fig. 3(b)).
///
/// Written the way a careful kernel author would: the output is zeroed
/// explicitly (no reliance on the allocator handing out zeroed memory)
/// and the difference goes through a single scalar temporary `d` declared
/// once per `(i, j)` and reused across channels. The shape is deliberate
/// exercise for the auto-scheduler: the two adjacent `i`-nests are a
/// fusion candidate, and the reused scalar carries a WAR/WAW dependence
/// across the channel loop, so `vectorize(c)` is *rejected* by the
/// dependence engine — the schedule decision log records both.
pub fn source(p: &Params) -> String {
    format!(
        r#"
def subdivnet(e: f32[{f}, {c}] in, adj: i32[{f}, 3] in, y: f32[{f}, {c}] out):
  for i0 in range({f}):
    for c0 in range({c}):
      y[i0, c0] = 0.0
  for i in range({f}):
    for j in range(3):
      d = create_var((), "f32", "cpu")
      for c in range({c}):
        d = e[adj[i, j], c] - e[adj[i, (j + 1) % 3], c]
        y[i, c] += abs(d)
"#,
        f = p.n_faces,
        c = p.in_feats
    )
}

/// Compile the FreeTensor program.
pub fn program(p: &Params) -> Program {
    Program::compile(&source(p), "subdivnet").expect("subdivnet source compiles")
}

/// Reference implementation (plain Rust oracle).
pub fn reference(p: &Params, inputs: &Inputs) -> TensorVal {
    let e = &inputs["e"];
    let adj = &inputs["adj"];
    let mut y = TensorVal::zeros(ft_ir::DataType::F32, &[p.n_faces, p.in_feats]);
    for i in 0..p.n_faces {
        for j in 0..3 {
            let a = adj.get_flat(i * 3 + j).as_i64() as usize;
            let b = adj.get_flat(i * 3 + (j + 1) % 3).as_i64() as usize;
            for c in 0..p.in_feats {
                let d = (e.get_flat(a * p.in_feats + c).as_f64()
                    - e.get_flat(b * p.in_feats + c).as_f64())
                .abs();
                let cur = y.get_flat(i * p.in_feats + c).as_f64();
                y.set_flat(i * p.in_feats + c, Scalar::Float(cur + d));
            }
        }
    }
    y
}

/// Plain-Rust oracle gradient: `∂L/∂e` given `seed = ∂L/∂y`.
///
/// `y[i,c] += |e[a,c] − e[b,c]|` with `a = adj[i,j]`, `b = adj[i,(j+1)%3]`,
/// so each term contributes `±sign(e[a,c] − e[b,c]) · seed[i,c]` to the two
/// endpoints (`sign(0) = 0`, matching the runtimes and the AD `Abs` rule).
pub fn reference_grad(p: &Params, inputs: &Inputs, seed: &TensorVal) -> Inputs {
    let e = &inputs["e"];
    let adj = &inputs["adj"];
    let (n, c) = (p.n_faces, p.in_feats);
    let mut de = vec![0.0f64; n * c];
    for i in 0..n {
        for j in 0..3 {
            let a = adj.get_flat(i * 3 + j).as_i64() as usize;
            let b = adj.get_flat(i * 3 + (j + 1) % 3).as_i64() as usize;
            for ch in 0..c {
                let d = e.get_flat(a * c + ch).as_f64() - e.get_flat(b * c + ch).as_f64();
                let s = if d > 0.0 {
                    1.0
                } else if d < 0.0 {
                    -1.0
                } else {
                    0.0
                };
                let g = s * seed.get_flat(i * c + ch).as_f64();
                de[a * c + ch] += g;
                de[b * c + ch] -= g;
            }
        }
    }
    let mut m = Inputs::new();
    m.insert(
        "e.grad".to_string(),
        TensorVal::from_f32(&[n, c], de.into_iter().map(|v| v as f32).collect()),
    );
    m
}

/// Operator-based implementation (paper Fig. 2(c)):
/// `index_select → reshape → cat(slice, slice) → sub → abs → sum_dim`.
///
/// # Errors
///
/// Propagates operator shape/memory errors.
pub fn opbase(s: &Session, p: &Params, inputs: &Inputs) -> Result<Tensor, OpError> {
    let e = s.tensor(inputs["e"].clone())?;
    let adj = s.tensor(inputs["adj"].clone())?;
    // Step 1: gather all neighbor features (the redundant 3× copy).
    let flat = s.reshape(&adj, &[p.n_faces * 3])?;
    let gathered = s.index_select(&e, &flat)?;
    let adj_feat = s.reshape(&gathered, &[p.n_faces, 3, p.in_feats])?;
    // Step 2: rotate along the neighbor dimension.
    let tail = s.slice(&adj_feat, 1, 1, 3)?;
    let head = s.slice(&adj_feat, 1, 0, 1)?;
    let reordered = s.cat(&[&tail, &head], 1)?;
    // Step 3: |a - b| summed over neighbors.
    let diff = s.sub(&adj_feat, &reordered)?;
    let absd = s.abs(&diff)?;
    s.sum_dim(&absd, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_autoschedule::Target;
    use ft_runtime::Runtime;

    #[test]
    fn all_implementations_agree() {
        let p = Params::small();
        let ins = inputs(&p, 7);
        let oracle = reference(&p, &ins);
        // FreeTensor, unoptimized and optimized, CPU and GPU schedules.
        let prog = program(&p);
        let rt = Runtime::new();
        for pr in [
            prog.clone(),
            prog.optimize(&Target::cpu()),
            prog.optimize(&Target::gpu()),
        ] {
            let r = pr.run(&rt, &crate::input_pairs(&ins), &[]).unwrap();
            assert!(
                r.output("y").allclose(&oracle, 1e-4),
                "FreeTensor output diverges:\n{}",
                pr.func()
            );
        }
        // Operator baseline.
        let s = Session::cpu();
        let y = opbase(&s, &p, &ins).unwrap();
        assert!(y.val().allclose(&oracle, 1e-4));
    }

    #[test]
    fn freetensor_uses_less_traffic_than_opbase() {
        let p = Params::small();
        let ins = inputs(&p, 3);
        let rt = Runtime::new();
        let r = program(&p)
            .optimize(&Target::cpu())
            .run(&rt, &crate::input_pairs(&ins), &[])
            .unwrap();
        let s = Session::cpu();
        let _ = opbase(&s, &p, &ins).unwrap();
        // The baseline materializes adj_feat (3× features) plus reorder
        // copies: strictly more DRAM traffic.
        assert!(
            s.counters().dram_bytes > r.counters.dram_bytes,
            "opbase {} vs freetensor {}",
            s.counters().dram_bytes,
            r.counters.dram_bytes
        );
    }

    #[test]
    fn gradients_flow_through_both() {
        let p = Params::small();
        let ins = inputs(&p, 9);
        // FreeTensor AD.
        let g = program(&p)
            .grad(&ft_autodiff::GradOptions::default())
            .unwrap();
        let rt = Runtime::new();
        let seed = TensorVal::from_f32(
            &[p.n_faces, p.in_feats],
            vec![1.0; p.n_faces * p.in_feats],
        );
        let mut pairs = crate::input_pairs(&ins);
        pairs.push(("y.grad", seed.clone()));
        let r = g.run(&rt, &pairs, &[]).unwrap();
        let ft_grad = r.output("e.grad").clone();
        // Baseline AD over the same chain, keeping the input handle so its
        // gradient can be looked up.
        let s = Session::cpu();
        s.set_grad_mode(true);
        let e = s.tensor(ins["e"].clone()).unwrap();
        let adj = s.tensor(ins["adj"].clone()).unwrap();
        let flat = s.reshape(&adj, &[p.n_faces * 3]).unwrap();
        let gathered = s.index_select(&e, &flat).unwrap();
        let af = s.reshape(&gathered, &[p.n_faces, 3, p.in_feats]).unwrap();
        let tail = s.slice(&af, 1, 1, 3).unwrap();
        let head = s.slice(&af, 1, 0, 1).unwrap();
        let re = s.cat(&[&tail, &head], 1).unwrap();
        let diff = s.sub(&af, &re).unwrap();
        let absd = s.abs(&diff).unwrap();
        let y = s.sum_dim(&absd, 1).unwrap();
        let grads = s.backward(&y, seed).unwrap();
        assert!(
            grads[&e.id()].allclose(&ft_grad, 1e-3),
            "gradient mismatch between FreeTensor AD and operator AD"
        );
    }
}
