//! Fine-grained AD on the paper's Fig. 15 program, showing the selective
//! intermediate tensor materialization decision (store vs recompute).
//!
//! ```sh
//! cargo run --example autodiff
//! ```

use freetensor::autodiff::{GradOptions, TapePolicy};
use freetensor::core::Program;
use freetensor::runtime::{Runtime, TensorVal};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Paper Fig. 15(a): t is an intermediate used by two outputs.
    let src = r#"
def fig15(a: f64[64] in, b: f64[64] in, c: f64[64] in, d: f64[64] in, y: f64[64] out, z: f64[64] out):
  for i in range(64):
    t = create_var((), "f64", "cpu")
    t = a[i] * b[i]
    y[i] = t * c[i]
    z[i] = t * d[i]
"#;
    let program = Program::compile(src, "fig15")?;

    let materialized = program.grad(&GradOptions {
        policy: TapePolicy::All,
        ..Default::default()
    })?;
    let selective = program.grad(&GradOptions::default())?;

    println!("== FT(-) — every intermediate materialized (Fig. 15(b)) ==");
    println!(
        "{}",
        materialized
            .func()
            .to_string()
            .lines()
            .filter(|l| l.contains("tape"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    println!("\n== FT(+) — t recomputed in the backward pass (Fig. 15(c)) ==");
    let text = selective.func().to_string();
    assert!(!text.contains("t.tape"), "selective should not tape t");
    println!("(no t.tape anywhere; backward re-emits `t = a[i] * b[i]`)\n");

    // Both produce identical gradients.
    let rt = Runtime::new();
    let mk = |s: u64| {
        TensorVal::from_f64(&[64], (0..64).map(|i| ((i as f64) * 0.1 + s as f64).sin()).collect())
    };
    let ones = TensorVal::from_f64(&[64], vec![1.0; 64]);
    let inputs = [
        ("a", mk(1)),
        ("b", mk(2)),
        ("c", mk(3)),
        ("d", mk(4)),
        ("y.grad", ones.clone()),
        ("z.grad", ones),
    ];
    let r_all = materialized.run(&rt, &inputs, &[])?;
    let r_sel = selective.run(&rt, &inputs, &[])?;
    for g in ["a.grad", "b.grad", "c.grad", "d.grad"] {
        assert!(r_all.output(g).allclose(r_sel.output(g), 1e-12));
    }
    println!("gradients identical; FT(-) peak {}B vs FT(+) peak {}B",
        r_all.counters.peak_bytes["cpu"], r_sel.counters.peak_bytes["cpu"]);
    Ok(())
}
