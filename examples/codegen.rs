//! Emit the native-backend sources (C/OpenMP and CUDA-flavoured) for a
//! scheduled program — the paper's §4.3 code-generation stage.
//!
//! ```sh
//! cargo run --example codegen
//! ```

use freetensor::autoschedule::Target;
use freetensor::workloads::subdivnet;

fn main() {
    let params = subdivnet::Params {
        n_faces: 64,
        in_feats: 8,
    };
    let program = subdivnet::program(&params);

    println!("==== C / OpenMP (CPU schedule) ====");
    println!("{}", program.optimize(&Target::cpu()).emit_c());

    println!("==== CUDA-flavoured (GPU schedule) ====");
    println!("{}", program.optimize(&Target::gpu()).emit_cuda());
}
