//! GAT layer with data-dependent loop bounds: FreeTensor vs the DGL-style
//! sparse-operator pipeline ("we can implement more computations in fewer
//! kernels", paper §6.2).
//!
//! ```sh
//! cargo run --example gat
//! ```

use freetensor::autoschedule::Target;
use freetensor::opbase::Session;
use freetensor::runtime::Runtime;
use freetensor::workloads::{gat, input_pairs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = gat::Params {
        n_nodes: 256,
        degree: 8,
        feat_len: 16,
    };
    let inputs = gat::inputs(&params, 3);

    let program = gat::program(&params).optimize(&Target::gpu());
    let rt = Runtime::new();
    let ft = program.run(&rt, &input_pairs(&inputs), &[])?;

    let session = Session::gpu();
    let y = gat::opbase(&session, &params, &inputs)?;
    assert!(ft.output("y").allclose(y.val(), 1e-3));

    println!(
        "kernels: FreeTensor {} vs DGL-style {}",
        ft.counters.kernel_launches,
        session.counters().kernel_launches
    );
    println!(
        "DRAM bytes: FreeTensor {} vs DGL-style {}",
        ft.counters.dram_bytes,
        session.counters().dram_bytes
    );
    Ok(())
}
