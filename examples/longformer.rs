//! Longformer sliding-window attention with differentiation: the paper's
//! Fig. 1/5 workload, including the gradient program and the memory gap
//! between FreeTensor's tapes and the baseline's retained intermediates.
//!
//! ```sh
//! cargo run --example longformer
//! ```

use freetensor::autodiff::GradOptions;
use freetensor::opbase::Session;
use freetensor::runtime::{Runtime, TensorVal};
use freetensor::workloads::{input_pairs, longformer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = longformer::Params {
        seq_len: 128,
        w: 8,
        feat_len: 16,
    };
    let inputs = longformer::inputs(&params, 7);
    let seed = TensorVal::from_f32(
        &[params.seq_len, params.feat_len],
        vec![1.0; params.seq_len * params.feat_len],
    );

    // FreeTensor: one fused gradient program (forward + tape + backward).
    let grad = longformer::program(&params).grad(&GradOptions::default())?;
    let rt = Runtime::new();
    let mut pairs = input_pairs(&inputs);
    pairs.push(("y.grad", seed.clone()));
    let ft = grad.run(&rt, &pairs, &[])?;
    println!(
        "FreeTensor grad: peak {} bytes, {} DRAM bytes",
        ft.counters.peak_bytes["cpu"], ft.counters.dram_bytes
    );

    // Baseline: operator chain with graph AD retaining every intermediate.
    let session = Session::cpu();
    session.set_grad_mode(true);
    let handles = longformer::opbase(&session, &params, &inputs)?;
    let grads = session.backward(&handles.y, seed)?;
    let ob = session.counters();
    println!(
        "baseline grad:   peak {} bytes, {} DRAM bytes",
        ob.peak_bytes["cpu"], ob.dram_bytes
    );

    // Gradients agree.
    let dq = ft.output("Q.grad");
    let dq_ob = &grads[&handles.q.id()];
    println!(
        "dQ agrees across systems (max diff {:.2e})",
        dq.max_abs_diff(dq_ob)
    );
    println!(
        "\nmemory ratio (baseline / FreeTensor): {:.1}x",
        ob.peak_bytes["cpu"] as f64 / ft.counters.peak_bytes["cpu"] as f64
    );
    Ok(())
}
