//! Quickstart: compile a FreeTensor DSL program, auto-schedule it for CPU,
//! run it on the instrumented runtime, and inspect the counters.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use freetensor::autoschedule::Target;
use freetensor::core::Program;
use freetensor::runtime::{Runtime, TensorVal};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A fine-grained tensor program: a 1-D stencil with a boundary guard —
    // the kind of partial-tensor access operator frameworks struggle with.
    let src = r#"
def blur(x: f32[256] in, y: f32[256] out):
  for i in range(256):
    acc = create_var((), "f32", "cpu")
    for k in range(-1, 2):
      if i + k >= 0 and i + k < 256:
        acc += x[i + k]
    y[i] = acc / 3.0
"#;
    let program = Program::compile(src, "blur")?;
    println!("== unscheduled IR ==\n{}", program.func());

    // Rule-based auto-scheduling (paper §4.3).
    let fast = program.optimize(&Target::cpu());
    println!("== auto-scheduled IR ==\n{}", fast.func());

    // Execute.
    let x = TensorVal::from_f32(&[256], (0..256).map(|i| (i as f32 * 0.1).sin()).collect());
    let rt = Runtime::new();
    let result = fast.run(&rt, &[("x", x)], &[])?;
    println!(
        "y[0..4] = {:?}",
        &result.output("y").to_f64_vec()[..4]
    );
    println!(
        "counters: {} flops, {} DRAM bytes, {:.0} modeled cycles",
        result.counters.flops, result.counters.dram_bytes, result.counters.modeled_cycles
    );
    Ok(())
}
