//! A tour of the Table-1 schedule transformations, applied manually with
//! legality checking — including one that is *rejected* by the dependence
//! analysis (the paper's `dot_max` fusion).
//!
//! ```sh
//! cargo run --example schedule_tour
//! ```

use freetensor::core::Program;
use freetensor::ir::prelude::*;
use freetensor::ir::MemType;
use freetensor::schedule::Schedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = r#"
def pipeline(x: f32[4096] in, t: f32[4096] out, y: f32[4096] out):
  for i in range(4096):
    t[i] = x[i] * 2.0
  for j in range(4096):
    y[j] = t[j] + 1.0
"#;
    let program = Program::compile(src, "pipeline")?;
    let mut sched = Schedule::new(program.func().clone());

    // fuse: producer and consumer share iterations.
    let fused = sched.fuse("i", "j")?;
    println!("after fuse:\n{}", sched.func());

    // split + parallelize + vectorize: map to hardware.
    let (outer, inner) = sched.split(fused, 256)?;
    sched.parallelize(outer, ParallelScope::OpenMp)?;
    sched.vectorize(inner)?;
    println!("after split/parallelize/vectorize:\n{}", sched.func());

    // cache: stage the x window near the processor.
    sched.cache(inner, "x", MemType::CpuStack)?;
    println!("after cache:\n{}", sched.func());

    // An illegal request is rejected, not miscompiled: fusing a max-reduce
    // producer with its consumer (the paper's Fig. 8 dot_max example).
    let bad = Program::compile(
        r#"
def softmax_ish(dot: f32[64] in, m: f32[] inout, out: f32[64] out):
  for k in range(64):
    m max= dot[k]
  for k2 in range(64):
    out[k2] = dot[k2] - m
"#,
        "softmax_ish",
    )?;
    let mut sched2 = Schedule::new(bad.func().clone());
    match sched2.fuse("k", "k2") {
        Err(e) => println!("dot_max fusion correctly rejected: {e}"),
        Ok(_) => unreachable!("the dependence engine must reject this"),
    }
    Ok(())
}
