//! SoftRas differentiable rendering: render an image, then backpropagate a
//! target-matching loss gradient to the face positions and colors.
//!
//! ```sh
//! cargo run --example softras
//! ```

use freetensor::autodiff::GradOptions;
use freetensor::runtime::{Runtime, TensorVal};
use freetensor::workloads::{input_pairs, softras};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = softras::Params {
        h: 16,
        w: 16,
        n_faces: 8,
        channels: 3,
        ..softras::Params::default()
    };
    let inputs = softras::inputs(&params, 99);

    // Forward render.
    let rt = Runtime::new();
    let program = softras::program(&params);
    let fwd = program.run(&rt, &input_pairs(&inputs), &[])?;
    let img = fwd.output("img");
    println!(
        "rendered {}x{} image, mean intensity {:.4}",
        params.h,
        params.w,
        img.to_f64_vec().iter().sum::<f64>() / img.numel() as f64
    );

    // Backward: gradient of the mean intensity w.r.t. geometry and colors —
    // the "differentiable renderer" property SoftRas exists for.
    let grad = program.grad(&GradOptions {
        wrt: Some(vec!["faces".to_string(), "col".to_string()]),
        ..Default::default()
    })?;
    let seed = TensorVal::from_f32(
        &[params.pixels(), params.channels],
        vec![1.0 / params.pixels() as f32; params.pixels() * params.channels],
    );
    let mut pairs = input_pairs(&inputs);
    pairs.push(("img.grad", seed));
    let back = grad.run(&rt, &pairs, &[])?;
    let g_faces = back.output("faces.grad").to_f64_vec();
    let g_col = back.output("col.grad").to_f64_vec();
    println!(
        "|d faces| = {:.4}, |d col| = {:.4}",
        g_faces.iter().map(|v| v * v).sum::<f64>().sqrt(),
        g_col.iter().map(|v| v * v).sum::<f64>().sqrt()
    );
    Ok(())
}
