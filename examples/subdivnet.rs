//! SubdivNet mesh convolution: FreeTensor vs the operator-based baseline,
//! reproducing the paper's §2 motivation (Figs. 2–3) at example scale.
//!
//! ```sh
//! cargo run --example subdivnet
//! ```

use freetensor::autoschedule::Target;
use freetensor::opbase::Session;
use freetensor::runtime::Runtime;
use freetensor::workloads::{input_pairs, subdivnet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = subdivnet::Params {
        n_faces: 256,
        in_feats: 16,
    };
    let inputs = subdivnet::inputs(&params, 42);

    // FreeTensor: the fine-grained program, auto-scheduled for the GPU model.
    let program = subdivnet::program(&params).optimize(&Target::gpu());
    let rt = Runtime::new();
    let ft = program.run(&rt, &input_pairs(&inputs), &[])?;

    // Operator-based: index_select / reshape / cat / sub / abs / sum.
    let session = Session::gpu();
    let y = subdivnet::opbase(&session, &params, &inputs)?;
    let ob = session.counters();

    // Same numbers...
    assert!(ft.output("y").allclose(y.val(), 1e-4));
    println!("outputs agree (max diff {:.2e})", ft.output("y").max_abs_diff(y.val()));

    // ...very different execution (the paper's Fig. 17 analysis).
    println!("\n{:<22}{:>14}{:>14}", "", "FreeTensor", "operator-based");
    println!(
        "{:<22}{:>14}{:>14}",
        "kernel launches", ft.counters.kernel_launches, ob.kernel_launches
    );
    println!(
        "{:<22}{:>14}{:>14}",
        "DRAM bytes", ft.counters.dram_bytes, ob.dram_bytes
    );
    println!(
        "{:<22}{:>14.0}{:>14.0}",
        "modeled cycles", ft.counters.modeled_cycles, ob.modeled_cycles
    );
    Ok(())
}
