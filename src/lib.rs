//! # freetensor — umbrella crate
//!
//! Re-exports the whole FreeTensor-rs stack behind one dependency, and hosts
//! the runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`). See `freetensor_core` for the compile-pipeline API.

pub use freetensor_core as core;
pub use ft_autodiff as autodiff;
pub use ft_autoschedule as autoschedule;
pub use ft_codegen as codegen;
pub use ft_frontend as frontend;
pub use ft_ir as ir;
pub use ft_libop as libop;
pub use ft_opbase as opbase;
pub use ft_runtime as runtime;
pub use ft_schedule as schedule;
pub use ft_serve as serve;
pub use ft_trace as trace;
pub use ft_workloads as workloads;
