//! The emitted C must be accepted by the host C compiler for every
//! workload, CPU-scheduled (skipped gracefully when no `cc` is installed).

use freetensor::autoschedule::Target;
use freetensor::workloads::{gat, longformer, softras, subdivnet};
use std::io::Write as _;
use std::process::{Command, Stdio};

fn compiles(source: &str) -> Result<(), String> {
    let mut child = Command::new("cc")
        .args(["-fsyntax-only", "-fopenmp", "-xc", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|_| "no-cc".to_string())?;
    child
        .stdin
        .as_mut()
        .expect("piped")
        .write_all(source.as_bytes())
        .expect("write");
    let out = child.wait_with_output().expect("cc runs");
    if out.status.success() {
        Ok(())
    } else {
        Err(String::from_utf8_lossy(&out.stderr).to_string())
    }
}

#[test]
fn emitted_c_compiles_for_all_workloads() {
    let programs = vec![
        (
            "subdivnet",
            subdivnet::program(&subdivnet::Params {
                n_faces: 16,
                in_feats: 4,
            }),
        ),
        (
            "longformer",
            longformer::program(&longformer::Params {
                seq_len: 16,
                w: 2,
                feat_len: 4,
            }),
        ),
        ("softras", softras::program(&softras::Params::small())),
        ("gat", gat::program(&gat::Params::small())),
    ];
    for (name, prog) in programs {
        let c = prog.optimize(&Target::cpu()).emit_c();
        match compiles(&c) {
            Ok(()) => {}
            Err(e) if e == "no-cc" => {
                eprintln!("cc unavailable; skipping");
                return;
            }
            Err(e) => panic!("{name}: generated C rejected:\n{e}\n--- source ---\n{c}"),
        }
    }
}

#[test]
fn cuda_emission_covers_all_workloads() {
    // No nvcc in CI: assert structural properties instead.
    for (name, cu) in [
        (
            "subdivnet",
            subdivnet::program(&subdivnet::Params {
                n_faces: 16,
                in_feats: 4,
            })
            .optimize(&Target::gpu())
            .emit_cuda(),
        ),
        (
            "gat",
            gat::program(&gat::Params::small())
                .optimize(&Target::gpu())
                .emit_cuda(),
        ),
    ] {
        assert!(cu.contains("__global__"), "{name}: no kernel:\n{cu}");
        assert!(cu.contains("<<<"), "{name}: no launch:\n{cu}");
    }
}
