//! Native compiled engine integration tests.
//!
//! * `compiled_matches_interpreter_*` — pins [`CompiledEngine`] against the
//!   instrumented interpreter on all four paper workloads under sampled,
//!   legality-checked schedule traces, forward and gradient (the same
//!   differential discipline as the conformance sweep, focused on the
//!   newest backend).
//! * `warm_artifact_cache_spawns_no_compiler` — the compile-once/run-many
//!   contract: a second engine over the same artifact-cache directory must
//!   serve the kernel from disk with *zero* `cc` spawns, verified through
//!   the `compiled.cc.spawned` / `compiled.cache.{hit,miss}` metrics
//!   counters (structurally, through the METRICS.json snapshot format —
//!   the same counters `bench_check --expect-warm` gates on in CI).

use ft_conformance::grad::{build_grad_func, grad_run_inputs, ones_seed, GradSpec};
use ft_conformance::ops::{apply_trace, sample_trace};
use ft_conformance::{check_grad_variant, check_variant, Backend, GradTol, Workload};
use ft_metrics::{Metrics, MetricsSnapshot};
use ft_runtime::{cc_available, CompiledEngine, ExecutionEngine};
use proptest::test_runner::TestRng;
use std::collections::HashMap;

/// Forward tolerance — same contract as `Config::default().tol`.
const TOL: f64 = 5e-4;

fn variant_seed(w: Workload, k: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in w.name().as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[test]
fn compiled_matches_interpreter_on_all_workloads_under_sampled_traces() {
    if !cc_available() {
        eprintln!("skipping: no C compiler on PATH");
        return;
    }
    let backends = [Backend::Interp, Backend::Compiled];
    for w in Workload::ALL {
        for k in 0..4u64 {
            let seed = variant_seed(w, k);
            let case = w.build(seed & 0xFFFF);
            let mut rng = TestRng::from_seed_u64(seed);
            let raw = sample_trace(&mut rng, 5);
            let (func, trace) = apply_trace(&case.func, &raw);
            if let Some(d) = check_variant(&case, &func, &backends, TOL) {
                panic!(
                    "{} sample {k} under trace {trace:?}: {}",
                    w.name(),
                    d.message
                );
            }
        }
    }
}

#[test]
fn compiled_grad_matches_interpreter_under_sampled_traces() {
    if !cc_available() {
        eprintln!("skipping: no C compiler on PATH");
        return;
    }
    let backends = [Backend::Interp, Backend::Compiled];
    let tol = GradTol::default();
    let mut checked = 0usize;
    for w in Workload::ALL {
        for k in 0..2u64 {
            let seed = variant_seed(w, 0x6AD ^ k);
            let case = w.build(seed & 0xFFFF);
            let mut rng = TestRng::from_seed_u64(seed);
            let raw = sample_trace(&mut rng, 4);
            // Outside the differentiable fragment = structured skip, same
            // as the grad conformance sweep.
            let Ok((gfunc, trace)) = build_grad_func(&case.func, &raw, &GradSpec::default())
            else {
                continue;
            };
            let seed_grad = ones_seed(&case);
            let inputs = grad_run_inputs(&case, &seed_grad);
            let oracle_grads = w.oracle_grad(&case.inputs, &seed_grad);
            if let Some(d) = check_grad_variant(&gfunc, &inputs, &oracle_grads, &backends, &tol)
            {
                panic!(
                    "{} grad sample {k} under trace {trace:?}: {}",
                    w.name(),
                    d.message
                );
            }
            checked += 1;
        }
    }
    assert!(
        checked >= 4,
        "grad differential is vacuous: only {checked} variants were differentiable"
    );
}

#[test]
fn warm_artifact_cache_spawns_no_compiler() {
    if !cc_available() {
        eprintln!("skipping: no C compiler on PATH");
        return;
    }
    let dir = std::env::temp_dir().join(format!("ft-warm-cache-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let case = Workload::Subdivnet.build(3);
    // Both runs are judged through the METRICS.json snapshot format — the
    // same structural path `bench_check --expect-warm` gates on in CI —
    // so this test pins the counters *and* their export.
    let frozen = |m: &Metrics| {
        MetricsSnapshot::from_json(&m.snapshot().to_json()).expect("snapshot roundtrips")
    };

    // Cold start: fresh directory, fresh engine — must compile exactly here.
    let cold_metrics = Metrics::new();
    let mut cold = CompiledEngine::with_cache_dir(&dir);
    cold.set_metrics(Some(cold_metrics.clone()));
    cold.run(&case.func, &case.inputs, &HashMap::new())
        .expect("cold run");
    let snap = frozen(&cold_metrics);
    assert!(
        snap.counter("compiled.cc.spawned") >= 1,
        "cold run never invoked cc"
    );
    assert!(
        snap.counter("compiled.cache.miss") >= 1,
        "cold run recorded no cache miss"
    );
    assert_eq!(
        snap.counter("compiled.cache.publish"),
        snap.counter("compiled.cache.miss"),
        "every miss must publish an artifact"
    );
    assert!(
        snap.gauge("compiled.cache.size_bytes") > 0,
        "published artifact cache reports zero size"
    );

    // Warm start: a *new* engine (empty in-memory memo) over the same
    // directory — the on-disk artifact must satisfy it without cc.
    let warm_metrics = Metrics::new();
    let mut warm = CompiledEngine::with_cache_dir(&dir);
    warm.set_metrics(Some(warm_metrics.clone()));
    let r = warm
        .run(&case.func, &case.inputs, &HashMap::new())
        .expect("warm run");
    let snap = frozen(&warm_metrics);
    assert_eq!(
        snap.counter("compiled.cc.spawned"),
        0,
        "warm run spawned the compiler despite a populated artifact cache"
    );
    assert!(
        snap.counter("compiled.cache.hit") >= 1,
        "warm run recorded no cache lookup"
    );
    assert_eq!(
        snap.counter("compiled.cache.miss"),
        0,
        "warm run was not a pure cache hit"
    );
    assert_eq!(
        snap.histograms
            .get("engine.compiled.run_us")
            .map_or(0, |h| h.count),
        1,
        "warm run recorded no run-wall sample"
    );
    // The disk-served kernel still computes the right answer.
    let diff = r.output(&case.oracle_output).max_abs_diff(&case.oracle);
    assert!(diff < TOL, "warm kernel diverged from oracle by {diff}");
    let _ = std::fs::remove_dir_all(&dir);
}
