//! Cross-backend differential conformance driver (see `EXPERIMENTS.md`).
//!
//! * `conformance_sweep` — samples random legality-checked schedule traces
//!   for every workload and executes each variant on all available backends
//!   (interpreter, real threads, compiled C), comparing against the
//!   plain-Rust oracle. Budget: `FT_CONFORMANCE_SAMPLES` variants per
//!   workload (default 16 → 64 total ≥ the 50-variant CI floor).
//! * `injected_dependence_bug_is_caught_and_minimized` — proves the harness
//!   has teeth: a parallelization with the dependence check deliberately
//!   dropped must be detected, shrunk to the single culprit op, and
//!   round-trip through its JSON repro.

use ft_conformance::ops::apply_trace;
use ft_conformance::{
    check_variant, minimize, run_conformance, Backend, Case, Config, Repro, ScheduleOp,
};
use ft_runtime::TensorVal;
use std::collections::HashMap;

#[test]
fn conformance_sweep() {
    let samples = std::env::var("FT_CONFORMANCE_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let cfg = Config {
        samples_per_workload: samples,
        ..Config::default()
    };
    let summary = run_conformance(&cfg);
    eprintln!("{}", summary.render());
    assert_eq!(summary.variants.len(), 4 * samples);
    // The sweep is vacuous if sampling never gets past the legality checks.
    let accepted: usize = summary.variants.iter().map(|v| v.trace.len()).sum();
    assert!(
        accepted > summary.variants.len(),
        "too few accepted schedule ops ({accepted}) — sampler is broken"
    );
    summary.assert_clean();
}

/// A program whose single loop carries a recurrence: `y[i]` reads
/// `y[i - 1]`, so parallelizing the loop is illegal. With `x = 1…`,
/// `y[i] = i + 1` (a prefix count), and any worker starting mid-range reads
/// a stale 0 — divergence is large and immediate.
fn recurrence_case() -> Case {
    const N: usize = 2048;
    let func = freetensor_core::Program::compile(
        &format!(
            r#"
def rec(x: f32[{N}] in, y: f32[{N}] out):
  for i in range({N}):
    y[i] = x[i]
    if i > 0:
      y[i] = y[i - 1] + x[i]
"#
        ),
        "rec",
    )
    .unwrap()
    .func()
    .clone();
    let x = TensorVal::from_f32(&[N], vec![1.0; N]);
    let oracle = TensorVal::from_f32(&[N], (0..N).map(|i| (i + 1) as f32).collect());
    let inputs: HashMap<String, TensorVal> = [("x".to_string(), x)].into_iter().collect();
    Case::custom("recurrence", func, inputs, oracle, "y")
}

#[test]
fn legality_check_blocks_the_recurrence() {
    // Sanity: the *checked* parallelize refuses this loop, so only the
    // fault-injected variant below can break it.
    let case = recurrence_case();
    let (func, accepted) = apply_trace(&case.func, &[ScheduleOp::Parallelize { loop_idx: 0 }]);
    assert!(accepted.is_empty(), "dependence check failed to block");
    assert!(
        check_variant(&case, &func, &[Backend::Interp, Backend::Threaded], 1e-4).is_none()
    );
}

#[test]
fn injected_dependence_bug_is_caught_and_minimized() {
    let case = recurrence_case();
    let backends = [Backend::Threaded];
    let tol = 1e-3;
    // The injected bug — parallelize with its dependence check dropped —
    // buried between benign ops, as a buggy sampler run would produce it.
    let trace = vec![
        ScheduleOp::Vectorize { loop_idx: 0 },
        ScheduleOp::ParallelizeUnchecked { loop_idx: 0 },
        ScheduleOp::Vectorize { loop_idx: 0 },
    ];
    // Racy reads are not perfectly deterministic; a trace "fails" if either
    // of two runs diverges.
    let fails = |t: &[ScheduleOp]| {
        (0..2).any(|_| {
            let (f, _) = apply_trace(&case.func, t);
            check_variant(&case, &f, &backends, tol).is_some()
        })
    };
    assert!(fails(&trace), "injected dependence bug was not caught");
    let minimized = minimize(&trace, fails);
    assert_eq!(
        minimized,
        vec![ScheduleOp::ParallelizeUnchecked { loop_idx: 0 }],
        "shrinker did not isolate the injected op"
    );
    // Reconstruct the divergence and push it through the repro pipeline.
    let (f, _) = apply_trace(&case.func, &minimized);
    let d = (0..4)
        .find_map(|_| check_variant(&case, &f, &backends, tol))
        .expect("minimized trace no longer diverges");
    assert!(d.max_abs_err > 1.0, "divergence suspiciously small: {d:?}");
    let repro = Repro {
        workload: case.name.clone(),
        input_seed: 0,
        backend: d.backend.name().to_string(),
        output: d.output.clone(),
        max_abs_err: d.max_abs_err,
        tol,
        trace: minimized,
        decision_log: Vec::new(),
        grad: None,
        tol_rel: None,
        metrics: Some(ft_conformance::run_backend_telemetry(
            d.backend,
            &f,
            &case.inputs,
        )),
    };
    let dir = std::env::temp_dir().join(format!("ftconf-injected-{}", std::process::id()));
    let path = repro.write(&dir).unwrap();
    let parsed = Repro::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(parsed, repro);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_files_replay() {
    // A known-good (legal) trace on a real workload must replay cleanly end
    // to end through the JSON pipeline — the reproduction path CI failures
    // rely on.
    let repro = Repro {
        workload: "subdivnet".to_string(),
        input_seed: 5,
        backend: "threaded".to_string(),
        output: "y".to_string(),
        max_abs_err: 0.0,
        tol: 5e-4,
        trace: vec![
            ScheduleOp::Split {
                loop_idx: 0,
                factor: 4,
            },
            ScheduleOp::Parallelize { loop_idx: 0 },
        ],
        decision_log: Vec::new(),
        grad: None,
        tol_rel: None,
        metrics: None,
    };
    let parsed = Repro::from_json(&repro.to_json()).unwrap();
    assert_eq!(parsed.replay().unwrap().map(|d| d.message), None);
}
