//! Cross-crate AD integration: workload gradients against finite
//! differences, and policy equivalence (FT(-) ≡ FT(+) numerically).

use freetensor::autodiff::{GradOptions, TapePolicy};
use freetensor::runtime::{Runtime, Scalar, TensorVal};
use freetensor::workloads::{input_pairs, longformer, subdivnet};
use std::collections::HashMap;

fn loss_of(prog: &freetensor::core::Program, inputs: &HashMap<String, TensorVal>, out: &str) -> f64 {
    let rt = Runtime::new();
    let r = prog.run(&rt, &input_pairs(inputs), &[]).unwrap();
    r.output(out).to_f64_vec().iter().sum()
}

#[test]
fn longformer_gradient_matches_finite_differences() {
    let p = longformer::Params {
        seq_len: 8,
        w: 2,
        feat_len: 3,
    };
    let inputs = longformer::inputs(&p, 55);
    let prog = longformer::program(&p);
    let grad = prog.grad(&GradOptions::default()).unwrap();
    let seed = TensorVal::from_f32(
        &[p.seq_len, p.feat_len],
        vec![1.0; p.seq_len * p.feat_len],
    );
    let mut pairs = input_pairs(&inputs);
    pairs.push(("y.grad", seed));
    let rt = Runtime::new();
    let analytic = rt
        .run(
            &grad.func().clone(),
            &pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            &HashMap::new(),
        )
        .unwrap();
    let eps = 1e-3;
    for name in ["Q", "K", "V"] {
        let g = analytic.output(&format!("{name}.grad"));
        let base = inputs[name].clone();
        // Probe a handful of elements (full FD is quadratic).
        for i in [0usize, 3, 7, 11, base.numel() - 1] {
            let mut plus = inputs.clone();
            let mut t = base.clone();
            t.set_flat(i, Scalar::Float(base.get_flat(i).as_f64() + eps));
            plus.insert(name.to_string(), t);
            let mut minus = inputs.clone();
            let mut t = base.clone();
            t.set_flat(i, Scalar::Float(base.get_flat(i).as_f64() - eps));
            minus.insert(name.to_string(), t);
            let fd = (loss_of(&prog, &plus, "y") - loss_of(&prog, &minus, "y")) / (2.0 * eps);
            let an = g.get_flat(i).as_f64();
            assert!(
                (fd - an).abs() < 1e-2 * (1.0 + fd.abs()),
                "{name}[{i}]: analytic {an} vs fd {fd}"
            );
        }
    }
}

#[test]
fn tape_policies_agree_numerically() {
    let p = subdivnet::Params {
        n_faces: 32,
        in_feats: 4,
    };
    let inputs = subdivnet::inputs(&p, 77);
    let prog = subdivnet::program(&p);
    let seed = TensorVal::from_f32(
        &[p.n_faces, p.in_feats],
        vec![1.0; p.n_faces * p.in_feats],
    );
    let rt = Runtime::new();
    let mut results = Vec::new();
    for policy in [TapePolicy::All, TapePolicy::Selective] {
        let grad = prog
            .grad(&GradOptions {
                policy,
                ..Default::default()
            })
            .unwrap();
        let mut pairs = input_pairs(&inputs);
        pairs.push(("y.grad", seed.clone()));
        let r = grad.run(&rt, &pairs, &[]).unwrap();
        results.push(r.output("e.grad").clone());
    }
    assert!(
        results[0].allclose(&results[1], 1e-6),
        "FT(-) and FT(+) gradients must be numerically identical"
    );
}

#[test]
fn grad_of_optimized_program_matches_grad_of_naive() {
    // AD before scheduling vs after: both orders must agree (AD is an AST
    // transform; schedules preserve semantics).
    let p = subdivnet::Params {
        n_faces: 24,
        in_feats: 3,
    };
    let inputs = subdivnet::inputs(&p, 88);
    let prog = subdivnet::program(&p);
    let seed = TensorVal::from_f32(
        &[p.n_faces, p.in_feats],
        vec![1.0; p.n_faces * p.in_feats],
    );
    let rt = Runtime::new();
    let grad_then_opt = prog
        .grad(&GradOptions::default())
        .unwrap()
        .optimize(&freetensor::autoschedule::Target::cpu());
    let grad_plain = prog.grad(&GradOptions::default()).unwrap();
    let mut pairs = input_pairs(&inputs);
    pairs.push(("y.grad", seed));
    let a = grad_plain.run(&rt, &pairs, &[]).unwrap();
    let b = grad_then_opt.run(&rt, &pairs, &[]).unwrap();
    assert!(a.output("e.grad").allclose(b.output("e.grad"), 1e-5));
}
