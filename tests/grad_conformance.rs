//! Gradient differential conformance driver (see `EXPERIMENTS.md`).
//!
//! * `grad_conformance_sweep` — differentiates every sampled schedule trace
//!   under both tape policies (sweeping `recompute_threshold` across the
//!   def-cost boundary) and both grad/schedule composition orders, executes
//!   the backward pass on every available backend, and judges `.grad`
//!   outputs against the plain-Rust oracle gradients plus central finite
//!   differences. Budget: `FT_GRAD_SAMPLES` traces per workload (default 4
//!   → 4 workloads × 4 traces × {All, Selective} × {grad-then-opt,
//!   opt-then-grad} = 64 grad variants, the CI floor).
//! * `injected_ad_fault_is_caught_shrunk_and_replays` — proves the harness
//!   has teeth: an AD transform with the tape version bump deliberately
//!   dropped must be detected, shrunk to the empty trace (the bug is
//!   schedule-independent), and replay deterministically from its JSON
//!   repro.

use ft_autodiff::{AdFault, TapePolicy};
use ft_conformance::grad::{build_grad_func, grad_run_inputs, ones_seed};
use ft_conformance::{
    check_grad_variant, minimize, run_grad_conformance, Backend, GradConfig, GradOrder, GradSpec,
    GradTol, Repro, Workload,
};

#[test]
fn grad_conformance_sweep() {
    let samples = std::env::var("FT_GRAD_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let cfg = GradConfig {
        samples_per_workload: samples,
        ..GradConfig::default()
    };
    let summary = run_grad_conformance(&cfg);
    eprintln!("{}", summary.render());
    // 4 workloads × samples × {All, Selective} × {grad-then-opt,
    // opt-then-grad}.
    assert_eq!(summary.variants.len(), 4 * samples * 4);
    // The sweep is vacuous if scheduling pushes most variants outside the
    // differentiable fragment: the vast majority must actually execute.
    assert!(
        summary.n_ok() + summary.n_diverged() >= summary.variants.len() * 3 / 4,
        "too many skipped grad variants ({} of {})",
        summary.n_skipped(),
        summary.variants.len()
    );
    summary.assert_clean();
}

#[test]
fn injected_ad_fault_is_caught_shrunk_and_replays() {
    // SubdivNet's scalar temporary `d` lives under the (i, j) loop nest, so
    // under `TapePolicy::All` its tape carries version subscripts; dropping
    // the version bump makes every backward read hit slot (0, 0).
    let w = Workload::Subdivnet;
    let case = w.build(13);
    let seed = ones_seed(&case);
    let inputs = grad_run_inputs(&case, &seed);
    let oracle = w.oracle_grad(&case.inputs, &seed);
    let spec = GradSpec {
        policy: TapePolicy::All,
        recompute_threshold: 16,
        order: GradOrder::GradThenOpt,
        fault: Some(AdFault::DropTapeVersionBump),
    };
    let tol = GradTol::default();
    let backends = [Backend::Interp];
    // The fault buried under benign schedule ops, as a real AD regression
    // would surface mid-sweep.
    let trace = vec![
        ft_conformance::ScheduleOp::Split {
            loop_idx: 0,
            factor: 4,
        },
        ft_conformance::ScheduleOp::Unroll { loop_idx: 1 },
    ];
    let fails = |t: &[ft_conformance::ScheduleOp]| {
        build_grad_func(&case.func, t, &spec)
            .map(|(f, _)| check_grad_variant(&f, &inputs, &oracle, &backends, &tol).is_some())
            .unwrap_or(false)
    };
    assert!(fails(&trace), "injected AD fault was not caught");
    let minimized = minimize(&trace, fails);
    assert!(
        minimized.is_empty(),
        "the fault is schedule-independent, so the minimal repro is the empty trace: {minimized:?}"
    );
    // Reconstruct the divergence and push it through the repro pipeline.
    let (f, _) = build_grad_func(&case.func, &minimized, &spec).unwrap();
    let d = check_grad_variant(&f, &inputs, &oracle, &backends, &tol)
        .expect("minimized trace no longer diverges");
    assert_eq!(d.output, "e.grad", "the miscompiled gradient is e's");
    let repro = Repro {
        workload: case.name.clone(),
        input_seed: case.input_seed,
        backend: d.backend.name().to_string(),
        output: d.output.clone(),
        max_abs_err: d.max_abs_err,
        tol: tol.abs,
        trace: minimized,
        decision_log: Vec::new(),
        grad: Some(spec),
        tol_rel: Some(tol.rel),
        metrics: Some(ft_conformance::run_backend_telemetry(
            d.backend,
            &f,
            &inputs,
        )),
    };
    // JSON roundtrip, then replay from the parsed artifact alone: the
    // interpreter is deterministic, so the replay reproduces the exact
    // divergence.
    let dir = std::env::temp_dir().join(format!("ftconf-adfault-{}", std::process::id()));
    let path = repro.write(&dir).unwrap();
    let parsed = Repro::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(parsed, repro);
    let replayed = parsed
        .replay()
        .unwrap()
        .expect("replayed repro must still diverge");
    assert_eq!(replayed.output, d.output);
    assert_eq!(
        replayed.max_abs_err, d.max_abs_err,
        "interp replay must be bit-deterministic"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn committed_grad_repros_stay_fixed() {
    // Every gradient bug the sweep has ever found lives on as a shrunk JSON
    // repro under `tests/repros/grad/`; replaying them must stay clean.
    //
    // The current corpus is the double-`cache` bug: two `cache` schedule
    // ops on the same parameter produced two `VarDef`s both named
    // `Q.cache`, and autodiff's name-keyed tape bookkeeping merged them —
    // the tape was allocated with one def's version structure and indexed
    // with the other's (`IndexOutOfBounds` on `Q.cache.tape`). Fixed by
    // alpha-renaming duplicate defs before differentiation
    // (`ft_ir::mutate::uniquify_def_names`).
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/repros/grad");
    let mut n = 0;
    for entry in std::fs::read_dir(dir).expect("repro corpus dir") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        n += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let repro = Repro::from_json(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(repro.grad.is_some(), "{}: not a grad repro", path.display());
        let replayed = repro
            .replay()
            .unwrap_or_else(|e| panic!("{}: replay setup failed: {e}", path.display()));
        assert!(
            replayed.is_none(),
            "{}: regressed: {replayed:?}",
            path.display()
        );
    }
    assert!(n >= 2, "repro corpus went missing ({n} files)");
}

#[test]
fn sound_ad_passes_where_the_fault_fails() {
    // Control for the fault-injection test: the identical sweep point with
    // the fault removed is clean on every backend.
    let w = Workload::Subdivnet;
    let case = w.build(13);
    let seed = ones_seed(&case);
    let inputs = grad_run_inputs(&case, &seed);
    let oracle = w.oracle_grad(&case.inputs, &seed);
    let spec = GradSpec {
        policy: TapePolicy::All,
        recompute_threshold: 16,
        order: GradOrder::GradThenOpt,
        fault: None,
    };
    let (f, _) = build_grad_func(&case.func, &[], &spec).unwrap();
    let d = check_grad_variant(&f, &inputs, &oracle, &Backend::available(), &GradTol::default());
    assert!(d.is_none(), "{d:?}");
}
