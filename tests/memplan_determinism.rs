//! Plan-determinism sweep (nightly CI): the static memory plan must be a
//! pure function of the program. For every workload × sampled
//! legality-checked schedule trace, the variant is rebuilt twice from
//! scratch — fresh `Func`, fresh statement IDs — and both builds must
//! produce bit-identical [`ft_analysis::MemPlan`] hashes. Any leak of
//! global ID allocation, map iteration order, or address-based tie-breaks
//! into packing decisions shows up here long before it silently splits the
//! compiled-kernel artifact cache (the plan hash is part of its key).
//!
//! Budget: `FT_PLAN_SAMPLES` traces per workload (default 8 → 32 plans);
//! the nightly job raises it to 64 → 256.

use ft_conformance::ops::{apply_trace, sample_trace};
use ft_conformance::Workload;
use proptest::test_runner::TestRng;
use std::collections::HashMap;

#[test]
fn memplan_determinism_sweep() {
    let samples: usize = std::env::var("FT_PLAN_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let sizes: HashMap<String, i64> = HashMap::new();
    let mut planned = 0usize;
    let mut packed = 0usize;
    for w in Workload::ALL {
        for s in 0..samples {
            let trace = {
                let mut rng = TestRng::from_seed_u64(0x9E3D_0000 + s as u64);
                sample_trace(&mut rng, 6)
            };
            let build = || {
                let case = w.build(11);
                apply_trace(&case.func, &trace).0
            };
            let p1 = ft_analysis::MemPlan::plan(&build(), &sizes);
            let p2 = ft_analysis::MemPlan::plan(&build(), &sizes);
            assert_eq!(
                p1.plan_hash(),
                p2.plan_hash(),
                "{}[{s}]: same program produced different memory plans\ntrace: {trace:?}",
                w.name()
            );
            assert!(
                p1.planned_peak_bytes <= p1.naive_peak_bytes,
                "{}[{s}]: packing lost to stack discipline ({} > {})",
                w.name(),
                p1.planned_peak_bytes,
                p1.naive_peak_bytes
            );
            planned += 1;
            packed += p1.n_planned();
        }
    }
    eprintln!("memplan determinism: {planned} variants, {packed} packed defs, all hashes stable");
    assert!(packed > 0, "sweep is vacuous — no variant packed any def");
}
