//! Cross-crate integration: full pipeline per workload — parse, inline,
//! partially evaluate, auto-schedule (CPU and GPU), execute, and compare
//! against the plain-Rust oracle and the operator baseline.

use freetensor::autoschedule::Target;
use freetensor::opbase::Session;
use freetensor::runtime::Runtime;
use freetensor::workloads::{gat, input_pairs, longformer, softras, subdivnet};

#[test]
fn subdivnet_pipeline() {
    let p = subdivnet::Params {
        n_faces: 48,
        in_feats: 6,
    };
    let ins = subdivnet::inputs(&p, 1);
    let oracle = subdivnet::reference(&p, &ins);
    let rt = Runtime::new();
    let prog = subdivnet::program(&p);
    for target in [Target::cpu(), Target::gpu()] {
        let r = prog
            .optimize(&target)
            .run(&rt, &input_pairs(&ins), &[])
            .unwrap();
        assert!(r.output("y").allclose(&oracle, 1e-4));
    }
    let s = Session::cpu();
    let y = subdivnet::opbase(&s, &p, &ins).unwrap();
    assert!(y.val().allclose(&oracle, 1e-4));
}

#[test]
fn longformer_pipeline() {
    let p = longformer::Params {
        seq_len: 20,
        w: 3,
        feat_len: 6,
    };
    let ins = longformer::inputs(&p, 2);
    let oracle = longformer::reference(&p, &ins);
    let rt = Runtime::new();
    let prog = longformer::program(&p);
    for target in [Target::cpu(), Target::gpu()] {
        let r = prog
            .optimize(&target)
            .run(&rt, &input_pairs(&ins), &[])
            .unwrap();
        assert!(r.output("y").allclose(&oracle, 1e-3));
    }
}

#[test]
fn softras_pipeline() {
    let p = softras::Params::small();
    let ins = softras::inputs(&p, 3);
    let oracle = softras::reference(&p, &ins);
    let rt = Runtime::new();
    let r = softras::program(&p)
        .optimize(&Target::gpu())
        .run(&rt, &input_pairs(&ins), &[])
        .unwrap();
    assert!(r.output("img").allclose(&oracle, 1e-3));
}

#[test]
fn gat_pipeline() {
    let p = gat::Params::small();
    let ins = gat::inputs(&p, 4);
    let oracle = gat::reference(&p, &ins);
    let rt = Runtime::new();
    for target in [Target::cpu(), Target::gpu()] {
        let r = gat::program(&p)
            .optimize(&target)
            .run(&rt, &input_pairs(&ins), &[])
            .unwrap();
        assert!(r.output("y").allclose(&oracle, 1e-3));
    }
}

#[test]
fn headline_claims_hold_at_test_scale() {
    // The paper's central claims, checked end-to-end: fewer kernels, less
    // DRAM traffic, smaller footprint than the operator baseline.
    let p = subdivnet::Params {
        n_faces: 64,
        in_feats: 8,
    };
    let ins = subdivnet::inputs(&p, 5);
    let rt = Runtime::new();
    let ft = subdivnet::program(&p)
        .optimize(&Target::gpu())
        .run(&rt, &input_pairs(&ins), &[])
        .unwrap();
    let s = Session::gpu();
    let _ = subdivnet::opbase(&s, &p, &ins).unwrap();
    let ob = s.counters();
    assert!(ft.counters.kernel_launches < ob.kernel_launches);
    assert!(ft.counters.dram_bytes < ob.dram_bytes);
    assert!(ft.counters.modeled_cycles < ob.modeled_cycles);
    assert!(ft.counters.peak_bytes["gpu"] < ob.peak_bytes["gpu"]);
}
