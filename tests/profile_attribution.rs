//! FT_PROFILE differential attribution: the compiled engine's per-loop-nest
//! `clock_gettime` timings must tell the same story as the interpreter's
//! modeled per-statement profile.
//!
//! Both engines publish [`RunProfile`]s over the *same* `Func` (so loop
//! nests share [`ft_ir::StmtId`]s): the interpreter attributes modeled
//! cycles exclusively per statement, the profiled compiled build measures
//! wall nanoseconds per outermost nest. The test rolls the interpreter's
//! tree up to outermost nests and checks that (a) both engines see the same
//! set of nests, (b) they agree on which nest dominates, and (c) the
//! compiled per-nest times account for ≥95% of the entry-call wall time —
//! the coverage contract that makes the attribution trustworthy.

use ft_metrics::Metrics;
use ft_runtime::{cc_available, CompiledEngine, ExecutionEngine, Runtime};
use ft_trace::{RunProfile, TraceSink};
use ft_workloads::subdivnet;
use std::collections::HashMap;
use std::path::PathBuf;

fn tmp_cache(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ft-prof-attr-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Fold a profile's exclusive per-node times up into each node's
/// outermost-loop ancestor, returning `(stmt, desc, time)` per outermost
/// nest in source order. Works for both engines: the compiled profile is
/// already flat (every site is depth 1), the interpreter's tree collapses.
fn rollup(p: &RunProfile) -> Vec<(ft_ir::StmtId, String, f64)> {
    let mut out: Vec<(ft_ir::StmtId, String, f64)> = Vec::new();
    let mut top_of = vec![None::<usize>; p.nodes.len()];
    for (i, n) in p.nodes.iter().enumerate() {
        match n.parent {
            None => {}
            Some(0) => {
                let id = n.stmt.expect("non-root profile nodes carry stmt ids");
                top_of[i] = Some(out.len());
                out.push((id, n.desc.clone(), n.counters.cycles));
            }
            Some(par) => {
                let t = top_of[par].expect("profile nodes are preorder");
                top_of[i] = Some(t);
                out[t].2 += n.counters.cycles;
            }
        }
    }
    out
}

fn argmax(nests: &[(ft_ir::StmtId, String, f64)]) -> ft_ir::StmtId {
    nests
        .iter()
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .expect("at least one nest")
        .0
}

#[test]
fn compiled_profile_agrees_with_interpreter_attribution_on_subdivnet() {
    if !cc_available() {
        eprintln!("skipping: no C compiler on PATH");
        return;
    }
    // Full-size SubdivNet (1024 faces × 32 channels), not the conformance
    // test scale: per-nest wall times must sit far above the constant
    // out-of-loop overhead (allocations, timer pairs) for the ≥95%
    // coverage contract to be meaningful.
    let p = subdivnet::Params::default();
    let inputs = subdivnet::inputs(&p, 3);
    let func = subdivnet::program(&p).func().clone();
    let sizes: HashMap<String, i64> = HashMap::new();

    // Interpreter attribution (modeled cycles).
    let interp_sink = TraceSink::new();
    let mut interp = Runtime::new();
    interp.set_sink(Some(interp_sink.clone()));
    let ri = interp.run(&func, &inputs, &sizes).expect("interp runs");
    let interp_profiles = interp_sink.profiles();
    assert_eq!(interp_profiles.len(), 1, "{interp_profiles:?}");
    let interp_nests = rollup(&interp_profiles[0]);
    assert!(!interp_nests.is_empty(), "{:?}", interp_profiles[0]);

    // Compiled attribution (measured wall ns), summed over several warm
    // runs so per-nest times sit well above timer resolution.
    let sink = TraceSink::new();
    let metrics = Metrics::new();
    let mut eng = CompiledEngine::with_cache_dir(tmp_cache("subdivnet")).with_profiling(true);
    eng.set_sink(Some(sink.clone()));
    eng.set_metrics(Some(metrics.clone()));
    const RUNS: usize = 5;
    let mut rc = None;
    for _ in 0..RUNS {
        rc = Some(eng.run(&func, &inputs, &sizes).expect("compiled runs"));
    }
    let rc = rc.expect("ran");

    // Same numbers as the interpreter (the usual conformance tolerance).
    let d = rc.output("y").max_abs_diff(ri.output("y"));
    assert!(d < 5e-4, "profiled compiled run diverged: {d}");

    let profiles = sink.profiles();
    assert_eq!(profiles.len(), RUNS, "{profiles:?}");
    let mut compiled_nests = rollup(&profiles[0]);
    for p in &profiles[1..] {
        for (acc, cur) in compiled_nests.iter_mut().zip(rollup(p)) {
            assert_eq!(acc.0, cur.0, "site table is stable across runs");
            acc.2 += cur.2;
        }
    }

    // (a) Both engines attribute to the same outermost nests.
    let ids = |v: &[(ft_ir::StmtId, String, f64)]| {
        let mut ids: Vec<_> = v.iter().map(|(id, _, _)| *id).collect();
        ids.sort();
        ids
    };
    assert_eq!(
        ids(&interp_nests),
        ids(&compiled_nests),
        "interp {interp_nests:?} vs compiled {compiled_nests:?}"
    );

    // (b) They agree on the dominant nest — the per-statement ordering
    // check CI gates on.
    assert_eq!(
        argmax(&interp_nests),
        argmax(&compiled_nests),
        "interp {interp_nests:?} vs compiled {compiled_nests:?}"
    );

    // (c) Per-nest times cover ≥95% of the entry-call wall time.
    let s = metrics.snapshot();
    let site_ns = s.counter("compiled.prof.site_ns");
    let call_ns = s.counter("compiled.prof.call_ns");
    assert!(call_ns > 0, "{s:?}");
    assert!(
        site_ns as f64 >= 0.95 * call_ns as f64,
        "attribution covers only {site_ns} of {call_ns} ns"
    );
}
