//! Randomized cross-crate property: any sequence of schedule
//! transformations that the legality checks accept must preserve program
//! semantics under the interpreter.

use freetensor::ir::{find, ParallelScope, StmtId, StmtKind};
use freetensor::runtime::{Runtime, TensorVal};
use freetensor::schedule::Schedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A program with enough structure to make random scheduling interesting:
/// guards, reductions, a local tensor, and a recurrence (which must block
/// some transformations).
fn subject() -> freetensor::ir::Func {
    freetensor::core::Program::compile(
        r#"
def subject(x: f32[40] in, y: f32[40] out, acc: f32[] out):
  for i in range(40):
    t = create_var((), "f32", "cpu")
    for k in range(-2, 3):
      if i + k >= 0 and i + k < 40:
        t += x[i + k]
    y[i] = t * 0.2
  for j in range(40):
    acc += y[j] * y[j]
"#,
        "subject",
    )
    .unwrap()
    .func()
    .clone()
}

fn run(func: &freetensor::ir::Func) -> (Vec<f64>, Vec<f64>) {
    let x = TensorVal::from_f32(&[40], (0..40).map(|i| (i as f32 * 0.3).cos()).collect());
    let inputs: HashMap<String, TensorVal> = [("x".to_string(), x)].into_iter().collect();
    let r = Runtime::new().run(func, &inputs, &HashMap::new()).unwrap();
    (
        r.output("y").to_f64_vec(),
        r.output("acc").to_f64_vec(),
    )
}

fn loops_of(func: &freetensor::ir::Func) -> Vec<StmtId> {
    find::find_stmts(&func.body, &|s| matches!(s.kind, StmtKind::For { .. }))
        .iter()
        .map(|s| s.id)
        .collect()
}

#[test]
fn random_accepted_schedules_preserve_semantics() {
    let base = subject();
    let (y0, acc0) = run(&base);
    let mut rng = StdRng::seed_from_u64(20_220_613);
    let mut accepted_total = 0;
    for trial in 0..40 {
        let mut sched = Schedule::new(base.clone());
        for _ in 0..6 {
            let loops = loops_of(sched.func());
            if loops.is_empty() {
                break;
            }
            let target = loops[rng.gen_range(0..loops.len())];
            let accepted = match rng.gen_range(0..7) {
                0 => sched.split(target, [2, 3, 8][rng.gen_range(0..3usize)]).is_ok(),
                1 => sched.parallelize(target, ParallelScope::OpenMp).is_ok(),
                2 => sched.vectorize(target).is_ok(),
                3 => sched.unroll(target).is_ok(),
                4 => {
                    let other = loops[rng.gen_range(0..loops.len())];
                    sched.fuse(target, other).is_ok()
                }
                5 => sched
                    .cache(target, "x", freetensor::ir::MemType::CpuStack)
                    .is_ok(),
                _ => sched.separate_tail(target).is_ok(),
            };
            accepted_total += accepted as usize;
        }
        let (y1, acc1) = run(sched.func());
        for (a, b) in y0.iter().zip(&y1) {
            assert!(
                (a - b).abs() < 1e-4,
                "trial {trial}: y diverged\n{}",
                sched.func()
            );
        }
        assert!(
            (acc0[0] - acc1[0]).abs() < 1e-3 * (1.0 + acc0[0].abs()),
            "trial {trial}: acc diverged\n{}",
            sched.func()
        );
    }
    assert!(
        accepted_total > 30,
        "too few transformations accepted ({accepted_total}) — the property is vacuous"
    );
}

#[test]
fn threaded_execution_matches_sequential() {
    // Parallelize what the checker allows, then execute with real threads.
    let base = subject();
    let mut sched = Schedule::new(base.clone());
    let loops = loops_of(sched.func());
    for l in loops {
        let _ = sched.parallelize(l, ParallelScope::OpenMp);
    }
    let func = sched.into_func();
    let (y0, acc0) = run(&func);
    let x = TensorVal::from_f32(&[40], (0..40).map(|i| (i as f32 * 0.3).cos()).collect());
    let inputs: HashMap<String, TensorVal> = [("x".to_string(), x)].into_iter().collect();
    let out = freetensor::runtime::run_threaded(&func, &inputs, &HashMap::new(), 4).unwrap();
    for (a, b) in y0.iter().zip(out["y"].to_f64_vec()) {
        assert!((a - b).abs() < 1e-4);
    }
    assert!((acc0[0] - out["acc"].to_f64_vec()[0]).abs() < 1e-3);
}

#[test]
fn double_cache_of_the_same_tensor_preserves_semantics() {
    // Regression: `cache` always named its staging buffer `{var}.cache` and
    // its fill iterators `{var}.c{d}`. Applying it twice to the same tensor
    // with the second scope inside the first cache's region produced a
    // shadowing def whose copy statements resolved against the wrong
    // buffer, and fill iterators that captured the enclosing fill's — a
    // silent forward miscompile (found by the gradient conformance sweep on
    // longformer, repro
    // `tests/repros/grad/longformer-seed29958-interp-grad-*.json`).
    let base = freetensor::core::Program::compile(
        r#"
def dbl(x: f32[8] in, y: f32[8] out):
  for i in range(8):
    for k in range(8):
      y[i] += x[k] * x[k]
"#,
        "dbl",
    )
    .unwrap()
    .func()
    .clone();
    let run_dbl = |func: &freetensor::ir::Func| -> Vec<f64> {
        let x = TensorVal::from_f32(&[8], (0..8).map(|i| (i as f32 * 0.7).sin()).collect());
        let inputs: HashMap<String, TensorVal> = [("x".to_string(), x)].into_iter().collect();
        Runtime::new()
            .run(func, &inputs, &HashMap::new())
            .unwrap()
            .output("y")
            .to_f64_vec()
    };
    let y0 = run_dbl(&base);
    let mut sched = Schedule::new(base);
    let loops = loops_of(sched.func());
    let first = sched
        .cache(loops[1], "x", freetensor::ir::MemType::CpuStack)
        .expect("first cache applies");
    // Second cache of `x`: the only remaining reads of `x` are the first
    // cache's own fill loop, so its scope sits inside the first def.
    let loops = loops_of(sched.func());
    let mut second = None;
    for l in loops {
        if let Ok(name) = sched.cache(l, "x", freetensor::ir::MemType::CpuStack) {
            second = Some(name);
            break;
        }
    }
    let second = second.expect("second cache applies somewhere");
    assert_ne!(
        first, second,
        "re-caching the same tensor must pick a fresh buffer name"
    );
    // All defs and loop iterators in the scheduled program are distinct.
    let mut names: Vec<String> = Vec::new();
    sched.func().body.walk(&mut |s| match &s.kind {
        StmtKind::VarDef { name, .. } => names.push(name.clone()),
        StmtKind::For { iter, .. } => names.push(iter.clone()),
        _ => {}
    });
    let mut deduped = names.clone();
    deduped.sort();
    deduped.dedup();
    assert_eq!(deduped.len(), names.len(), "colliding binders: {names:?}");
    let y1 = run_dbl(sched.func());
    for (a, b) in y0.iter().zip(&y1) {
        assert!((a - b).abs() < 1e-4, "y diverged\n{}", sched.func());
    }
}
