//! Concurrency smoke tests for the serving path (see `EXPERIMENTS.md`,
//! "Serving"): a shared [`CompiledEngine`] must be safe to hammer from
//! multiple threads, and a recycled [`RunContext`] must refuse — with a
//! structured error, not a corrupt run — to be reused across programs.
//!
//! * `four_thread_replay_is_bit_identical_to_sequential` — sampled
//!   schedule variants of two conformance workloads are executed once
//!   sequentially (the reference bits), then replayed by 4 threads at once
//!   through the *same* engine instance. Every concurrent result must be
//!   bit-identical to the sequential one: the kernel memo, artifact cache,
//!   and singleflight are shared mutable state, and this is the test that
//!   they never bleed between concurrent runs.
//! * `subdivnet_context_is_rejected_on_longformer` — the regression the
//!   serving front door exposed: a context warmed on one program being
//!   handed a different program. Must fail with
//!   [`RuntimeError::ContextMismatch`] *before* touching the arena, and
//!   [`RunContext::reset`] must make the context reusable.
//! * `server_keys_contexts_per_program` — the same two workloads served
//!   concurrently through one `ft-serve` server: per-key context pools
//!   mean no mismatch ever escapes to a client.

use ft_conformance::ops::{apply_trace, sample_trace};
use ft_conformance::Workload;
use ft_metrics::Metrics;
use freetensor::runtime::{
    cc_available, CompiledEngine, ExecutionEngine, RunContext, Runtime, RuntimeError, Scalar,
    TensorVal,
};
use freetensor::serve::{Request, ServeConfig, Server};
use freetensor::workloads::{longformer, subdivnet};
use proptest::test_runner::TestRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Exact bit pattern of a run's outputs: sorted names, shapes, and every
/// element's raw bits. Two runs are "bit-identical" iff these are equal.
fn output_bits(outputs: &HashMap<String, TensorVal>) -> Vec<(String, Vec<usize>, Vec<u64>)> {
    let mut names: Vec<&String> = outputs.keys().collect();
    names.sort();
    names
        .into_iter()
        .map(|name| {
            let t = &outputs[name];
            let bits = (0..t.numel())
                .map(|i| match t.get_flat(i) {
                    Scalar::Float(f) => f.to_bits(),
                    Scalar::Int(v) => v as u64,
                    Scalar::Bool(b) => b as u64,
                })
                .collect();
            (name.clone(), t.shape().to_vec(), bits)
        })
        .collect()
}

fn fresh_cache(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ft-serve-smoke-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn four_thread_replay_is_bit_identical_to_sequential() {
    if !cc_available() {
        eprintln!("skipping: no C compiler");
        return;
    }
    // Sampled schedule variants of two workloads (seeded — deterministic).
    let mut variants = Vec::new();
    for (w, seed) in [(Workload::Subdivnet, 11u64), (Workload::Gat, 12u64)] {
        let case = w.build(seed);
        let mut rng = TestRng::from_seed_u64(seed);
        for _ in 0..3 {
            let raw = sample_trace(&mut rng, 5);
            let (func, _accepted) = apply_trace(&case.func, &raw);
            variants.push((func, case.inputs.clone()));
        }
    }

    let cache = fresh_cache("replay");
    let engine = Arc::new(CompiledEngine::with_cache_dir(&cache));
    let none: HashMap<String, i64> = HashMap::new();

    // Sequential reference pass (pays every compile through the cache).
    let reference: Vec<_> = variants
        .iter()
        .map(|(func, inputs)| {
            let r = engine.run(func, inputs, &none).expect("sequential run");
            output_bits(&r.outputs)
        })
        .collect();

    // 4 threads replay the full variant list through the same engine.
    std::thread::scope(|s| {
        for t in 0..4 {
            let engine = Arc::clone(&engine);
            let variants = &variants;
            let reference = &reference;
            let none = &none;
            s.spawn(move || {
                for (i, (func, inputs)) in variants.iter().enumerate() {
                    let r = engine
                        .run(func, inputs, none)
                        .unwrap_or_else(|e| panic!("thread {t} variant {i}: {e}"));
                    assert_eq!(
                        output_bits(&r.outputs),
                        reference[i],
                        "thread {t} variant {i} diverged from the sequential bits"
                    );
                }
            });
        }
    });
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn subdivnet_context_is_rejected_on_longformer() {
    let sub_p = subdivnet::Params {
        n_faces: 64,
        in_feats: 8,
    };
    let lf_p = longformer::Params {
        seq_len: 48,
        w: 4,
        feat_len: 8,
    };
    let sub = subdivnet::program(&sub_p);
    let lf = longformer::program(&lf_p);
    let sub_in = subdivnet::inputs(&sub_p, 7);
    let lf_in = longformer::inputs(&lf_p, 7);
    let none: HashMap<String, i64> = HashMap::new();

    let engine = Runtime::new();
    let mut ctx = RunContext::new();
    let warm = engine
        .run_with(sub.func(), &sub_in, &none, &mut ctx)
        .expect("subdivnet run");
    ctx.recycle(warm).expect("recycle subdivnet outputs");
    assert_eq!(ctx.bound_func(), Some("subdivnet"));

    // A SubdivNet-warmed context handed the Longformer program: structured
    // refusal, and the context is *not* poisoned (nothing ran).
    let err = engine
        .run_with(lf.func(), &lf_in, &none, &mut ctx)
        .expect_err("a foreign program must be rejected");
    match err {
        RuntimeError::ContextMismatch {
            bound_func,
            requested_func,
            ..
        } => {
            assert_eq!(bound_func, "subdivnet");
            assert_eq!(requested_func, "longformer");
        }
        other => panic!("expected ContextMismatch, got {other}"),
    }
    assert!(!ctx.is_poisoned());

    // reset() repurposes the same context for the new program.
    ctx.reset();
    engine
        .run_with(lf.func(), &lf_in, &none, &mut ctx)
        .expect("longformer runs in the reset context");
    assert_eq!(ctx.bound_func(), Some("longformer"));
}

#[test]
fn server_keys_contexts_per_program() {
    if !cc_available() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let sub_p = subdivnet::Params {
        n_faces: 64,
        in_feats: 8,
    };
    let lf_p = longformer::Params {
        seq_len: 48,
        w: 4,
        feat_len: 8,
    };
    let sub = Arc::new(subdivnet::program(&sub_p).func().clone());
    let lf = Arc::new(longformer::program(&lf_p).func().clone());
    let sub_in = subdivnet::inputs(&sub_p, 7);
    let lf_in = longformer::inputs(&lf_p, 7);
    let none: HashMap<String, i64> = HashMap::new();

    let cache = fresh_cache("server-keys");
    let metrics = Metrics::new();
    let server = Server::new(
        ServeConfig {
            workers: 2,
            cache_dir: Some(cache.clone()),
            ..ServeConfig::default()
        },
        metrics.clone(),
    );

    // Interleave the two programs from two clients, twice around: every
    // request must succeed — contexts are pooled per program key, so a
    // SubdivNet context can never be handed the Longformer job.
    for round in 0..2 {
        let mut replies = Vec::new();
        for _ in 0..2 {
            replies.push(
                server
                    .submit("a", Request::new(sub.clone(), sub_in.clone(), none.clone()).digest())
                    .expect("submit subdivnet"),
            );
            replies.push(
                server
                    .submit("b", Request::new(lf.clone(), lf_in.clone(), none.clone()).digest())
                    .expect("submit longformer"),
            );
        }
        for (i, rx) in replies.into_iter().enumerate() {
            let resp = rx.recv().expect("reply").unwrap_or_else(|e| {
                panic!("round {round} request {i} failed: {e}");
            });
            assert!(resp.digest().is_some());
        }
    }
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("serve.ok"), 8);
    assert_eq!(snap.counter("serve.errors"), 0);
    assert_eq!(snap.counter("compiled.cache.publish"), 2, "{snap:?}");
    drop(server);
    let _ = std::fs::remove_dir_all(&cache);
}
