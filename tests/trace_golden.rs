//! Golden tests for the observability layer: the schedule decision log a
//! traced `auto_schedule` produces on SubdivNet, the per-statement runtime
//! profile, and the exported Chrome trace-event JSON.

use freetensor::autoschedule::Target;
use freetensor::core::Program;
use freetensor::runtime::Runtime;
use freetensor::trace::{
    chrome_trace, validate_chrome_trace, DepKind, TraceSink, Verdict,
};
use freetensor::workloads::{input_pairs, subdivnet};

/// Compile + auto-schedule SubdivNet (small) with a sink installed.
fn traced_subdivnet(p: &subdivnet::Params) -> (Program, TraceSink) {
    let sink = TraceSink::new();
    let prog = Program::compile_traced(&subdivnet::source(p), "subdivnet", sink.clone())
        .expect("subdivnet compiles")
        .optimize(&Target::gpu());
    (prog, sink)
}

#[test]
fn subdivnet_decision_log_covers_all_six_passes() {
    let (_, sink) = traced_subdivnet(&subdivnet::Params::small());
    let decisions = sink.decisions();
    // Every pass of the paper's auto-scheduler must leave at least one
    // entry in the decision log on this workload.
    for pass in [
        "auto_fuse",
        "auto_use_lib",
        "auto_parallelize",
        "auto_vectorize",
        "auto_mem_type",
        "auto_unroll",
    ] {
        assert!(
            decisions.iter().any(|d| d.pass.as_deref() == Some(pass)),
            "no decision logged for {pass}; got passes {:?}",
            decisions.iter().map(|d| d.pass.clone()).collect::<Vec<_>>()
        );
    }
    // The reused scalar `d` carries a WAR/WAW dependence across the channel
    // loop, so vectorizing it must be *rejected* — and the rejection must
    // carry the structured dependences, not just a message (§4.3: rejections
    // explain themselves).
    let rejection = decisions
        .iter()
        .find(|d| {
            d.primitive == "vectorize"
                && d.verdict == Verdict::Rejected
                && !d.deps.is_empty()
        })
        .expect("a vectorize rejection with structured deps");
    assert!(
        rejection
            .deps
            .iter()
            .any(|dep| dep.var == "d" && matches!(dep.kind, DepKind::Waw | DepKind::War)),
        "expected a WAW/WAR dependence on the reused scalar `d`, got {:?}",
        rejection.deps
    );
    assert!(rejection.reason.is_some(), "rejection must carry a reason");
}

#[test]
fn per_statement_profile_sums_to_run_aggregates() {
    let p = subdivnet::Params::small();
    let (prog, sink) = traced_subdivnet(&p);
    let r = prog
        .run(&Runtime::new(), &input_pairs(&subdivnet::inputs(&p, 11)), &[])
        .expect("traced run");
    let profiles = sink.profiles();
    assert_eq!(profiles.len(), 1, "exactly one profiled run");
    // Per-node counters are exclusive, so their sum must equal the run's
    // whole-run aggregates exactly (Fig. 17 per-loop breakdown property).
    let totals = profiles[0].totals();
    assert_eq!(totals.flops, r.counters.flops);
    assert_eq!(totals.dram_bytes, r.counters.dram_bytes);
    assert_eq!(totals.l2_bytes, r.counters.l2_bytes);
    assert!(
        profiles[0].nodes.len() > 1,
        "profile must break the run down below the root"
    );
}

#[test]
fn chrome_trace_export_is_valid_and_covers_compile_and_runtime() {
    let p = subdivnet::Params::small();
    let (prog, sink) = traced_subdivnet(&p);
    prog.run(&Runtime::new(), &input_pairs(&subdivnet::inputs(&p, 11)), &[])
        .expect("traced run");
    let json = chrome_trace(&sink);
    let stats = validate_chrome_trace(&json).expect("exported trace validates");
    assert!(stats.events > 0, "trace must contain events");
    assert!(
        stats.tracks >= 3,
        "expected compile + runtime + profile tracks, got {}",
        stats.tracks
    );
    // Spot-check the provenance chain end to end: frontend, a pass, an
    // auto-schedule pass, and the runtime execution span.
    let events = sink.events();
    for (cat, name) in [
        ("frontend", "compile"),
        ("pass", "simplify"),
        ("autoschedule", "auto_fuse"),
        ("runtime", "interp subdivnet"),
    ] {
        assert!(
            events.iter().any(|e| e.cat == cat && e.name == name),
            "missing span {cat}/{name}; got {:?}",
            events
                .iter()
                .map(|e| format!("{}/{}", e.cat, e.name))
                .collect::<Vec<_>>()
        );
    }
}
