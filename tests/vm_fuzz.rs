//! Differential fuzz of the bytecode VM against the instrumented
//! interpreter.
//!
//! The interpreter is the semantic specification; the VM's two modes make
//! two distinct promises that this test checks on randomly *scheduled*
//! variants of all four paper workloads (the same variant generator the
//! cross-backend conformance sweep uses):
//!
//! * **fast mode** — bit-identical outputs, counters left defaulted;
//! * **instrumented mode** — bit-identical outputs *and* bit-identical
//!   [`PerfCounters`] (including the `f64` `modeled_cycles`), plus an
//!   identical per-statement profile when a trace sink is attached.

use ft_conformance::{ops, Workload};
use ft_runtime::{PerfCounters, Runtime, VmRuntime};
use proptest::test_runner::TestRng;
use std::collections::HashMap;

/// FNV-1a, mirroring the conformance sweep's per-variant seed derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[test]
fn vm_matches_interp_on_random_scheduled_workloads() {
    let sizes = HashMap::new();
    let mut variants = 0usize;
    for w in Workload::ALL {
        for k in 0..10u64 {
            let stream = fnv1a(w.name().as_bytes())
                ^ 0xF0DD_u64
                ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let case = w.build(stream & 0xFFFF);
            let mut rng = TestRng::from_seed_u64(stream);
            let raw = ops::sample_trace(&mut rng, 6);
            let (func, trace) = ops::apply_trace(&case.func, &raw);
            let ctx = format!("workload {} variant {k} trace {trace:?}", w.name());

            let ri = Runtime::new()
                .run(&func, &case.inputs, &sizes)
                .unwrap_or_else(|e| panic!("interp failed on {ctx}: {e:?}"));
            let rf = VmRuntime::new()
                .run(&func, &case.inputs, &sizes)
                .unwrap_or_else(|e| panic!("fast vm failed on {ctx}: {e:?}"));
            let rv = VmRuntime::instrumented()
                .run(&func, &case.inputs, &sizes)
                .unwrap_or_else(|e| panic!("instrumented vm failed on {ctx}: {e:?}"));

            assert_eq!(ri.outputs, rf.outputs, "fast-mode outputs differ on {ctx}");
            assert_eq!(
                ri.outputs, rv.outputs,
                "instrumented outputs differ on {ctx}"
            );
            assert_eq!(
                ri.counters, rv.counters,
                "instrumented counters differ on {ctx}"
            );
            assert_eq!(
                rf.counters,
                PerfCounters::default(),
                "fast mode must not count on {ctx}"
            );
            variants += 1;
        }
    }
    assert_eq!(variants, 4 * 10);
}

#[test]
fn vm_profile_matches_interp_on_unscheduled_workloads() {
    let sizes = HashMap::new();
    for w in Workload::ALL {
        let case = w.build(7);

        let si = ft_trace::TraceSink::new();
        let mut rt = Runtime::new();
        rt.set_sink(Some(si.clone()));
        rt.run(&case.func, &case.inputs, &sizes)
            .unwrap_or_else(|e| panic!("interp failed on {}: {e:?}", w.name()));

        let sv = ft_trace::TraceSink::new();
        let mut vm = VmRuntime::instrumented();
        vm.set_sink(Some(sv.clone()));
        vm.run(&case.func, &case.inputs, &sizes)
            .unwrap_or_else(|e| panic!("vm failed on {}: {e:?}", w.name()));

        let pi = si.profiles();
        let pv = sv.profiles();
        assert_eq!(pi.len(), 1, "workload {}", w.name());
        assert_eq!(pv.len(), 1, "workload {}", w.name());
        assert_eq!(pi[0].nodes.len(), pv[0].nodes.len(), "workload {}", w.name());
        for (a, b) in pi[0].nodes.iter().zip(&pv[0].nodes) {
            assert_eq!(a.desc, b.desc, "workload {}", w.name());
            assert_eq!(
                a.counters, b.counters,
                "workload {} profile bucket `{}`",
                w.name(),
                a.desc
            );
        }
    }
}
