//! Differential fuzz of the bytecode VM against the instrumented
//! interpreter.
//!
//! The interpreter is the semantic specification; the VM's two modes make
//! two distinct promises that this test checks on randomly *scheduled*
//! variants of all four paper workloads (the same variant generator the
//! cross-backend conformance sweep uses):
//!
//! * **fast mode** — bit-identical outputs, counters left defaulted;
//! * **instrumented mode** — bit-identical outputs *and* bit-identical
//!   [`PerfCounters`] (including the `f64` `modeled_cycles`), plus an
//!   identical per-statement profile when a trace sink is attached.

use ft_conformance::{ops, Workload};
use ft_ir::prelude::*;
use ft_runtime::{PerfCounters, Runtime, TensorVal, VmRuntime};
use proptest::test_runner::TestRng;
use std::collections::HashMap;

/// FNV-1a, mirroring the conformance sweep's per-variant seed derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[test]
fn vm_matches_interp_on_random_scheduled_workloads() {
    let sizes = HashMap::new();
    let mut variants = 0usize;
    for w in Workload::ALL {
        for k in 0..10u64 {
            let stream = fnv1a(w.name().as_bytes())
                ^ 0xF0DD_u64
                ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let case = w.build(stream & 0xFFFF);
            let mut rng = TestRng::from_seed_u64(stream);
            let raw = ops::sample_trace(&mut rng, 6);
            let (func, trace) = ops::apply_trace(&case.func, &raw);
            let ctx = format!("workload {} variant {k} trace {trace:?}", w.name());

            let ri = Runtime::new()
                .run(&func, &case.inputs, &sizes)
                .unwrap_or_else(|e| panic!("interp failed on {ctx}: {e:?}"));
            let rf = VmRuntime::new()
                .run(&func, &case.inputs, &sizes)
                .unwrap_or_else(|e| panic!("fast vm failed on {ctx}: {e:?}"));
            let rv = VmRuntime::instrumented()
                .run(&func, &case.inputs, &sizes)
                .unwrap_or_else(|e| panic!("instrumented vm failed on {ctx}: {e:?}"));

            assert_eq!(ri.outputs, rf.outputs, "fast-mode outputs differ on {ctx}");
            assert_eq!(
                ri.outputs, rv.outputs,
                "instrumented outputs differ on {ctx}"
            );
            assert_eq!(
                ri.counters, rv.counters,
                "instrumented counters differ on {ctx}"
            );
            assert_eq!(
                rf.counters,
                PerfCounters::default(),
                "fast mode must not count on {ctx}"
            );
            variants += 1;
        }
    }
    assert_eq!(variants, 4 * 10);
}

#[test]
fn vm_profile_matches_interp_on_unscheduled_workloads() {
    let sizes = HashMap::new();
    for w in Workload::ALL {
        let case = w.build(7);

        let si = ft_trace::TraceSink::new();
        let mut rt = Runtime::new();
        rt.set_sink(Some(si.clone()));
        rt.run(&case.func, &case.inputs, &sizes)
            .unwrap_or_else(|e| panic!("interp failed on {}: {e:?}", w.name()));

        let sv = ft_trace::TraceSink::new();
        let mut vm = VmRuntime::instrumented();
        vm.set_sink(Some(sv.clone()));
        vm.run(&case.func, &case.inputs, &sizes)
            .unwrap_or_else(|e| panic!("vm failed on {}: {e:?}", w.name()));

        let pi = si.profiles();
        let pv = sv.profiles();
        assert_eq!(pi.len(), 1, "workload {}", w.name());
        assert_eq!(pv.len(), 1, "workload {}", w.name());
        assert_eq!(pi[0].nodes.len(), pv[0].nodes.len(), "workload {}", w.name());
        for (a, b) in pi[0].nodes.iter().zip(&pv[0].nodes) {
            assert_eq!(a.desc, b.desc, "workload {}", w.name());
            assert_eq!(
                a.counters, b.counters,
                "workload {} profile bucket `{}`",
                w.name(),
                a.desc
            );
        }
    }
}

/// Run interpreter vs fast VM (with a trace sink) and return the fast
/// VM's `vm.lower` decision spans as `(kind, accepted, detail)`. Outputs
/// must be bit-identical and every span well-formed.
fn diff_with_decisions(
    func: &ft_ir::Func,
    inputs: &HashMap<String, TensorVal>,
    ctx: &str,
) -> Vec<(String, bool, String)> {
    let sizes = HashMap::new();
    let ri = Runtime::new()
        .run(func, inputs, &sizes)
        .unwrap_or_else(|e| panic!("interp failed on {ctx}: {e:?}"));
    let sink = ft_trace::TraceSink::new();
    let mut vm = VmRuntime::new();
    vm.set_sink(Some(sink.clone()));
    let rf = vm
        .run(func, inputs, &sizes)
        .unwrap_or_else(|e| panic!("fast vm failed on {ctx}: {e:?}"));
    assert_eq!(ri.outputs, rf.outputs, "fast-mode outputs differ on {ctx}");
    sink.events()
        .iter()
        .filter(|e| e.cat == "vm.lower")
        .map(|e| {
            let accepted = e
                .args
                .iter()
                .any(|(k, v)| k == "accepted" && v == "true");
            let detail_key = if accepted { "how" } else { "reason" };
            let detail = e
                .args
                .iter()
                .find(|(k, _)| k == detail_key)
                .unwrap_or_else(|| panic!("span {} missing `{detail_key}` on {ctx}", e.name))
                .1
                .clone();
            assert!(
                e.args.iter().any(|(k, _)| k == "target"),
                "span {} missing `target` on {ctx}",
                e.name
            );
            (e.name.clone(), accepted, detail)
        })
        .collect()
}

/// Directed schedules: parallelize then vectorize *every* loop of every
/// workload (the legality checker keeps what is sound), and diff the fast
/// VM bit-exactly against the interpreter on the result. This saturates
/// the vectorize/parallel lowering paths far beyond what the uniform
/// random traces above reach.
#[test]
fn vm_matches_interp_on_directed_vectorize_parallel_schedules() {
    let mut spans = 0usize;
    for w in Workload::ALL {
        let case = w.build(11);
        let nloops = ops::loops_of(&case.func).len();
        let mut raw = Vec::new();
        for i in 0..nloops {
            raw.push(ops::ScheduleOp::Parallelize { loop_idx: i });
        }
        for i in 0..nloops {
            raw.push(ops::ScheduleOp::Vectorize { loop_idx: i });
        }
        let (func, trace) = ops::apply_trace(&case.func, &raw);
        let ctx = format!("workload {} directed trace {trace:?}", w.name());
        spans += diff_with_decisions(&func, &case.inputs, &ctx).len();
    }
    assert!(spans > 0, "directed schedules produced no lowering attempts");
}

/// A `vectorize`-marked dot product and a parallel integer histogram:
/// the corpus must demonstrably engage both the fused SIMD kernels and
/// the privatized parallel reduction, bit-exactly.
#[test]
fn vm_engages_simd_and_privatized_reductions_bit_exactly() {
    let vec = ForProperty {
        vectorize: true,
        ..ForProperty::serial()
    };
    let dot = Func::new("dot")
        .param("x", [257], DataType::F32, AccessType::Input)
        .param("w", [257], DataType::F32, AccessType::Input)
        .param("d", [1], DataType::F32, AccessType::Output)
        .body(for_with(
            "i",
            0,
            257,
            vec,
            reduce(
                "d",
                [0],
                ReduceOp::Add,
                load("x", [var("i")]) * load("w", [var("i")]),
            ),
        ));
    let x = TensorVal::from_f32(&[257], (0..257).map(|v| (v as f32).sin()).collect());
    let w = TensorVal::from_f32(&[257], (0..257).map(|v| 1.0 / (v as f32 + 0.7)).collect());
    let inputs: HashMap<String, TensorVal> = [("x".to_string(), x), ("w".to_string(), w)]
        .into_iter()
        .collect();
    let ds = diff_with_decisions(&dot, &inputs, "vectorized dot");
    assert!(
        ds.iter()
            .any(|(k, acc, how)| k == "vm.simd" && *acc && how == "dot"),
        "dot kernel did not engage: {ds:?}"
    );

    let hist = Func::new("hist")
        .param("x", [1024], DataType::I32, AccessType::Input)
        .param("h", [16], DataType::I64, AccessType::Output)
        .body(for_with(
            "i",
            0,
            1024,
            ForProperty::parallel(ParallelScope::OpenMp),
            Stmt::new(StmtKind::ReduceTo {
                var: "h".to_string(),
                indices: vec![Expr::cast(DataType::I64, load("x", [var("i")]).rem(16))],
                op: ReduceOp::Add,
                value: Expr::IntConst(1),
                atomic: true,
            }),
        ));
    let x = TensorVal::from_i32(&[1024], (0..1024).map(|v| (v * 31 + 7) % 113).collect());
    let inputs: HashMap<String, TensorVal> = [("x".to_string(), x)].into_iter().collect();
    let ds = diff_with_decisions(&hist, &inputs, "parallel histogram");
    assert!(
        ds.iter()
            .any(|(k, acc, how)| k == "vm.reduce.privatize" && *acc && how == "Add"),
        "histogram reduction was not privatized: {ds:?}"
    );
    assert!(
        ds.iter()
            .any(|(k, acc, _)| k == "vm.parallel" && *acc),
        "histogram region was not parallelized: {ds:?}"
    );
}

/// Directed grad-program schedules: differentiate every workload under both
/// tape policies, aggressively schedule the resulting *gradient* function,
/// and diff the fast VM bit-exactly against the interpreter. In fast mode
/// every backward-pass program must either lower onto the VM or emit a
/// structured `vm.fallback` span naming the reason — never silently drop to
/// the interpreter.
#[test]
fn vm_matches_interp_on_directed_grad_program_schedules() {
    use ft_autodiff::TapePolicy;
    use ft_conformance::grad::{build_grad_func, grad_run_inputs, ones_seed};
    use ft_conformance::{GradOrder, GradSpec};

    let sizes = HashMap::new();
    let mut taped_programs = 0usize;
    let mut lowering_attempts = 0usize;
    for w in Workload::ALL {
        let case = w.build(11);
        for policy in [TapePolicy::All, TapePolicy::Selective] {
            let spec = GradSpec {
                policy,
                recompute_threshold: 16,
                order: GradOrder::GradThenOpt,
                fault: None,
            };
            // Build once unscheduled to count the gradient function's
            // loops, then parallelize and vectorize every one of them (the
            // legality checker keeps what is sound) — this drives tape
            // loads/stores through the vectorize/parallel lowering paths.
            let (plain, _) = build_grad_func(&case.func, &[], &spec).expect("grad builds");
            let nloops = ops::loops_of(&plain).len();
            let mut raw = Vec::new();
            for i in 0..nloops {
                raw.push(ops::ScheduleOp::Parallelize { loop_idx: i });
            }
            for i in 0..nloops {
                raw.push(ops::ScheduleOp::Vectorize { loop_idx: i });
            }
            let (func, trace) =
                build_grad_func(&case.func, &raw, &spec).expect("scheduled grad builds");
            taped_programs += format!("{func}").contains(".tape") as usize;
            let seed = ones_seed(&case);
            let inputs = grad_run_inputs(&case, &seed);
            let ctx = format!(
                "grad of {} ({policy:?}, {} sched ops)",
                w.name(),
                trace.len()
            );

            let ri = Runtime::new()
                .run(&func, &inputs, &sizes)
                .unwrap_or_else(|e| panic!("interp failed on {ctx}: {e:?}"));
            let sink = ft_trace::TraceSink::new();
            let mut vm = VmRuntime::new();
            vm.set_sink(Some(sink.clone()));
            let rf = vm
                .run(&func, &inputs, &sizes)
                .unwrap_or_else(|e| panic!("fast vm failed on {ctx}: {e:?}"));
            assert_eq!(ri.outputs, rf.outputs, "fast-mode outputs differ on {ctx}");

            let events = sink.events();
            let lowered = events.iter().filter(|e| e.cat == "vm.lower").count();
            let fallbacks: Vec<String> = events
                .iter()
                .filter(|e| e.name == "vm.fallback")
                .map(|e| {
                    let reason = &e
                        .args
                        .iter()
                        .find(|(k, _)| k == "reason")
                        .unwrap_or_else(|| panic!("vm.fallback without a reason on {ctx}"))
                        .1;
                    assert!(!reason.is_empty(), "empty fallback reason on {ctx}");
                    reason.clone()
                })
                .collect();
            assert!(
                lowered > 0 || !fallbacks.is_empty(),
                "backward pass neither lowered nor named a fallback on {ctx}"
            );
            lowering_attempts += lowered;
        }
    }
    assert!(
        taped_programs > 0,
        "no gradient program carried a tape — the directed corpus is vacuous"
    );
    assert!(
        lowering_attempts > 0,
        "no backward-pass statement reached the VM lowering paths"
    );
}
