//! Offline vendored shim of the `criterion` crate.
//!
//! Supports the subset the `bench` crate uses: `Criterion`,
//! `benchmark_group` with `sample_size` / `warm_up_time` /
//! `measurement_time` / `bench_function` / `finish`, `Bencher::iter`,
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Behavior: under `cargo bench` (cargo passes `--bench`) each benchmark is
//! warmed up briefly and timed over the configured measurement window, and
//! a `name: median ns/iter` line is printed. Under `cargo test` (no
//! `--bench` argument) each benchmark body runs exactly once as a smoke
//! test, keeping the tier-1 suite fast while still type- and
//! runtime-checking every bench.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    timed: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let timed = std::env::args().any(|a| a == "--bench");
        Criterion { timed }
    }
}

impl Criterion {
    /// Forwarded configuration hook (accepted, ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            timed: self.timed,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            sample_size: 10,
            _marker: std::marker::PhantomData,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let timed = self.timed;
        let mut group = BenchmarkGroup {
            name: String::new(),
            timed,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            sample_size: 10,
            _marker: std::marker::PhantomData,
        };
        group.bench_function(name, f);
        self
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    timed: bool,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Throughput annotation (accepted, ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Register and run one benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let full = if self.name.is_empty() {
            name
        } else {
            format!("{}/{}", self.name, name)
        };
        let mut b = Bencher {
            timed: self.timed,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut b);
        if self.timed {
            println!("{full}: {:.1} ns/iter", b.median_ns);
        }
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Throughput annotations (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Handle passed to each benchmark body.
pub struct Bencher {
    timed: bool,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    median_ns: f64,
}

impl Bencher {
    /// Measure `f` (or run it once in smoke mode).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if !self.timed {
            black_box(f());
            return;
        }
        // Warm-up: run until the warm-up window elapses.
        let start = Instant::now();
        let mut iters_per_sample = 1u64;
        while start.elapsed() < self.warm_up {
            black_box(f());
            iters_per_sample += 1;
        }
        // Scale iterations per sample so all samples fit the window.
        let per_iter = self.warm_up.as_secs_f64() / iters_per_sample as f64;
        let budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2] * 1e9;
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
