//! Offline vendored shim of the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` are exposed,
//! implemented on top of `std::thread::scope` (stable since Rust 1.63),
//! which provides the same structured-concurrency guarantee crossbeam's
//! scoped threads do.

pub mod thread {
    //! Scoped threads.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope: `Err` carries the payload of a panicked child.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Scope handle passed to the closure and to spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again so
        /// it can spawn nested work, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            })
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. A panic in any child (or in `f`) surfaces as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_join_and_borrow() {
            let data = vec![1u64, 2, 3, 4];
            let mut sums = vec![0u64; 4];
            super::scope(|s| {
                for (slot, &v) in sums.iter_mut().zip(&data) {
                    s.spawn(move |_| *slot = v * 10);
                }
            })
            .unwrap();
            assert_eq!(sums, vec![10, 20, 30, 40]);
        }

        #[test]
        fn child_panic_becomes_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
