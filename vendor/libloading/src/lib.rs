//! Offline vendored shim exposing the subset of the `libloading` API this
//! workspace uses: open a shared object, resolve typed symbols from it, and
//! close it on drop. Implemented directly over the platform loader
//! (`dlopen`/`dlsym`/`dlclose`); on glibc ≥ 2.34 these live in libc proper,
//! so no extra link flags are needed.
//!
//! Only the pieces `ft-runtime`'s compiled execution engine relies on are
//! provided; the surface mirrors upstream `libloading` so a future switch to
//! the real crate is a `Cargo.toml` edit.

#![cfg(unix)]

use std::ffi::{c_char, c_int, c_void, CStr, CString};
use std::fmt;
use std::marker::PhantomData;
use std::ops::Deref;
use std::path::Path;

extern "C" {
    fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
    fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    fn dlclose(handle: *mut c_void) -> c_int;
    fn dlerror() -> *mut c_char;
}

/// Resolve all symbols at load time so missing symbols fail `Library::new`
/// instead of the first call.
const RTLD_NOW: c_int = 2;
/// Keep the object's symbols out of the global namespace: distinct cached
/// kernels may all define the same entry-point name.
const RTLD_LOCAL: c_int = 0;

/// A loading/resolution failure, carrying the loader's `dlerror` message.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Consume and return the current `dlerror` message, if any.
fn take_dlerror(context: &str) -> Error {
    // dlerror returns a pointer into loader-internal storage and clears the
    // error; it is only meaningful immediately after a failed dl* call.
    let msg = unsafe {
        let p = dlerror();
        if p.is_null() {
            None
        } else {
            Some(CStr::from_ptr(p).to_string_lossy().into_owned())
        }
    };
    Error {
        message: match msg {
            Some(m) => format!("{context}: {m}"),
            None => format!("{context}: unknown loader error"),
        },
    }
}

/// An open shared object. Closed (`dlclose`) on drop; symbols resolved from
/// it borrow the library, so they cannot outlive it.
pub struct Library {
    handle: *mut c_void,
}

// A dlopen handle is process-global state; the loader serializes access.
unsafe impl Send for Library {}
unsafe impl Sync for Library {}

impl fmt::Debug for Library {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Library({:p})", self.handle)
    }
}

impl Library {
    /// Open the shared object at `path`.
    ///
    /// # Safety
    ///
    /// Loading a library runs its initializers; the caller must trust the
    /// object being loaded.
    ///
    /// # Errors
    ///
    /// Returns the loader's `dlerror` message when the object cannot be
    /// opened.
    pub unsafe fn new(path: impl AsRef<Path>) -> Result<Library, Error> {
        let path = path.as_ref();
        let cpath = CString::new(path.as_os_str().as_encoded_bytes()).map_err(|_| Error {
            message: format!("path contains NUL: {}", path.display()),
        })?;
        // Clear any stale error so a subsequent dlerror is ours.
        let _ = dlerror();
        let handle = dlopen(cpath.as_ptr(), RTLD_NOW | RTLD_LOCAL);
        if handle.is_null() {
            return Err(take_dlerror(&format!("dlopen {}", path.display())));
        }
        Ok(Library { handle })
    }

    /// Resolve a symbol as a value of type `T` (typically an `extern "C"`
    /// function pointer). `symbol` may include a trailing NUL byte, matching
    /// upstream `libloading`'s byte-string convention.
    ///
    /// # Safety
    ///
    /// `T` must faithfully describe the symbol's actual type; calling
    /// through a mistyped pointer is undefined behavior.
    ///
    /// # Errors
    ///
    /// Returns the loader's `dlerror` message when the symbol is absent.
    pub unsafe fn get<T>(&self, symbol: &[u8]) -> Result<Symbol<'_, T>, Error> {
        assert_eq!(
            std::mem::size_of::<T>(),
            std::mem::size_of::<*mut c_void>(),
            "Symbol<T> requires T to be pointer-sized"
        );
        let trimmed = symbol.strip_suffix(b"\0").unwrap_or(symbol);
        let csym = CString::new(trimmed).map_err(|_| Error {
            message: "symbol contains interior NUL".to_string(),
        })?;
        let _ = dlerror();
        let ptr = dlsym(self.handle, csym.as_ptr());
        if ptr.is_null() {
            return Err(take_dlerror(&format!(
                "dlsym {}",
                String::from_utf8_lossy(trimmed)
            )));
        }
        Ok(Symbol {
            ptr,
            _lib: PhantomData,
            _ty: PhantomData,
        })
    }
}

impl Drop for Library {
    fn drop(&mut self) {
        unsafe {
            let _ = dlclose(self.handle);
        }
    }
}

/// A typed symbol resolved from a [`Library`]. Dereferences to `T` (an
/// `extern "C"` fn pointer), so `(sym)(args…)` calls straight through.
pub struct Symbol<'lib, T> {
    ptr: *mut c_void,
    _lib: PhantomData<&'lib Library>,
    _ty: PhantomData<T>,
}

unsafe impl<T: Send> Send for Symbol<'_, T> {}
unsafe impl<T: Sync> Sync for Symbol<'_, T> {}

impl<T> Deref for Symbol<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // `size_of::<T>() == size_of::<*mut c_void>()` was asserted at
        // resolution time; reinterpret the stored pointer as the fn pointer.
        unsafe { &*std::ptr::addr_of!(self.ptr).cast::<T>() }
    }
}

impl<T> fmt::Debug for Symbol<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:p})", self.ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_library_reports_loader_error() {
        let err = unsafe { Library::new("/nonexistent/ft-shim-test.so") }.unwrap_err();
        assert!(err.to_string().contains("dlopen"), "{err}");
    }

    #[test]
    fn open_libm_and_resolve_cos() {
        // libm ships on every supported host; `cos` has a stable ABI.
        let candidates = ["libm.so.6", "libm.so"];
        let lib = candidates
            .iter()
            .find_map(|c| unsafe { Library::new(c) }.ok());
        let Some(lib) = lib else {
            eprintln!("no libm variant found; skipping");
            return;
        };
        let cos: Symbol<'_, unsafe extern "C" fn(f64) -> f64> =
            unsafe { lib.get(b"cos\0") }.expect("cos resolves");
        let v = unsafe { cos(0.0) };
        assert!((v - 1.0).abs() < 1e-12);
        let missing = unsafe { lib.get::<unsafe extern "C" fn()>(b"ft_no_such_symbol\0") };
        assert!(missing.is_err());
    }
}
