//! Offline vendored shim of the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` / `read()` / `write()` return guards directly, and a poisoned
//! mutex (panicked holder) is transparently recovered, matching
//! parking_lot's no-poisoning semantics.

/// Poison-free mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (recovering from poison).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_mutate_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
