//! Offline vendored shim of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of proptest it uses: the [`Strategy`] trait with
//! `prop_map` / `prop_recursive` / `boxed`, range and tuple strategies,
//! [`strategy::Just`], unions (`prop_oneof!`), `collection::vec`, the
//! `bool` strategies, and the `proptest!` / `prop_compose!` /
//! `prop_assert*!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with the assertion message;
//!   the workspace's property tests embed the offending input in their
//!   messages, and the conformance harness (`ft-conformance`) does its own
//!   domain-aware shrinking.
//! - **Deterministic seeding.** Each `proptest!` test derives its RNG seed
//!   from the test's module path and name, so CI failures reproduce locally
//!   without a persistence file.

pub mod test_runner {
    //! RNG used to drive generation.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic test RNG (xoshiro-backed).
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seed deterministically from a test identifier (FNV-1a hash).
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        /// Seed from an explicit value.
        pub fn from_seed_u64(seed: u64) -> TestRng {
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Recursive strategy: `self` is the leaf, `recurse` builds a
        /// composite level from a strategy for the level below. `_desired`
        /// and `_branch` are accepted for API compatibility; depth alone
        /// bounds the tree here.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired: u32,
            _branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let composite = recurse(cur).boxed();
                cur = Union::weighted(vec![(1, leaf.clone()), (2, composite)]).boxed();
            }
            cur
        }

        /// Type-erase into a cloneable boxed strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Cloneable type-erased strategy.
    pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }

        fn boxed(self) -> BoxedStrategy<V>
        where
            Self: Sized + 'static,
        {
            self
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between strategies of a common value type
    /// (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u32,
    }

    impl<V> Union<V> {
        /// Equal-weight union.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            Union::weighted(arms.into_iter().map(|s| (1, s)).collect())
        }

        /// Weighted union.
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rand::Rng::gen_range(rng, 0..self.total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length ranges accepted by [`vec`].
    pub trait SizeRange {
        /// Draw a length.
        fn sample(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl SizeRange for usize {
        fn sample(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `bool` strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rand::Rng::gen(rng)
        }
    }

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p)
    }

    /// See [`weighted`].
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted(f64);

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rand::Rng::gen_bool(rng, self.0)
        }
    }
}

pub mod num {
    //! Numeric strategy aliases (ranges implement [`Strategy`](crate::strategy::Strategy) directly).
}

/// Re-exports matching `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestRng;
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

pub use strategy::{BoxedStrategy, Strategy};

#[doc(hidden)]
pub fn __run_cases<F: FnMut(&mut test_runner::TestRng)>(
    config: &ProptestConfig,
    test_name: &str,
    mut case: F,
) {
    let mut rng = test_runner::TestRng::for_test(test_name);
    for _ in 0..config.cases {
        case(&mut rng);
    }
}

#[doc(hidden)]
pub use std::sync::Arc as __Arc;

/// Weighted/unweighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property-test entry macro. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(arg in strat, ..)
/// { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::__run_cases(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__ft_rng| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), __ft_rng);)+
                        $body
                    },
                );
            }
        )*
    };
}

/// Compose named argument strategies into a derived strategy-returning fn.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$attr:meta])* $vis:vis fn $name:ident($($outer:tt)*)
        ($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$attr])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

/// Assert inside a property body (panics; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the rest of this case when the assumption fails. The shim simply
/// returns from the case closure, which discards (rather than replaces) the
/// case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = TestRng::for_test("shim::basic");
        let s = (0i64..10, (-1.0f64..1.0).prop_map(|x| x * 2.0));
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!((0..10).contains(&a));
            assert!((-2.0..2.0).contains(&b));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::for_test("shim::oneof");
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_terminates_and_varies() {
        #[derive(Debug)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    let _ = *v; // value is otherwise unobserved; keep it read
                    1
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0i64..10).prop_map(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::for_test("shim::rec");
        let mut max_depth = 0;
        for _ in 0..100 {
            max_depth = max_depth.max(depth(&s.generate(&mut rng)));
        }
        assert!(max_depth > 1, "never generated a composite");
        assert!(max_depth <= 4, "depth bound violated");
    }

    #[test]
    fn collection_vec_respects_size() {
        let mut rng = TestRng::for_test("shim::vec");
        let s = crate::collection::vec(0i64..5, 1..7usize);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..7).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself works end to end.
        #[test]
        fn macro_end_to_end(a in 0i64..100, flag in crate::bool::ANY) {
            prop_assert!(a >= 0);
            prop_assert_ne!(a, 1000);
            let _ = flag;
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0i64..10, b in 0i64..10) -> (i64, i64) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn composed_strategy_works(p in arb_pair()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }
    }
}
