//! Offline vendored shim of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small subset of the `rand 0.8` API it actually uses:
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`Rng::gen`], [`SeedableRng`],
//! and the [`rngs::StdRng`] / [`rngs::SmallRng`] generator types.
//!
//! Both generators are xoshiro256++ seeded through SplitMix64, which gives
//! high-quality deterministic streams; determinism per seed is the only
//! property the workspace's tests and data generators rely on.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Build from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ranges (and other shapes) that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Uniform draw in `0..span` (`span > 0`) without modulo bias worth caring
/// about at these spans (rejection sampling on the top 64 bits).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Rejection sampling: draw until the value falls in the largest
    // multiple of `span` that fits in 64 bits.
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                v as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (lo + unit * (hi - lo)) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draw one standard sample.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::standard_sample(self) < p
    }

    /// Standard-distribution sample.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — stands in for rand's ChaCha-based `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Same engine as [`StdRng`]; rand's `SmallRng` is also permitted to
    /// change algorithms between releases.
    #[derive(Debug, Clone)]
    pub struct SmallRng(StdRng);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng(StdRng::from_seed(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    /// Regression: `gen_range` is generic over the sample type, so an
    /// un-annotated `rng.gen_range(0..3)` used as a slice index lets both
    /// the index and the array element type fall back to `i32` and the
    /// build fails with "cannot be indexed by `i32`". Callers must pin the
    /// type (`0..3usize`) — this test keeps the supported idiom compiling
    /// and in bounds (broke in `tests/schedule_semantics.rs` and
    /// `bench/src/bin/table2.rs`).
    #[test]
    fn usize_range_indexes_a_slice() {
        let mut rng = StdRng::seed_from_u64(1);
        let factors = [2i64, 3, 8];
        for _ in 0..100 {
            let f = factors[rng.gen_range(0..3usize)];
            assert!(factors.contains(&f));
            let g = factors[rng.gen_range(0..factors.len())];
            assert!(factors.contains(&g));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000i64), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..2000 {
            let v = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&v));
            saw_lo |= v == -2;
            saw_hi |= v == 2;
        }
        assert!(saw_lo && saw_hi);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }
}
