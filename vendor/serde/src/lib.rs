//! Offline vendored placeholder for `serde`.
//!
//! No workspace code currently derives or calls serde; the conformance
//! harness writes its JSON repros through `ft_conformance::json`, a small
//! hand-rolled emitter. This crate exists so the workspace dependency
//! declaration resolves offline; if real serialization is needed later,
//! grow this shim or vendor the real crate.

/// Marker trait matching serde's `Serialize` (no-op placeholder).
pub trait Serialize {}

/// Marker trait matching serde's `Deserialize` (no-op placeholder).
pub trait Deserialize<'de> {}
